"""Tests for the indexed query engine: IndexManager, ValueIndex, planner.

The contract under test is *oracle equivalence*: whatever access path the
planner picks, query results must be byte-identical to the full scan
(``IndexManager.auto = False``), and ``Database.objects_of_type`` must
match the original full-registry scan kept as
``Database.naive_objects_of_type``.  The hypothesis property drives
randomized schemas and mutation scripts — attribute writes, binds,
unbinds, deletes, transaction aborts, version revert-and-reject,
``declare_inheritor_in`` rebinds — with indexes built early so the
incremental maintenance path (not a fresh build) is what answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeSpec
from repro.core.domains import ANY
from repro.core.inheritance import InheritanceRelationshipType
from repro.core.objtype import ObjectType
from repro.engine.database import Database
from repro.errors import ReproError, VersionError
from repro.query import run_query
from repro.txn.transactions import TransactionManager
from repro.versions.states import StateGuard

_counter = [0]


def _uname(prefix):
    _counter[0] += 1
    return f"{prefix}Ix{_counter[0]}"


def assert_queries_agree(db, text):
    """Indexed execution must match the full-scan oracle exactly —
    rows, columns, objects, or the exception type and message."""
    manager = db.indexes
    manager.auto = False
    try:
        oracle = run_query(db, text)
        oracle_exc = None
    except Exception as exc:  # noqa: BLE001 - re-asserted below
        oracle, oracle_exc = None, exc
    finally:
        manager.auto = True
    if oracle_exc is not None:
        with pytest.raises(type(oracle_exc)) as caught:
            run_query(db, text)
        assert str(caught.value) == str(oracle_exc)
        return
    indexed = run_query(db, text)
    assert indexed.columns == oracle.columns
    assert indexed.rows == oracle.rows
    if oracle.objects is not None:
        assert [o.surrogate for o in indexed.objects] == [
            o.surrogate for o in oracle.objects
        ]
    assert oracle.plan.access_path == "full-scan"


def assert_type_index_agrees(db, type_):
    for include in (True, False):
        assert db.objects_of_type(type_, include) == db.naive_objects_of_type(
            type_, include
        )


# ---------------------------------------------------------------------------
# the randomized-schema oracle property
# ---------------------------------------------------------------------------

ALPHA_VALUES = (0, 1, 2, 3, "x", "y")
BETA_VALUES = (0, 1, 2, 3, 4, 5)


def _make_world():
    """Base/Sub types (Sub conforms via inheritor-in), one class, one db."""
    base = ObjectType(
        _uname("Base"),
        attributes={"alpha": ANY, "beta": AttributeSpec("beta", ANY, default=0)},
    )
    rel = InheritanceRelationshipType(
        _uname("AllOfBase"), transmitter_type=base, inheriting=["alpha"]
    )
    sub = ObjectType(_uname("Sub"))
    sub.declare_inheritor_in(rel)
    db = Database(_uname("db"))
    db.indexes.min_index_source = 0
    db.catalog.register(base)
    db.catalog.register(sub)
    db.create_class("Things", base)
    return db, base, sub, rel


def _battery(db, base, sub):
    queries = [
        "select * from Things where alpha = 2",
        "select * from Things where alpha = 'x'",
        "select alpha, beta from Things where beta > 2",
        "select * from Things where alpha = 1 and beta >= 1",
        "select distinct alpha from Things",
        "select alpha from Things where beta <= 3 order by beta desc limit 2",
        f"select * from {base.name} where alpha = 3",
        f"select * from {sub.name} where alpha = 0",
    ]
    for text in queries:
        assert_queries_agree(db, text)
    assert_type_index_agrees(db, base)
    assert_type_index_agrees(db, sub)


action = st.one_of(
    st.tuples(st.just("create_base"), st.sampled_from(ALPHA_VALUES),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("create_sub"), st.sampled_from(ALPHA_VALUES)),
    st.tuples(st.just("set_alpha"), st.integers(0, 20),
              st.sampled_from(ALPHA_VALUES)),
    st.tuples(st.just("set_beta"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("bind"), st.integers(0, 20), st.integers(0, 20)),
    st.tuples(st.just("unbind"), st.integers(0, 20)),
    st.tuples(st.just("delete"), st.integers(0, 20)),
    st.tuples(st.just("txn_abort"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("revert"), st.integers(0, 20),
              st.sampled_from(BETA_VALUES)),
    st.tuples(st.just("declare_rebind"), st.integers(0, 20), st.integers(0, 20)),
)


@settings(max_examples=40, deadline=None)
@given(actions=st.lists(action, min_size=1, max_size=12))
def test_planner_matches_full_scan_oracle(actions):
    db, base, sub, rel = _make_world()
    txns = TransactionManager(db)
    guard = StateGuard(db)
    objs = []
    for value in (0, 1, "x"):
        objs.append(
            db.create_object(base, class_name="Things", alpha=value, beta=1)
        )
    # Prime the value indexes now so the script below exercises the
    # incremental maintenance path, not a fresh build at query time.
    _battery(db, base, sub)

    def pick(i):
        return objs[i % len(objs)] if objs else None

    for step in actions:
        kind = step[0]
        if kind not in ("create_base", "create_sub") and pick(0) is None:
            continue  # every object deleted; mutation steps have no target
        try:
            if kind == "create_base":
                objs.append(
                    db.create_object(
                        base, class_name="Things", alpha=step[1], beta=step[2]
                    )
                )
            elif kind == "create_sub":
                obj = db.create_object(sub, class_name="Things")
                obj.set_attribute("alpha", step[1])
                objs.append(obj)
            elif kind == "set_alpha":
                pick(step[1]).set_attribute("alpha", step[2])
            elif kind == "set_beta":
                pick(step[1]).set_attribute("beta", step[2])
            elif kind == "bind":
                inheritor, transmitter = pick(step[1]), pick(step[2])
                if inheritor.object_type is sub and transmitter.object_type is base:
                    db.bind(inheritor, transmitter, rel)
            elif kind == "unbind":
                obj = pick(step[1])
                link = obj.link_for(rel)
                if link is not None:
                    link.unbind()
            elif kind == "delete":
                obj = pick(step[1])
                obj.delete(unbind_inheritors=True)
                objs = [o for o in objs if not o.deleted]
            elif kind == "txn_abort":
                obj = pick(step[1])
                txn = txns.begin()
                txn.set(obj, "beta", step[2])
                txn.abort()
            elif kind == "revert":
                obj = pick(step[1])
                if guard.state_of(obj) is None:
                    guard.release(obj)
                with pytest.raises(VersionError):
                    obj.set_attribute("beta", step[2])
            elif kind == "declare_rebind":
                # A schema change mid-life: a fresh inheritance declaration
                # bumps the schema epoch, dropping every value index.
                new_rel = InheritanceRelationshipType(
                    _uname("LateRel"), transmitter_type=base, inheriting=["beta"]
                )
                sub.declare_inheritor_in(new_rel)
                inheritor, transmitter = pick(step[1]), pick(step[2])
                if inheritor.object_type is sub and transmitter.object_type is base:
                    db.bind(inheritor, transmitter, new_rel)
        except ReproError:
            # Illegal scripts (double bind, write-through-link, inherited
            # shadowing, …) are fine: the engine rejected them on both
            # sides of the comparison identically.
            pass
        # One cheap agreement probe per step catches staleness at the
        # moment it appears, not only at the end.
        assert_queries_agree(db, "select * from Things where alpha = 1")

    _battery(db, base, sub)


# ---------------------------------------------------------------------------
# deterministic behaviour
# ---------------------------------------------------------------------------


@pytest.fixture
def parts_db():
    db = Database(_uname("parts"))
    part = db.catalog.define_object_type(
        "Part", attributes={"Serial": ANY, "Category": ANY}
    )
    db.create_class("Parts", part)
    db.indexes.min_index_source = 0
    for i in range(60):
        db.create_object(
            "Part", class_name="Parts", Serial=i, Category=f"cat_{i % 6}"
        )
    return db


def test_equality_uses_index_and_matches(parts_db):
    result = run_query(parts_db, "select * from Parts where Category = 'cat_2'")
    assert result.plan.access_path == "index-eq"
    assert result.plan.index_attr == "Category"
    assert len(result.rows) == 10
    assert_queries_agree(parts_db, "select * from Parts where Category = 'cat_2'")


def test_range_uses_sorted_index(parts_db):
    result = run_query(parts_db, "select Serial from Parts where Serial >= 55")
    assert result.plan.access_path == "index-range"
    assert result.scalars() == [55, 56, 57, 58, 59]


def test_explain_reports_estimated_and_actual_rows(parts_db):
    result = run_query(
        parts_db, "select * from Parts where Category = 'cat_0'", explain=True
    )
    text = result.explain()
    assert "index-eq" in text
    assert "estimated=10" in text
    assert "candidates=10" in text
    assert "matched=10" in text
    assert "class Parts (60 objects)" in text


def test_planner_prefers_cheapest_sarg(parts_db):
    # Serial = 7 hits 1 object, Category = 'cat_1' hits 10: Serial wins.
    result = run_query(
        parts_db,
        "select * from Parts where Category = 'cat_1' and Serial = 7",
    )
    assert result.plan.index_attr == "Serial"
    assert len(result.rows) == 1


def test_updates_maintain_index_incrementally(parts_db):
    run_query(parts_db, "select * from Parts where Category = 'cat_3'")
    before = parts_db.indexes.stats["index.maintenance"]
    obj = parts_db.class_("Parts").members()[0]
    obj.set_attribute("Category", "moved")
    assert parts_db.indexes.stats["index.maintenance"] > before
    result = run_query(parts_db, "select * from Parts where Category = 'moved'")
    assert result.plan.access_path == "index-eq"
    assert [o.surrogate for o in result.objects] == [obj.surrogate]
    assert_queries_agree(parts_db, "select * from Parts where Category = 'cat_3'")


def test_delete_removes_from_indexes(parts_db):
    run_query(parts_db, "select * from Parts where Serial = 10")
    victim = [
        o for o in parts_db.class_("Parts").members()
        if o.get_member("Serial") == 10
    ][0]
    victim.delete()
    result = run_query(parts_db, "select * from Parts where Serial = 10")
    assert result.rows == []
    assert_queries_agree(parts_db, "select * from Parts where Serial >= 8")


def test_txn_abort_restores_index_entries(parts_db):
    run_query(parts_db, "select * from Parts where Category = 'cat_4'")
    obj = [
        o for o in parts_db.class_("Parts").members()
        if o.get_member("Category") == "cat_4"
    ][0]
    txns = TransactionManager(parts_db)
    txn = txns.begin()
    txn.set(obj, "Category", "doomed")
    txn.abort()
    assert obj.get_member("Category") == "cat_4"
    result = run_query(parts_db, "select * from Parts where Category = 'doomed'")
    assert result.rows == []
    assert_queries_agree(parts_db, "select * from Parts where Category = 'cat_4'")


def test_version_revert_restores_index_entries(parts_db):
    run_query(parts_db, "select * from Parts where Serial = 20")
    obj = [
        o for o in parts_db.class_("Parts").members()
        if o.get_member("Serial") == 20
    ][0]
    guard = StateGuard(parts_db)
    guard.release(obj)
    with pytest.raises(VersionError):
        obj.set_attribute("Serial", 9999)
    assert obj.get_member("Serial") == 20
    result = run_query(parts_db, "select * from Parts where Serial = 9999")
    assert result.rows == []
    assert_queries_agree(parts_db, "select * from Parts where Serial = 20")


def test_inherited_values_are_indexable():
    """The paper's implementations inherit interface data; an index over a
    type source sees transmitter updates through the chain."""
    db = Database(_uname("gates"))
    db.indexes.min_index_source = 0
    iface = db.catalog.define_object_type(
        "Iface", attributes={"Length": ANY}
    )
    all_of = db.catalog.define_inheritance_type("AllOfIface", iface, ["Length"])
    impl = db.catalog.define_object_type("Impl")
    impl.declare_inheritor_in(all_of)
    interfaces = [
        db.create_object(iface, Length=length) for length in (10, 20, 30)
    ]
    for interface in interfaces:
        db.create_object(impl, transmitter=interface)
    result = run_query(db, "select * from Impl where Length = 20")
    assert result.plan.access_path == "index-eq"
    assert len(result.rows) == 1
    # A transmitter update must be visible through the index immediately.
    interfaces[0].set_attribute("Length", 20)
    result = run_query(db, "select * from Impl where Length = 20")
    assert len(result.rows) == 2
    assert_queries_agree(db, "select * from Impl where Length = 20")


def test_schema_change_drops_and_rebuilds_indexes(parts_db):
    run_query(parts_db, "select * from Parts where Serial = 1")
    dropped_before = parts_db.indexes.stats["index.dropped"]
    ObjectType(_uname("Unrelated"))  # any type definition bumps the epoch
    result = run_query(parts_db, "select * from Parts where Serial = 1")
    assert parts_db.indexes.stats["index.dropped"] > dropped_before
    assert result.plan.access_path == "index-eq"
    assert len(result.rows) == 1


def test_small_sources_stay_full_scan():
    db = Database(_uname("small"))
    thing = db.catalog.define_object_type("Thing", attributes={"n": ANY})
    db.create_class("Stuff", thing)
    for i in range(5):  # below the default min_index_source of 16
        db.create_object("Thing", class_name="Stuff", n=i)
    result = run_query(db, "select * from Stuff where n = 3")
    assert result.plan.access_path == "full-scan"
    assert db.indexes.stats["index.built"] == 0
    assert any("below index threshold" in note for note in result.plan.notes)


def test_objects_of_type_served_from_extent_index(parts_db):
    part = parts_db.catalog.type("Part")
    assert_type_index_agrees(parts_db, part)
    # O(result) service still matches the oracle after deletions.
    for obj in parts_db.class_("Parts").members()[:7]:
        obj.delete()
    assert_type_index_agrees(parts_db, part)


def test_database_select_goes_through_planner(parts_db):
    hits_before = parts_db.indexes.stats["index.hits"]
    selected = parts_db.select("Parts", "Category = 'cat_5'")
    assert parts_db.indexes.stats["index.hits"] > hits_before
    parts_db.indexes.auto = False
    oracle = parts_db.select("Parts", "Category = 'cat_5'")
    parts_db.indexes.auto = True
    assert [o.surrogate for o in selected] == [o.surrogate for o in oracle]


# ---------------------------------------------------------------------------
# executor satellites: top-k heap, distinct dedupe
# ---------------------------------------------------------------------------


def test_order_by_limit_uses_heap_and_matches_sort(parts_db):
    limited = run_query(
        parts_db, "select Serial from Parts order by Serial desc limit 7"
    )
    assert limited.plan.order == "top-7 heap desc"
    full = run_query(parts_db, "select Serial from Parts order by Serial desc")
    assert limited.rows == full.rows[:7]


def test_top_k_is_stable_for_duplicate_keys(parts_db):
    # Category has 10 duplicates per value; stability = extent order.
    limited = run_query(
        parts_db, "select * from Parts order by Category limit 12"
    )
    full = run_query(parts_db, "select * from Parts order by Category")
    assert [o.surrogate for o in limited.objects] == [
        o.surrogate for o in full.objects[:12]
    ]


def test_distinct_unhashable_rows_regression():
    db = Database(_uname("distinct"))
    thing = db.catalog.define_object_type("Thing", attributes={"v": ANY})
    db.create_class("Stuff", thing)
    values = [[1, 2], [1, 2], [3], "plain", "plain", [1, 2]]
    for value in values:
        db.create_object("Thing", class_name="Stuff", v=value)
    result = run_query(db, "select distinct v from Stuff")
    assert result.rows == [([1, 2],), ([3],), ("plain",)]


def test_distinct_hashable_equal_to_unhashable():
    # frozenset() == set(): the set-based fast path must not resurrect a
    # row already kept via the unhashable pool.
    db = Database(_uname("distinct2"))
    thing = db.catalog.define_object_type("Thing", attributes={"v": ANY})
    db.create_class("Stuff", thing)
    db.create_object("Thing", class_name="Stuff", v=set())
    db.create_object("Thing", class_name="Stuff", v=frozenset())
    result = run_query(db, "select distinct v from Stuff")
    assert len(result.rows) == 1


# ---------------------------------------------------------------------------
# surfaces: metrics, CLI
# ---------------------------------------------------------------------------


def test_metrics_snapshot_exposes_index_counters():
    from repro.obs.report import snapshot

    db = Database(_uname("obs"), observe=True)
    thing = db.catalog.define_object_type("Thing", attributes={"n": ANY})
    db.create_class("Stuff", thing)
    db.indexes.min_index_source = 0
    for i in range(20):
        db.create_object("Thing", class_name="Stuff", n=i)
    run_query(db, "select * from Stuff where n = 4")
    gauges = snapshot(db, include_events=False)["gauges"]
    for key in ("index.hits", "index.misses", "index.maintenance",
                "index.built", "index.stale_repairs"):
        assert key in gauges
    assert gauges["index.hits"] >= 1
    assert gauges["index.built"] >= 1


def test_cli_query_explain(tmp_path, capsys):
    from repro.cli import main
    from repro.ddl import load_schema
    from repro.ddl.paper import GATE_SCHEMA
    from repro.engine import save

    schema_path = tmp_path / "gates.ddl"
    schema_path.write_text(GATE_SCHEMA)
    db = Database("cli")
    load_schema(GATE_SCHEMA, db.catalog)
    for length in (10, 20, 30):
        iface = db.create_object("GateInterface", Length=length, Width=5)
        iface.subclass("Pins").create(InOut="IN")
    image_path = tmp_path / "image.json"
    save(db, str(image_path))
    assert main([
        "query", str(schema_path), str(image_path),
        "select Length from GateInterface where Length = 20", "--explain",
    ]) == 0
    out = capsys.readouterr().out
    assert "plan: select Length from GateInterface where Length = 20" in out
    assert "source:  type GateInterface" in out
    assert "access:" in out
    assert "estimated=" in out
    assert "(1 row(s))" in out
