"""E6 — §2 ablation: copy vs. view vs. inheritance composition.

The paper's qualitative argument, measured on identical workloads:

* **incorporation** — copy pays O(component size); view and inheritance
  pay O(1);
* **read after component update** — copy reads stale data fast; view and
  inheritance read fresh data through one indirection;
* **visibility** — view leaks every member, inheritance only the
  permeable subset (asserted, not timed).
"""

import pytest

from repro.composition import (
    add_component,
    copy_component,
    stale_members,
    view_component,
)
from repro.core import INTEGER, ObjectType
from repro.workloads import gate_database, make_implementation, make_interface

COMPONENT_PINS = [3, 30, 120]


def db_with_view_holder():
    """A database with two baseline slot types.

    * ``CopySlot`` mirrors the component's structure (a Pins subclass), so
      copy composition must materialise the pins — the O(size) cost;
    * ``ViewSlot`` is bare, as a raw view requires (the view relationship
      would clash with locally declared members).
    """
    db = gate_database("e6-bench")
    pin_type = db.catalog.object_type("PinType")
    copy_slot = ObjectType(
        "CopySlot", attributes={"X": INTEGER}, subclasses={"Pins": pin_type}
    )
    view_slot = ObjectType("ViewSlot", attributes={"X": INTEGER})
    holder_type = ObjectType(
        "Holder", subclasses={"CopyParts": copy_slot, "ViewParts": view_slot}
    )
    db.catalog.register(copy_slot)
    db.catalog.register(view_slot)
    db.catalog.register(holder_type)
    return db


class TestIncorporationCost:
    @pytest.mark.parametrize("n_pins", COMPONENT_PINS)
    def test_copy_composition(self, benchmark, n_pins):
        db = db_with_view_holder()
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        holder = db.create_object("Holder")
        benchmark(copy_component, holder, "CopyParts", component)

    @pytest.mark.parametrize("n_pins", COMPONENT_PINS)
    def test_view_composition(self, benchmark, n_pins):
        db = db_with_view_holder()
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        holder = db.create_object("Holder")
        benchmark(view_component, holder, "ViewParts", component)

    @pytest.mark.parametrize("n_pins", COMPONENT_PINS)
    def test_inheritance_composition(self, benchmark, n_pins):
        db = gate_database("e6-bench")
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        composite = make_implementation(db, make_interface(db))
        benchmark(
            add_component, composite, "SubGates", component,
            GateLocation={"X": 0, "Y": 0},
        )


class TestReadAfterUpdate:
    def _component(self, db, n_pins=30):
        return make_interface(db, n_in=n_pins - 1, n_out=1)

    def test_copy_read_is_local_but_stale(self, benchmark):
        db = db_with_view_holder()
        component = self._component(db)
        holder = db.create_object("Holder")
        copy = copy_component(holder, "CopyParts", component)
        component.set_attribute("Length", 999)
        value = benchmark(copy.get_member, "Length")
        assert value != 999  # stale!
        assert stale_members(copy, component) == ["Length"]

    def test_view_read_is_fresh(self, benchmark):
        db = db_with_view_holder()
        component = self._component(db)
        holder = db.create_object("Holder")
        view = view_component(holder, "ViewParts", component)
        component.set_attribute("Length", 999)
        value = benchmark(view.get_member, "Length")
        assert value == 999

    def test_inherit_read_is_fresh(self, benchmark):
        db = gate_database("e6-bench")
        component = self._component(db)
        composite = make_implementation(db, make_interface(db))
        slot = add_component(composite, "SubGates", component,
                             GateLocation={"X": 0, "Y": 0})
        component.set_attribute("Length", 999)
        value = benchmark(slot.get_member, "Length")
        assert value == 999


class TestVisibility:
    def test_view_leaks_everything_inherit_is_selective(self):
        db = db_with_view_holder()
        component = make_interface(db)
        holder = db.create_object("Holder")
        view = view_component(holder, "ViewParts", component)
        view_names = set(view.visible_member_names())
        assert {"Length", "Width", "Pins"} <= view_names

        composite = make_implementation(db, make_interface(db))
        slot = add_component(composite, "SubGates", component,
                             GateLocation={"X": 0, "Y": 0})
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        # Inheritance exposes exactly the permeable subset plus own data.
        assert set(rel.inheriting) == {"Length", "Width", "Pins"}
        assert "GateLocation" in slot.visible_member_names()


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_pins = 3 if suite.quick else 30

    @suite.case(f"copy_composition[{n_pins}]")
    def copy_case():
        db = db_with_view_holder()
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        holder = db.create_object("Holder")
        return lambda: copy_component(holder, "CopyParts", component)

    @suite.case(f"view_composition[{n_pins}]")
    def view_case():
        db = db_with_view_holder()
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        holder = db.create_object("Holder")
        return lambda: view_component(holder, "ViewParts", component)

    @suite.case(f"inheritance_composition[{n_pins}]")
    def inherit_case():
        db = gate_database("e6-bench")
        component = make_interface(db, n_in=n_pins - 1, n_out=1)
        composite = make_implementation(db, make_interface(db))
        return lambda: add_component(
            composite, "SubGates", component, GateLocation={"X": 0, "Y": 0}
        )

    @suite.case("inherit_read_fresh")
    def read_case():
        db = gate_database("e6-bench")
        component = make_interface(db, n_in=29, n_out=1)
        composite = make_implementation(db, make_interface(db))
        slot = add_component(
            composite, "SubGates", component, GateLocation={"X": 0, "Y": 0}
        )
        component.set_attribute("Length", 999)
        assert slot.get_member("Length") == 999
        return lambda: slot.get_member("Length")
