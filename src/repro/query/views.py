"""Materialized inherited-relation views: flattened per-type extents.

Litwin's *stored and inherited relations* (PAPERS.md) are relations whose
tuples mix stored attributes with attributes inherited from other
relations — almost exactly this paper's permeability mechanism, stated
relationally.  This module materializes that construct over the engine's
type extents:

* :class:`TypeView` — one **flattened table per concrete type**: one row
  per live object of the type, one contiguous column per *inherited*
  member (``MemberEntry.rels`` non-empty).  Stored members need no view
  column — they already live in the type's
  :class:`~repro.core.slots.TypeStore` slots, and the generated view scan
  reads both side by side.  View columns are **aligned with the store**:
  a cell lives at the object's own storage row (``obj._row``), so the
  scan addresses it with the row index it already loaded for stored
  slots — no per-object hash lookup on the hot path.  A cell holds
  exactly what a bare-name read would see: ``get_member`` through the
  transmitter chain, with the unresolved-as-literal label convention.

* :class:`ViewManager` — attached as ``Database.views``; builds views
  lazily when the planner routes to them and maintains them
  **incrementally** off the same event stream and epochs the
  :class:`~repro.query.indexes.IndexManager` validates against:

  - ``attribute_updated`` / ``attribute_restored`` (txn abort, version
    revert, merge apply) re-extract the named column for the subject
    *and its transitive inheritors*;
  - ``inheritor_bound`` / ``inheritor_unbound`` re-extract the whole row
    of everything in the subject's downstream subtree;
  - ``subobject_added``/``…_removed`` and ``relationship_created``/
    ``…_removed`` re-extract inherited *container* cells the same way;
  - adopt/forget hooks add and drop rows synchronously;
  - a **schema-epoch bump** invalidates the view as a whole; the next
    routing rebuilds it lazily (the ``query.view.staleness`` counter and
    each view's ``staleness`` attribute count these rebuilds).

* **Planner routing** — :meth:`ViewManager.try_scan` is called by the
  executor for full-scan plans whose ``where`` touches at least one
  view-covered inherited member.  The predicate compiles (once per view
  generation) through :class:`_ViewCodegen`, a
  :class:`~repro.expr.compile._Codegen` subclass that emits inherited
  reads as ``column[vrow]`` against the view columns instead of the
  per-object member-protocol closure.  EXPLAIN shows ``view`` as the
  access path; ``run_query(..., views=False)`` keeps the live path as
  the differential oracle.

Error parity: a cell that fails to extract for any reason other than the
label convention **taints** its row, and a tainted view refuses to serve
scans — the live path then reproduces the exact error.  Likewise the
generated scan bails out (``None``) on heterogeneous candidates or a raw
comparison ``TypeError``, exactly like the slot-scan of
:mod:`repro.expr.compile`, and the executor re-runs on the live path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..core import resolution as _resolution
from ..errors import UnknownAttributeError
from ..expr.ast import Binary, Name, Node, Path, Unary
from ..expr.compile import _Codegen
from .indexes import IndexManager

__all__ = ["TypeView", "ViewManager", "view_eligible_names"]

#: Race-sanitizer guard (:mod:`repro.obs.race`): ``None`` when dark, the
#: active sanitizer while enabled.
TSAN: Any = None

#: Member-entry kinds a view column can materialize.  ``attribute`` with
#: rels is the declared inherited attribute (interface data flattened
#: into the implementation row); ``inherited`` is the synthetic entry for
#: permeable names the inheritor type does not itself declare.  Container
#: kinds (``subclass``/``subrel``) reached through inheritance resolve to
#: live member lists per object and stay on the live path — the REP505
#: advisory names them.
_ELIGIBLE_KINDS = ("attribute", "inherited")

_with_inheritors = IndexManager._with_inheritors


def view_eligible_names(plan: Any) -> List[str]:
    """The members of ``plan`` a per-type view can materialize."""
    return [
        name
        for name, entry in plan.entries.items()
        if entry.rels and entry.kind in _ELIGIBLE_KINDS
    ]


def _extract_cell(obj: Any, name: str) -> Any:
    """What a bare-name read of ``name`` on ``obj`` evaluates to.

    Mirrors the compiled member fallback (and ``Name.evaluate`` with the
    default ``unresolved_as_literal``): unresolvable names evaluate as
    their own spelling — the paper's unquoted enum-label convention.
    Any *other* exception propagates; the caller taints the row.
    """
    try:
        return obj.get_member(name)
    except (KeyError, UnknownAttributeError):
        return name


class _ViewProgram:
    """One compiled view scan: the generated loop + the columns it used."""

    __slots__ = ("scan", "used", "source")

    def __init__(
        self,
        scan: Callable[[Any], Optional[Tuple[int, List[Any]]]],
        used: Tuple[str, ...],
        source: str,
    ) -> None:
        self.scan = scan
        #: View columns the program actually reads; empty means the
        #: predicate compiled without touching the view (routing refuses).
        self.used = used
        self.source = source


class _ViewCodegen(_Codegen):
    """Codegen that serves covered inherited members from view columns."""

    def __init__(self, view: "TypeView", obs: Any = None) -> None:
        super().__init__(view.type, obs)
        self.view = view
        self.used: List[str] = []

    def _emit_name(self, identifier: str) -> Tuple[str, bool, bool]:
        col = self.view.col_of.get(identifier)
        if col is not None:
            participants = getattr(self.type, "participants", None)
            if not (participants and identifier in participants):
                if identifier not in self.used:
                    self.used.append(identifier)
                column = self._const("v", self.view.columns[col])
                return f"{column}[row]", False, False
        return super()._emit_name(identifier)


def _build_view_scan(node: Node, view: "TypeView", obs: Any = None) -> _ViewProgram:
    """Generate the batch filter loop of ``node`` over ``view``'s rows.

    Same shape as the slot scan of :func:`repro.expr.compile._build`:
    raw comparisons (``fast_cmp``), deleted objects dropped and counted,
    bail to ``None`` on a foreign type, a naked ``TypeError``, or an
    ``IndexError`` from a row the view never grew to — the caller then
    re-runs on the live path, which reproduces interpreter semantics
    (and errors) exactly.  View cells are addressed by ``obj._row``,
    the same index the stored-slot reads use: a live object's storage
    row is stable for its lifetime, so no surrogate lookup is needed.
    """
    gen = _ViewCodegen(view, obs)
    gen.fast_cmp = True
    fast, fast_bool, _ = gen.emit(node)
    fast_pred = fast if fast_bool else f"truthy({fast})"
    source = (
        "def _scan(objs):\n"
        "    try:\n"
        "        total = len(objs)\n"
        "    except TypeError:\n"
        "        return None\n"
        "    matched = []\n"
        "    append = matched.append\n"
        "    dropped = 0\n"
        "    try:\n"
        "        for obj in objs:\n"
        "            if obj._deleted:\n"
        "                dropped += 1\n"
        "                continue\n"
        "            if obj.object_type is not _scan_type:\n"
        "                return None\n"
        "            row = obj._row\n"
        f"            if {fast_pred}:\n"
        "                append(obj)\n"
        "    except (TypeError, IndexError):\n"
        "        return None\n"
        "    return (total - dropped, matched)\n"
    )
    env = gen.env
    env["_scan_type"] = view.type
    exec(compile(source, f"<view:{view.type.name}>", "exec"), env)
    return _ViewProgram(env["_scan"], tuple(gen.used), source)


class TypeView:
    """The flattened table of one concrete type's inherited members."""

    __slots__ = (
        "type",
        "schema_epoch",
        "names",
        "col_of",
        "columns",
        "row_of",
        "tainted",
        "staleness",
        "_programs",
    )

    def __init__(self, type_: Any, names: List[str], staleness: int = 0) -> None:
        self.type = type_
        #: Schema epoch of the layout; the manager drops-and-rebuilds the
        #: whole view when it goes stale (same lifecycle as value indexes).
        self.schema_epoch = _resolution.schema_epoch()
        self.names = list(names)
        self.col_of: Dict[str, int] = {n: i for i, n in enumerate(self.names)}
        #: Store-aligned columns: cell ``columns[c][obj._row]``.  The list
        #: objects are identity-stable for the view's lifetime — compiled
        #: scans close over them — and grow on demand to cover the highest
        #: storage row seen.  Row recycling is the store's business: when
        #: the :class:`~repro.core.slots.TypeStore` hands a freed row to a
        #: new object, :meth:`add` simply overwrites the cells in place.
        self.columns: List[List[Any]] = [[] for _ in self.names]
        #: surrogate -> storage row at adoption time.  Not on the scan
        #: path (the scan reads ``obj._row`` directly); kept because at
        #: forget time the object's ``_row`` is already spilled to -1 and
        #: removal needs to know which cells to clear.
        self.row_of: Dict[Any, int] = {}
        #: Surrogates whose last extraction raised something other than
        #: the label convention; a tainted view refuses to serve scans so
        #: the live path can reproduce the error.
        self.tainted: Set[Any] = set()
        #: Epoch rebuilds this view's type has seen (carried across
        #: rebuilds by the manager; surfaced per query.view.staleness).
        self.staleness = staleness
        #: id(where-node) -> (node, program); dies with the view, so a
        #: rebuild can never serve a scan bound to dead columns.
        self._programs: Dict[int, Tuple[Node, _ViewProgram]] = {}

    def __len__(self) -> int:
        return len(self.row_of)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<TypeView {self.type.name} epoch={self.schema_epoch} "
            f"cols={len(self.names)} rows={len(self.row_of)}>"
        )

    # -- row maintenance -----------------------------------------------------

    def _fill_row(self, obj: Any, row: int) -> None:
        san = TSAN
        if san is not None:
            san.write(("view", id(self)), label=f"view:{self.type.name}")
        surrogate = obj.surrogate
        try:
            for name, column in zip(self.names, self.columns):
                column[row] = _extract_cell(obj, name)
        except Exception:  # noqa: BLE001 — parity: live path must raise this
            self.tainted.add(surrogate)
        else:
            self.tainted.discard(surrogate)

    def add(self, obj: Any) -> None:
        row = obj._row
        if row < 0:  # spilled: the object is on its way out
            return
        if self.columns and row >= len(self.columns[0]):
            grow = row + 1 - len(self.columns[0])
            for column in self.columns:
                column.extend([None] * grow)
        self.row_of[obj.surrogate] = row
        self._fill_row(obj, row)

    def remove(self, obj: Any) -> None:
        san = TSAN
        if san is not None:
            san.write(("view", id(self)), label=f"view:{self.type.name}")
        row = self.row_of.pop(obj.surrogate, None)
        self.tainted.discard(obj.surrogate)
        if row is None:
            return
        for column in self.columns:
            column[row] = None

    def refresh_member(self, obj: Any, name: str) -> bool:
        """Re-extract one cell; True when this view tracked the object."""
        col = self.col_of.get(name)
        row = self.row_of.get(obj.surrogate)
        if col is None or row is None:
            return False
        san = TSAN
        if san is not None:
            san.write(("view", id(self)), label=f"view:{self.type.name}")
        try:
            self.columns[col][row] = _extract_cell(obj, name)
        except Exception:  # noqa: BLE001 — see _fill_row
            self.tainted.add(obj.surrogate)
        return True

    def refresh_object(self, obj: Any) -> bool:
        """Re-extract a whole row (topology changed under the object)."""
        row = self.row_of.get(obj.surrogate)
        if row is None:
            return False
        self._fill_row(obj, row)
        return True

    # -- compiled scans --------------------------------------------------------

    def program_for(self, node: Node, obs: Any = None) -> _ViewProgram:
        hit = self._programs.get(id(node))
        if hit is not None and hit[0] is node:
            return hit[1]
        program = _build_view_scan(node, self, obs)
        self._programs[id(node)] = (node, program)
        return program


class ViewManager:
    """Per-database registry, maintenance hub and router of type views.

    Attached as ``Database.views``.  Views are built on first routing once
    a source holds at least ``min_view_source`` objects (0 forces views in
    tests); ``auto = False`` disables routing entirely — the differential
    oracle mode, same contract as ``IndexManager.auto``.
    """

    def __init__(self, database: Any) -> None:
        self.database = database
        self.auto = True
        self.min_view_source = 16
        self.stats: Dict[str, int] = {
            "query.view.hits": 0,
            "query.view.misses": 0,
            "query.view.refreshes": 0,
            "query.view.staleness": 0,
        }
        self._views: Dict[Any, TypeView] = {}
        self._subscribed = False

    # -- statistics ------------------------------------------------------------

    def _bump(self, key: str, amount: int = 1) -> None:
        self.stats[key] = self.stats.get(key, 0) + amount
        obs = self.database.obs
        if obs is not None:
            obs.metrics.counter(key).inc(amount)

    def _audit(self, kind: str, subject: Any, **detail: Any) -> None:
        obs = self.database.obs
        if obs is not None:
            audit = obs.audit
            if audit is not None:
                audit.record(kind, subject, **detail)

    def stats_snapshot(self) -> Dict[str, int]:
        snapshot = dict(self.stats)
        snapshot["query.view.views"] = len(self._views)
        snapshot["query.view.rows"] = sum(
            len(view) for view in self._views.values()
        )
        snapshot["query.view.tainted"] = sum(
            len(view.tainted) for view in self._views.values()
        )
        return snapshot

    # -- lifecycle -------------------------------------------------------------

    def view_for(self, type_: Any) -> Optional[TypeView]:
        """The valid view of ``type_``, building (or rebuilding) lazily.

        Returns None when the type has no view-eligible members.  A
        schema-epoch bump invalidates the old view as a whole; the rebuild
        here is the lazy half of the drop-on-schema-change lifecycle and
        bumps ``query.view.staleness``.
        """
        view = self._views.get(type_)
        epoch = _resolution.schema_epoch()
        if view is not None and view.schema_epoch == epoch:
            return view
        staleness = 0
        if view is not None:
            staleness = view.staleness + 1
            self._bump("query.view.staleness")
            self._audit("view.rebuild", None, type=type_.name,
                        staleness=staleness)
            del self._views[type_]
        obs = self.database.obs
        names = view_eligible_names(_resolution.plan_for(type_, obs))
        if not names:
            return None
        view = TypeView(type_, names, staleness)
        for obj in self.database.indexes.objects_of_type(
            type_, include_subtypes=False
        ):
            if not obj._deleted:
                view.add(obj)
        self._views[type_] = view
        self._ensure_subscribed()
        return view

    def drop_views(self) -> None:
        """Drop every view (they rebuild lazily on next routing)."""
        self._views.clear()

    # -- planner routing -------------------------------------------------------

    def _touches_view_member(self, where: Node, entries: Dict[str, Any]) -> bool:
        """True when ``where`` references ≥1 view-eligible inherited name.

        Walks only the node shapes the codegen serves fast (quantifier and
        aggregate subtrees evaluate interpretively either way).
        """
        stack: List[Node] = [where]
        while stack:
            node = stack.pop()
            if isinstance(node, Name):
                entry = entries.get(node.identifier)
                if (entry is not None and entry.rels
                        and entry.kind in _ELIGIBLE_KINDS):
                    return True
            elif isinstance(node, Unary):
                stack.append(node.operand)
            elif isinstance(node, Binary):
                stack.append(node.left)
                stack.append(node.right)
            elif isinstance(node, Path):
                stack.append(node.base)
        return False

    def try_scan(
        self, where: Node, candidates: List[Any], plan: Any, obs: Any = None
    ) -> Optional[Tuple[int, List[Any]]]:
        """Route a full-scan ``where`` over ``candidates`` to a view.

        Returns ``(scanned, matched)`` on success — then ``plan`` shows
        ``view`` as the access path — or None, in which case the caller
        proceeds on the live path untouched.  Quiet (no miss, no note)
        when the predicate doesn't touch an inherited member at all;
        a counted miss when a view *should* have served but couldn't.
        """
        if not self.auto or not candidates:
            return None
        if plan.source_size < self.min_view_source:
            return None
        type_ = candidates[0].object_type
        entries = _resolution.plan_for(type_, obs).entries
        if not self._touches_view_member(where, entries):
            return None
        view = self.view_for(type_)
        if view is None:
            self._bump("query.view.misses")
            return None
        if view.tainted:
            self._bump("query.view.misses")
            plan.notes.append(
                f"view {type_.name}: {len(view.tainted)} tainted row(s); "
                f"live path kept"
            )
            return None
        program = view.program_for(where, obs)
        if not program.used:
            self._bump("query.view.misses")
            return None
        outcome = program.scan(candidates)
        if outcome is None:
            self._bump("query.view.misses")
            plan.notes.append(
                f"view {type_.name}: scan bailed (mixed types or raw-compare "
                f"error); re-ran on the live path"
            )
            return None
        self._bump("query.view.hits")
        plan.access_path = "view"
        plan.notes.append(
            f"view: {type_.name} columns [{', '.join(program.used)}]"
        )
        return outcome

    # -- object-registry hooks (synchronous, from Database) ---------------------

    def object_adopted(self, obj: Any) -> None:
        if not self._views:
            return
        view = self._views.get(obj.object_type)
        if view is not None and view.schema_epoch == _resolution.schema_epoch():
            view.add(obj)
            self._bump("query.view.refreshes")

    def object_forgotten(self, obj: Any) -> None:
        if not self._views:
            return
        view = self._views.get(obj.object_type)
        if view is not None:
            view.remove(obj)

    # -- event-driven maintenance ----------------------------------------------

    def _ensure_subscribed(self) -> None:
        if self._subscribed:
            return
        bus = self.database.events
        bus.subscribe("attribute_updated", self._on_attribute_event)
        bus.subscribe("attribute_restored", self._on_attribute_event)
        bus.subscribe("inheritor_bound", self._on_binding_event)
        bus.subscribe("inheritor_unbound", self._on_binding_event)
        bus.subscribe("subobject_added", self._on_container_event)
        bus.subscribe("subobject_removed", self._on_container_event)
        bus.subscribe("relationship_created", self._on_container_event)
        bus.subscribe("relationship_removed", self._on_container_event)
        self._subscribed = True

    def _refresh_member_event(self, event: Any, name: str) -> None:
        epoch = _resolution.schema_epoch()
        for target in _with_inheritors(event.subject):
            view = self._views.get(target.object_type)
            if view is None or view.schema_epoch != epoch:
                continue
            if target._deleted:
                view.remove(target)
                continue
            if view.refresh_member(target, name):
                self._bump("query.view.refreshes")
                self._audit(
                    "view.maintenance", target, attribute=name,
                    view=view.type.name, reason=event.kind,
                )

    def _on_attribute_event(self, event: Any) -> None:
        if not self._views:
            return
        name = event.data.get("attribute")
        if name is not None:
            self._refresh_member_event(event, name)

    def _on_container_event(self, event: Any) -> None:
        if not self._views:
            return
        # Local containers emit with the member name under "subclass"
        # (subobjects) or "subrel" (local relationships); top-level
        # relationship events carry neither and touch no view cell.
        name = event.data.get("subclass") or event.data.get("subrel")
        if name is not None:
            self._refresh_member_event(event, name)

    def _on_binding_event(self, event: Any) -> None:
        if not self._views:
            return
        # A topology change can re-route every inherited member below the
        # subject: re-extract whole rows for the downstream subtree.
        epoch = _resolution.schema_epoch()
        for target in _with_inheritors(event.subject):
            view = self._views.get(target.object_type)
            if view is None or view.schema_epoch != epoch:
                continue
            if target._deleted:
                view.remove(target)
                continue
            if view.refresh_object(target):
                self._bump("query.view.refreshes")
                self._audit(
                    "view.maintenance", target, view=view.type.name,
                    reason=event.kind,
                )
