"""Compiled member-resolution plans with epoch-based invalidation.

The paper's central mechanism — value inheritance through typed
transmitter/inheritor links (§4.1) — used to be resolved by an
*interpretive walk*: every read re-scanned the type's ``inheritor-in``
declarations, asked each relationship type whether the member is permeable,
and recursively delegated up the abstraction hierarchy, so a k-level
interface chain paid k scans per read.

This module compiles that decision once per type:

* :class:`ResolutionPlan` — a per-:class:`~repro.core.objtype.TypeBase`
  table mapping every visible member name to a :class:`MemberEntry` that
  says *how* the name binds (automatic surrogate / attribute / subclass
  container / subrel container) and through *which* inheritance
  relationship types it may be inherited, with the paper's
  diamond-disambiguation order (``inheritor-in`` declaration order) baked
  in at compile time.

* **Epochs** — cheap monotonic counters that replace event fan-out for
  invalidation:

  - the global *schema epoch* (:func:`schema_epoch`), bumped whenever a
    type is defined or an ``inheritor-in:`` clause is declared.  Every
    plan records the epoch it was compiled under; a plan whose epoch is
    stale is recompiled lazily on next use.  Validation is one integer
    compare per read.
  - per-object *binding* and *mutation* epochs
    (``DBObject._binding_epoch`` / ``DBObject._mutation_epoch``).  The
    mutation epoch moves on attribute/subobject writes of that object;
    the binding epoch moves when the object's *resolution topology*
    changes — its own bind/unbind or any upstream binding change, because
    bumps propagate down the inheritor subtree at bind time.  Consumers
    that materialise a resolved value (``DBObject.get_member``'s own
    holder memo, the
    :class:`~repro.composition.cache.InheritedValueCache`) therefore
    validate with O(1) integer compares instead of subscribing to the
    event bus or re-walking the chain.

The compiled plan preserves the interpretive semantics bit for bit:
declaration-order diamond resolution, permeability filtering, dynamic
attributes, local values on *unbound* inheritors, and frozen local
containers while bound.  :func:`naive_get_member` keeps the original walk
as an executable oracle — the property tests compare both resolvers over
randomized schemas, and benchmark E14 measures the speedup.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..errors import ObjectDeletedError, UnknownAttributeError
from .interning import intern_name

__all__ = [
    "MemberEntry",
    "ResolutionPlan",
    "plan_for",
    "compile_plan",
    "schema_epoch",
    "bump_schema_epoch",
    "resolution_stats",
    "reset_stats",
    "naive_binding_link",
    "naive_get_member",
    "naive_resolution_chain",
]

# ---------------------------------------------------------------------------
# schema epoch
# ---------------------------------------------------------------------------

#: The global schema epoch.  Read directly by the hot paths in
#: :mod:`repro.core.objects`; bump only through :func:`bump_schema_epoch`.
_SCHEMA_EPOCH = 0

#: Race-sanitizer guard (:mod:`repro.obs.race`): ``None`` when dark, the
#: active sanitizer while enabled.
TSAN: Any = None


def schema_epoch() -> int:
    """The current global schema epoch."""
    return _SCHEMA_EPOCH


def bump_schema_epoch() -> int:
    """Advance the schema epoch, invalidating every compiled plan.

    Called by type definition and ``declare_inheritor_in``.  Plans are not
    eagerly recompiled — each is refreshed lazily the next time it is used.
    """
    global _SCHEMA_EPOCH
    san = TSAN
    if san is not None:
        san.write(("schema_epoch",), label="schema_epoch")
    _SCHEMA_EPOCH += 1
    return _SCHEMA_EPOCH


# ---------------------------------------------------------------------------
# compile statistics (process-global; per-database counters are emitted
# through the obs registry when a database handle is in scope)
# ---------------------------------------------------------------------------


class _PlanStats:
    __slots__ = ("compiles", "invalidations")

    def __init__(self) -> None:
        self.compiles = 0
        self.invalidations = 0


_STATS = _PlanStats()


def resolution_stats() -> Dict[str, int]:
    """Process-global plan statistics (also exported by obs snapshots)."""
    return {
        "resolution.plans_compiled": _STATS.compiles,
        "resolution.plan_invalidations": _STATS.invalidations,
        "resolution.schema_epoch": _SCHEMA_EPOCH,
    }


def reset_stats() -> None:
    _STATS.compiles = 0
    _STATS.invalidations = 0


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


class MemberEntry:
    """How one member name binds on instances of one type.

    ``rels`` lists the names of the inheritance-relationship types the
    member is permeable through, in ``inheritor-in`` declaration order —
    the first *bound* one wins, which is exactly the paper's diamond
    disambiguation.  When no listed relationship is bound (or the tuple is
    empty), the name resolves locally: stored attribute value, subclass /
    subrel container, then the attribute spec's default.
    """

    __slots__ = (
        "name",
        "kind",
        "rels",
        "spec",
        "default",
        "check_subclass",
        "check_subrel",
        "slot",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        rels: Tuple[str, ...],
        spec,
        default: Any,
        check_subclass: bool,
        check_subrel: bool,
        slot: Any = None,
    ):
        self.name = name
        self.kind = kind
        self.rels = rels
        self.spec = spec
        self.default = default
        self.check_subclass = check_subclass
        self.check_subrel = check_subrel
        #: Column index of the member in the type's slotted store
        #: (:mod:`repro.core.slots`), or None for members without local
        #: attribute storage (surrogate, containers).  Slots follow the
        #: position in :attr:`ResolutionPlan.attribute_names` — the plan is
        #: the layout authority the store compiles from.
        self.slot = slot

    def __repr__(self) -> str:
        via = f" via {list(self.rels)}" if self.rels else ""
        return f"<MemberEntry {self.name} {self.kind}{via}>"


class ResolutionPlan:
    """The compiled member-dispatch table of one type.

    Attributes
    ----------
    schema_epoch:
        The global epoch the plan was compiled under.  A plan is valid
        exactly while ``plan.schema_epoch == resolution.schema_epoch()``.
    entries:
        Member name → :class:`MemberEntry` for every *visible* member
        (own and type-level inherited), including the automatic
        ``surrogate``.
    member_names:
        The visible member names in the canonical order
        (``surrogate``, attributes, subclasses, subrels; first occurrence
        wins) — the precompiled result of
        :meth:`~repro.core.objects.DBObject.visible_member_names`.
    attribute_names:
        Effective attribute names only (expansion / cloning iterate these).
    inherited_names:
        Names that may be inherited through at least one relationship.
    permeable_sets:
        Relationship-type name → frozenset of its permeable members, for
        every ``inheritor-in`` declaration — reused by the lock-expansion
        planner instead of rebuilding frozensets per lock plan.
    """

    __slots__ = (
        "type",
        "schema_epoch",
        "entries",
        "member_names",
        "attribute_names",
        "inherited_names",
        "permeable_sets",
    )

    def __init__(self, type_) -> None:
        self.type = type_
        self.schema_epoch = _SCHEMA_EPOCH
        rels_for: Dict[str, Tuple[str, ...]] = {}
        permeable_sets: Dict[str, frozenset] = {}
        for rel in type_.inheritor_in:
            permeable_sets[rel.name] = frozenset(rel.inheriting)
            for member in rel.inheriting:
                member = intern_name(member)
                rels_for[member] = rels_for.get(member, ()) + (rel.name,)
        self.permeable_sets = permeable_sets

        # Names are interned at compile time: plan entries, slot maps and
        # parsed query identifiers then probe each other by identity.
        effective_attrs = [intern_name(n) for n in type_.effective_attributes()]
        effective_subclasses = {
            intern_name(n): spec
            for n, spec in type_.effective_subclasses().items()
        }
        effective_subrels = {
            intern_name(n): spec for n, spec in type_.effective_subrels().items()
        }

        entries: Dict[str, MemberEntry] = {
            "surrogate": MemberEntry(
                "surrogate", "surrogate", (), None, None, False, False
            )
        }
        names = ["surrogate"]
        attr_names: list = []
        for name in effective_attrs:
            if name in entries:
                continue
            names.append(name)
            # effective_attribute() resolves diamonds first-declared-wins,
            # matching the object-level binding order.
            spec = type_.effective_attribute(name)
            entries[name] = MemberEntry(
                name,
                "attribute",
                rels_for.get(name, ()),
                spec,
                spec.default if spec is not None and spec.has_default else None,
                name in effective_subclasses,
                name in effective_subrels,
                len(attr_names),
            )
            attr_names.append(name)
        for name in effective_subclasses:
            if name in entries:
                continue
            names.append(name)
            entries[name] = MemberEntry(
                name, "subclass", rels_for.get(name, ()), None, None, True, False
            )
        for name in effective_subrels:
            if name in entries:
                continue
            names.append(name)
            entries[name] = MemberEntry(
                name, "subrel", rels_for.get(name, ()), None, None, False, True
            )
        # Permeability declarations are checked against the transmitter's
        # members, so normally every permeable name is already an effective
        # member here.  Guard the exotic cases anyway (the interpretive walk
        # consulted is_permeable() without an existence check): such names
        # delegate while bound but stay invisible to introspection.
        for name, rels in rels_for.items():
            if name not in entries:
                entries[name] = MemberEntry(
                    name, "inherited", rels, None, None, True, True
                )
        self.entries = entries
        self.member_names: Tuple[str, ...] = tuple(names)
        #: Slot order of the type's store: ``attribute_names[i]`` lives in
        #: column ``i`` (deduplicated; aligned with ``entry.slot``).
        self.attribute_names: Tuple[str, ...] = tuple(attr_names)
        self.inherited_names = frozenset(
            name for name, entry in entries.items() if entry.rels
        )

    def __repr__(self) -> str:
        return (
            f"<ResolutionPlan {self.type.name} epoch={self.schema_epoch} "
            f"members={len(self.entries)}>"
        )


def compile_plan(type_, obs=None) -> ResolutionPlan:
    """(Re)compile the plan for ``type_`` and install it on the type."""
    stale = type_._plan is not None
    plan = ResolutionPlan(type_)
    type_._plan = plan
    _STATS.compiles += 1
    if stale:
        _STATS.invalidations += 1
    if obs is not None:
        obs.metrics.counter("resolution.plans_compiled").inc()
        if stale:
            obs.metrics.counter("resolution.epoch_invalidations").inc()
    return plan


def plan_for(type_, obs=None) -> ResolutionPlan:
    """The valid plan for ``type_``, compiling lazily.

    Validation is O(1): one attribute load and one integer compare against
    the global schema epoch.
    """
    plan = type_._plan
    if plan is not None and plan.schema_epoch == _SCHEMA_EPOCH:
        return plan
    return compile_plan(type_, obs)


# ---------------------------------------------------------------------------
# the reference resolver (oracle)
# ---------------------------------------------------------------------------


def naive_binding_link(obj, name: str):
    """The first bound link ``name`` is inherited through — interpretive.

    Replicates the original per-read walk over ``inheritor-in`` in
    declaration order; kept as the oracle the plan-based resolution is
    tested (and benchmarked) against.
    """
    links = obj._links_as_inheritor
    for rel_type in obj.object_type.inheritor_in:
        if rel_type.is_permeable(name):
            link = links.get(rel_type.name)
            if link is not None:
                return link
    return None


def naive_get_member(obj, name: str) -> Any:
    """Reference member resolution — the pre-plan interpretive algorithm.

    Semantics must match :meth:`repro.core.objects.DBObject.get_member`
    (including the participant shadowing of relationship objects and every
    error condition); the property tests in ``tests/test_resolution.py``
    enforce the equivalence over randomized schemas.
    """
    if obj._deleted:
        raise ObjectDeletedError(f"{obj!r} was deleted")
    participants = getattr(obj, "_participants", None)
    if participants is not None and name in participants:
        value = participants[name]
        return list(value) if isinstance(value, tuple) else value
    if name == "surrogate":
        return obj.surrogate
    link = naive_binding_link(obj, name)
    if link is not None:
        obs = getattr(obj.database, "obs", None)
        if obs is not None:
            obs.metrics.counter("reads.inherited").inc()
        return naive_get_member(link.transmitter, name)
    if name in obj._attrs:
        return obj._attrs[name]
    container = obj._subclasses.get(name)
    if container is not None:
        return container.members()
    rel_container = obj._subrels.get(name)
    if rel_container is not None:
        return rel_container.members()
    spec = obj.object_type.effective_attribute(name)
    if spec is not None:
        return spec.default if spec.has_default else None
    if getattr(obj.object_type, "allow_dynamic", False):
        raise UnknownAttributeError(
            f"{obj!r} has no value for dynamic attribute {name!r}"
        )
    raise UnknownAttributeError(
        f"type {obj.object_type.name!r} has no member {name!r}"
    )


def naive_is_member_inherited(obj, name: str) -> bool:
    """Interpretive counterpart of ``DBObject.is_member_inherited``."""
    return naive_binding_link(obj, name) is not None


def naive_resolution_chain(obj, name: str) -> list:
    """The delegation chain ``naive_get_member`` walks for ``name``, as a
    list of objects: ``[obj, transmitter, …, holder]``.

    The interpretive oracle for value provenance: the inheritance path
    reported by :func:`repro.obs.provenance.explain_value` must equal this
    chain link for link (the hypothesis tests enforce it).  Participant
    shadowing and the automatic ``surrogate`` terminate the chain at the
    object itself, exactly as the recursion in :func:`naive_get_member`
    would.
    """
    chain = [obj]
    current = obj
    while True:
        participants = getattr(current, "_participants", None)
        if participants is not None and name in participants:
            return chain
        if name == "surrogate":
            return chain
        link = naive_binding_link(current, name)
        if link is None:
            return chain
        current = link.transmitter
        chain.append(current)
