"""Differential verification: static predictions vs runtime oracles.

``verify_against_runtime`` takes a schema, lints it, then *actually*
exercises the engine — building the catalog, synthesizing one instance per
object type, binding every declared inheritor, creating one relationship
per relationship type — and cross-checks the two verdicts:

* every **error** diagnostic must correspond to a real failure (the build
  raises, instantiation/binding raises, an oracle disagrees, or
  ``check_integrity`` reports violations);
* a schema with **no** error diagnostics must come up clean on all of the
  above.

Member reads are double-checked against the interpretive oracles
(:func:`~repro.core.resolution.naive_get_member`,
:func:`~repro.core.resolution.naive_resolution_chain`) so a lint-clean
schema is also demonstrated to resolve deterministically.  Constraint
evaluation is deliberately *not* part of the runtime verdict: synthesized
instances leave attributes unset, which legitimately violates value
constraints without indicating a schema defect.

``strict=True`` holds the rule set itself to account: the REP100
build-failure safety net is not consulted, so a build failure counts as
*missed* unless a specific rule predicted it.  The curated defect corpus
in the tests runs in strict mode; randomized schemas use the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core import resolution
from ..core.inheritance import InheritanceRelationshipType
from ..core.reltype import RelationshipType
from ..ddl import ast as ddl_ast
from ..ddl.builder import SchemaBuilder
from ..ddl.parser import parse_schema_source
from ..engine.database import Database
from ..engine.integrity import check_integrity
from ..errors import ReproError
from .diagnostics import Diagnostic, ERROR, make, sort_diagnostics
from .model import model_from_ast
from .rules import diagnostics_from_violations, run_model_rules

__all__ = ["Disagreement", "VerifyReport", "verify_against_runtime"]


@dataclass
class Disagreement:
    """One divergence between the static and the runtime verdict."""

    #: ``missed-failure`` (runtime failed, no error predicted) or
    #: ``false-alarm`` (errors predicted, runtime clean).
    kind: str
    detail: str

    def render(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class VerifyReport:
    """Outcome of one differential run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    disagreements: List[Disagreement] = field(default_factory=list)
    #: Runtime failures observed (empty for a clean schema).
    failures: List[str] = field(default_factory=list)
    #: Individual runtime probes performed (reads, oracle comparisons …).
    checks: int = 0
    built: bool = False

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def render(self) -> str:
        errors = sum(1 for d in self.diagnostics if d.severity == ERROR)
        lines = [
            f"verify: {len(self.diagnostics)} diagnostic(s) "
            f"({errors} error(s)), {len(self.failures)} runtime "
            f"failure(s), {self.checks} probe(s), "
            f"{'schema built' if self.built else 'build failed'}",
        ]
        lines.extend(d.render() for d in self.disagreements)
        lines.append("verify: OK" if self.ok else
                     f"verify: {len(self.disagreements)} disagreement(s)")
        return "\n".join(lines)


def verify_against_runtime(
    source: Union[str, ddl_ast.Schema],
    source_path: Optional[str] = None,
    strict: bool = False,
) -> VerifyReport:
    """Cross-check static predictions against the live engine."""
    report = VerifyReport()

    if isinstance(source, str):
        try:
            schema = parse_schema_source(source)
        except ReproError as exc:
            # Unparseable DDL: the analyzer reports REP100 with the parse
            # error; runtime agrees by definition (nothing can build).
            report.diagnostics = [make(
                "REP100", f"schema does not parse: {exc}",
            )]
            report.failures = [f"parse: {exc}"]
            return report
    else:
        schema = source

    model = model_from_ast(schema, source_path)
    report.diagnostics = sort_diagnostics(run_model_rules(model))
    predicted_errors = [d for d in report.diagnostics if d.severity == ERROR]

    db = Database("verify")
    try:
        SchemaBuilder(db.catalog).build(schema)
    except Exception as exc:  # noqa: BLE001 — any build failure is the signal
        report.failures.append(f"build: {type(exc).__name__}: {exc}")
        if not strict:
            report.diagnostics = sort_diagnostics(
                report.diagnostics
                + [make("REP100", f"schema fails to build: {exc}")]
            )
            predicted_errors = [
                d for d in report.diagnostics if d.severity == ERROR
            ]
        if not predicted_errors:
            report.disagreements.append(Disagreement(
                "missed-failure",
                f"schema build raised {type(exc).__name__} ({exc}) but no "
                f"error diagnostic predicted it",
            ))
        return report
    report.built = True

    _exercise(db, report)

    if report.failures and not predicted_errors:
        report.disagreements.append(Disagreement(
            "missed-failure",
            f"runtime failed ({report.failures[0]}"
            + (f" and {len(report.failures) - 1} more" if len(report.failures) > 1 else "")
            + ") but no error diagnostic predicted it",
        ))
    if predicted_errors and not report.failures:
        for diagnostic in predicted_errors:
            report.disagreements.append(Disagreement(
                "false-alarm",
                f"{diagnostic.code} predicted a failure "
                f"({diagnostic.message}) but the schema builds and runs "
                f"cleanly",
            ))
    return report


# ---------------------------------------------------------------------------
# instance synthesis + oracle probes
# ---------------------------------------------------------------------------


def _exercise(db: Database, report: VerifyReport) -> None:
    """Instantiate the schema once and compare engine vs oracles."""
    instances = _synthesize(db, report)
    if report.failures:
        return

    for obj in instances.values():
        plan = resolution.plan_for(obj.object_type)
        for member in sorted(plan.entries):
            report.checks += 1
            engine_value = _outcome(lambda: obj.get_member(member))
            oracle_value = _outcome(
                lambda: resolution.naive_get_member(obj, member)
            )
            if not _same_outcome(engine_value, oracle_value):
                report.failures.append(
                    f"resolution: {obj.object_type.name}.{member}: engine "
                    f"{engine_value!r} != oracle {oracle_value!r}"
                )
                continue
            report.checks += 1
            chain = _outcome(
                lambda: resolution.naive_resolution_chain(obj, member)
            )
            if chain[0] == "value":
                holders = chain[1]
                if not holders or holders[0] is not obj:
                    report.failures.append(
                        f"resolution: {obj.object_type.name}.{member}: "
                        f"oracle chain does not start at the object"
                    )

    _probe_views(db, instances, report)

    report.checks += 1
    violations = check_integrity(db)
    if violations:
        report.failures.extend(
            f"integrity: {diag.code} {diag.message}"
            for diag in diagnostics_from_violations(violations)
        )


def _probe_views(db: Database, instances: Dict[str, Any], report: VerifyReport) -> None:
    """View-vs-live parity: every materialized cell must agree with the
    interpretive oracle, and a view-routed query must return exactly what
    the live resolution path returns.

    A live read that raises ``KeyError``/``UnknownAttributeError`` maps to
    the member's own spelling — the engine-wide label convention — so the
    view cell is compared against that; any *other* live failure must have
    tainted the row (a tainted view refuses scans, keeping error parity).
    """
    from ..query.executor import run_query

    db.views.min_view_source = 0  # probe even single-instance extents
    for obj in instances.values():
        if obj.deleted:
            continue
        view = db.views.view_for(obj.object_type)
        if view is None:
            continue
        vrow = view.row_of.get(obj.surrogate)
        if vrow is None:
            report.failures.append(
                f"views: {obj.object_type.name} instance {obj.surrogate} "
                f"missing from its type view"
            )
            continue
        for member in view.names:
            report.checks += 1
            expected = _outcome(
                lambda: resolution.naive_get_member(obj, member)
            )
            if expected[0] == "raise":
                if expected[1] in ("KeyError", "UnknownAttributeError"):
                    expected = ("value", member)  # label convention
                elif obj.surrogate not in view.tainted:
                    report.failures.append(
                        f"views: {obj.object_type.name}.{member}: live read "
                        f"raises {expected[1]} but the view row is not "
                        f"tainted"
                    )
                    continue
                else:
                    continue
            cell = view.columns[view.col_of[member]][vrow]
            if not _same_outcome(("value", cell), expected):
                report.failures.append(
                    f"views: {obj.object_type.name}.{member}: view cell "
                    f"{cell!r} != oracle {expected[1]!r}"
                )

    for name, obj in instances.items():
        if obj.deleted:
            continue
        view = db.views._views.get(obj.object_type)
        if view is None or not view.names:
            continue
        member = view.names[0]
        if not (name.isidentifier() and member.isidentifier()):
            continue
        text = f"select * from {name} where {member} = {member}"
        report.checks += 1
        live = _outcome(lambda: frozenset(
            o.surrogate for o in run_query(db, text, views=False).objects
        ))
        routed = _outcome(lambda: frozenset(
            o.surrogate for o in run_query(db, text, views=True).objects
        ))
        if not _same_outcome(routed, live):
            report.failures.append(
                f"views: query {text!r}: view path {routed!r} != live "
                f"path {live!r}"
            )


def _synthesize(db: Database, report: VerifyReport) -> Dict[str, Any]:
    """One instance per object type, every declared bind, one relationship
    per relationship type.  Legal by construction when the schema built —
    so any exception here is a runtime failure the lint should have
    predicted."""
    instances: Dict[str, Any] = {}
    inheritance_types: List[InheritanceRelationshipType] = []
    plain_rel_types: List[RelationshipType] = []

    for type_ in db.catalog:
        if isinstance(type_, InheritanceRelationshipType):
            inheritance_types.append(type_)
        elif isinstance(type_, RelationshipType):
            plain_rel_types.append(type_)
        elif "." not in type_.name:
            # Anonymous element types materialise as subobjects; only
            # named types get a free-standing instance.
            try:
                instances[type_.name] = db.create_object(type_)
                report.checks += 1
            except Exception as exc:  # noqa: BLE001
                report.failures.append(
                    f"create {type_.name}: {type(exc).__name__}: {exc}"
                )

    for rel_type in inheritance_types:
        transmitter = instances.get(rel_type.transmitter_type.name)
        for inheritor_type in rel_type.known_inheritor_types:
            inheritor = instances.get(inheritor_type.name)
            if inheritor is None or transmitter is None:
                continue
            report.checks += 1
            try:
                db.bind(inheritor, transmitter, rel_type)
            except Exception as exc:  # noqa: BLE001
                report.failures.append(
                    f"bind {inheritor_type.name} -[{rel_type.name}]-> "
                    f"{rel_type.transmitter_type.name}: "
                    f"{type(exc).__name__}: {exc}"
                )

    for rel_type in plain_rel_types:
        roles: Dict[str, Any] = {}
        fillable = True
        for role, spec in rel_type.participants.items():
            target = spec.object_type
            filler = (
                instances.get(target.name) if target is not None
                else next(iter(instances.values()), None)
            )
            if filler is None:
                fillable = False
                break
            roles[role] = [filler] if spec.many else filler
        if not fillable:
            continue
        report.checks += 1
        try:
            db.create_relationship(rel_type, roles)
        except Exception as exc:  # noqa: BLE001
            report.failures.append(
                f"relate {rel_type.name}: {type(exc).__name__}: {exc}"
            )

    return instances


def _outcome(thunk) -> Tuple[str, Any]:
    """Normalise a probe to ('value', v) or ('raise', exception type name)."""
    try:
        return ("value", thunk())
    except Exception as exc:  # noqa: BLE001 — oracle comparison needs the type
        return ("raise", type(exc).__name__)


def _same_outcome(left: Tuple[str, Any], right: Tuple[str, Any]) -> bool:
    if left[0] != right[0]:
        return False
    if left[0] == "raise":
        return left[1] == right[1]
    try:
        return bool(left[1] == right[1])
    except Exception:  # noqa: BLE001 — incomparable values: identity decides
        return left[1] is right[1]


# ---------------------------------------------------------------------------
# engine concurrency invariants: the PR-10 differential harness
# ---------------------------------------------------------------------------

#: A sacrificial module with a textbook ABBA inversion, a blocking call
#: under a mutex and a reentrant acquire — the lockorder layer must catch
#: all three.
_SEEDED_INVERSION = '''
import threading
import time

LOCK_A = threading.Lock()
LOCK_B = threading.Lock()

def forward():
    with LOCK_A:
        with LOCK_B:
            pass

def backward():
    with LOCK_B:
        with LOCK_A:
            time.sleep(0.1)

def doubled():
    with LOCK_A:
        with LOCK_A:
            pass
'''

#: A sacrificial module violating each REP60x invariant once.
_SEEDED_LINT_DEFECTS = '''
def sloppy_undo(obj, name, old):
    obj._attrs[name] = old

def hand_rolled(kind):
    return Event(kind=kind)

def leaky(lock):
    lock.acquire()
    lock.release()

def racy_walk(self):
    return [waiter for waiter in self._waits_for]
'''


@dataclass
class EngineCheck:
    """One differential check: a layer against a seeded or clean input."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return f"  [{status}] {self.name}: {self.detail}"


@dataclass
class EngineVerifyReport:
    """Outcome of :func:`verify_engine_invariants`."""

    checks: List[EngineCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        lines = [f"engine concurrency verification: {verdict} "
                 f"({len(self.checks)} checks)"]
        lines.extend(check.render() for check in self.checks)
        return "\n".join(lines)


def _race_rounds(locked: bool) -> int:
    """Two threads hammer one object's storage cell; candidate races seen.

    ``locked=False`` seeds the defect: raw unsynchronised writes through
    :class:`~repro.core.slots.AttrsView`.  ``locked=True`` is the clean
    twin — every write runs inside a granted exclusive lock on the
    object, so lock hand-off gives the sanitizer both a nonempty lockset
    and a happens-before edge.
    """
    import threading

    from ..obs import race
    from ..txn.locks import LockMode, LockTable

    with race.sandbox() as sanitizer:
        db = Database("engine-verify")
        gate = db.catalog.define_object_type(
            "VerifyGate", attributes={}, allow_dynamic=True
        )
        obj = db.create_object("VerifyGate")
        table = LockTable()
        surrogate = obj.surrogate

        def worker(txn_id: int) -> None:
            for i in range(40):
                if locked:
                    table.acquire(
                        txn_id, surrogate, LockMode.X, wait=True, timeout=10.0
                    )
                try:
                    obj._attrs["Cell"] = (txn_id, i)  # lint: allow(REP601)
                finally:
                    if locked:
                        table.release_all(txn_id)

        threads = [
            threading.Thread(target=worker, args=(txn_id,))
            for txn_id in (1, 2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gate is not None  # keep the type alive for the writes
        return len(sanitizer.reports)


def verify_engine_invariants() -> EngineVerifyReport:
    """Hold every PR-10 layer to the differential standard.

    Each layer must (a) catch a seeded defect in a sacrificial input and
    (b) stay quiet on the clean engine — the same contract
    :func:`verify_against_runtime` enforces for the schema rules.
    """
    import os
    import tempfile

    from . import engine_lint, lockorder

    report = EngineVerifyReport()

    seeded_races = _race_rounds(locked=False)
    report.checks.append(EngineCheck(
        "sanitizer detects the seeded unsynchronised write",
        seeded_races > 0,
        f"{seeded_races} candidate race(s) on the raw-write twin",
    ))
    locked_races = _race_rounds(locked=True)
    report.checks.append(EngineCheck(
        "sanitizer stays quiet when the writes are lock-protected",
        locked_races == 0,
        f"{locked_races} candidate race(s) on the locked twin",
    ))

    with tempfile.TemporaryDirectory() as tmp:
        with open(os.path.join(tmp, "seeded.py"), "w", encoding="utf-8") as f:
            f.write(_SEEDED_INVERSION)
        seeded = lockorder.analyze_lock_order(tmp)
    seeded_codes = {d.code for d in seeded.diagnostics()}
    report.checks.append(EngineCheck(
        "lockorder detects the seeded ABBA inversion",
        {"REP610", "REP611", "REP612"} <= seeded_codes,
        f"cycles={len(seeded.cycles)} codes={sorted(seeded_codes)}",
    ))
    clean = lockorder.analyze_lock_order()
    clean_errors = [
        d for d in clean.diagnostics() if d.code in ("REP610", "REP612")
    ]
    report.checks.append(EngineCheck(
        "lockorder finds no cycle or self-deadlock in the engine",
        not clean.cycles and not clean_errors,
        f"{len(clean.locks)} locks, {len(clean.edges)} edges, "
        f"{len(clean.cycles)} cycles over {clean.files_scanned} files",
    ))

    seeded_lint = engine_lint.lint_source(
        _SEEDED_LINT_DEFECTS, rel="seeded_defects.py"
    )
    lint_codes = {d.code for d in seeded_lint}
    report.checks.append(EngineCheck(
        "engine lint detects every seeded invariant violation",
        {"REP601", "REP602", "REP603", "REP604"} <= lint_codes,
        f"codes={sorted(lint_codes)}",
    ))
    clean_lint = engine_lint.lint_engine()
    report.checks.append(EngineCheck(
        "engine lint is clean on the real tree",
        not clean_lint.diagnostics,
        f"{len(clean_lint.diagnostics)} finding(s), "
        f"{clean_lint.suppressed} suppressed by pragma over "
        f"{clean_lint.files_scanned} files",
    ))
    return report
