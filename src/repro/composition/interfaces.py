"""Interfaces, implementations and abstraction hierarchies (§2, §4.2).

An *interface* is simply a transmitter object: the data common to all of a
design object's implementations.  Implementations are its inheritors.
Because interfaces may themselves inherit from more abstract
"super-interfaces", design objects form an **abstraction hierarchy**; the
helpers here navigate it and support the §4.2 design workflow — composites
first use components from abstract levels, then *refine* the component by
walking down the hierarchy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import DBObject, InheritanceLink, bind
from ..errors import InheritanceError

__all__ = [
    "implementations_of",
    "interfaces_of",
    "abstraction_chain",
    "abstraction_tree",
    "rebind",
    "refine",
]


def implementations_of(
    interface: DBObject,
    rel_type: Optional[InheritanceRelationshipType] = None,
) -> List[DBObject]:
    """Objects inheriting from ``interface`` (optionally via one rel type)."""
    return [
        link.inheritor
        for link in interface.inheritor_links
        if rel_type is None or link.rel_type is rel_type
    ]


def interfaces_of(obj: DBObject) -> List[DBObject]:
    """The transmitters ``obj`` is bound to (its interfaces/components)."""
    return [link.transmitter for link in obj.inheritance_links]


def abstraction_chain(obj: DBObject) -> List[DBObject]:
    """The chain from ``obj`` up to the most abstract interface.

    Follows the first bound link at each level (the common case is a single
    interface per object); ``obj`` itself is the first element.
    """
    chain = [obj]
    current = obj
    seen = {obj.surrogate}
    while True:
        links = current.inheritance_links
        if not links:
            break
        current = links[0].transmitter
        if current.surrogate in seen:  # defensive; bind() forbids cycles
            break
        seen.add(current.surrogate)
        chain.append(current)
    return chain


def abstraction_tree(root: DBObject) -> Dict[str, Any]:
    """The abstraction hierarchy below ``root`` as a nested dictionary.

    ``{"object": root, "inheritors": [ ...same shape... ]}`` — the §4.2
    classification of design objects and their versions "as subtle as
    desired".
    """
    return {
        "object": root,
        "inheritors": [
            abstraction_tree(link.inheritor) for link in root.inheritor_links
        ],
    }


def rebind(
    inheritor: DBObject,
    new_transmitter: DBObject,
    rel_type: Optional[InheritanceRelationshipType] = None,
) -> InheritanceLink:
    """Re-bind an inheritor to a different transmitter.

    The existing link of the relationship type is severed first; attribute
    values carried by the old link are **not** transferred (they describe
    the old relationship).
    """
    if rel_type is None:
        links = inheritor.inheritance_links
        if len(links) != 1:
            raise InheritanceError(
                f"{inheritor!r} has {len(links)} inheritance links; "
                f"pass rel_type explicitly"
            )
        rel_type = links[0].rel_type
    existing = inheritor.link_for(rel_type)
    if existing is not None:
        existing.unbind()
    return bind(inheritor, new_transmitter, rel_type)


def refine(
    component_subobject: DBObject,
    rel_type: Optional[InheritanceRelationshipType] = None,
) -> Tuple[DBObject, Optional[DBObject]]:
    """Walk a component one level *down* the abstraction hierarchy (§4.2).

    If the component subobject is currently bound to an abstract interface
    that has exactly one inheritor (one refinement), rebind to it and
    return ``(old, new)``.  With no or ambiguous refinements, nothing
    changes and ``(current, None)`` is returned — the caller must choose
    (that is the version-selection problem of §6, see
    :mod:`repro.versions.selection`).
    """
    links = [
        link
        for link in component_subobject.inheritance_links
        if rel_type is None or link.rel_type is rel_type
    ]
    if len(links) != 1:
        raise InheritanceError(
            f"{component_subobject!r} needs exactly one matching link to refine"
        )
    current = links[0].transmitter
    refinements = [link.inheritor for link in current.inheritor_links
                   if link.inheritor is not component_subobject]
    candidates = [r for r in refinements if r.parent is None]
    if len(candidates) != 1:
        return current, None
    rebind(component_subobject, candidates[0], links[0].rel_type)
    return current, candidates[0]
