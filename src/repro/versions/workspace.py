"""Design workspaces: checkout / checkin over version graphs.

§6 frames version management as support for *the process of design* —
designers take a version, work on a private copy, and contribute the
result back as a new version.  A :class:`Workspace` is that private area:

* :meth:`Workspace.checkout` — clone a graph member into the workspace
  (the original stays shared and, if released, immutable);
* :meth:`Workspace.checkin` — register the working copy as a new version
  derived from its checkout origin.  If the origin gained *other*
  derivatives in the meantime, the checkin is flagged as a parallel
  alternative (that is not an error — §6 explicitly supports "the parallel
  development of alternatives" — but the designer should know);
* :meth:`Workspace.abandon` — discard a working copy.

Workspaces are per-user bookkeeping; several may exist per database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..composition.baselines import clone_object
from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from ..errors import VersionError
from .diff import DiffEntry, diff_versions
from .graph import VersionGraph
from .states import VersionState

__all__ = ["CheckoutRecord", "CheckinResult", "Workspace"]


@dataclass
class CheckoutRecord:
    """Bookkeeping for one checked-out working copy."""

    copy: DBObject
    origin: DBObject
    graph: VersionGraph
    #: Derivatives the origin had at checkout time — used to detect
    #: parallel work at checkin.
    origin_derivatives_at_checkout: int


@dataclass
class CheckinResult:
    """Outcome of a checkin."""

    version: DBObject
    changes: List[DiffEntry]
    #: True when someone else derived from the origin while this copy was
    #: out — the new version is a parallel alternative.
    parallel: bool


class Workspace:
    """A designer's private working area over one database."""

    def __init__(self, database, user: str = ""):
        self.database = database
        self.user = user
        self._checkouts: Dict[Surrogate, CheckoutRecord] = {}

    # -- checkout -----------------------------------------------------------------

    def checkout(self, graph: VersionGraph, version: DBObject) -> DBObject:
        """Take a private working copy of a graph member."""
        if version not in graph:
            raise VersionError(f"{version!r} is not a member of the graph")
        copy = clone_object(version, database=self.database)
        self._checkouts[copy.surrogate] = CheckoutRecord(
            copy=copy,
            origin=version,
            graph=graph,
            origin_derivatives_at_checkout=len(graph.derivatives_of(version)),
        )
        return copy

    def record_for(self, copy: DBObject) -> CheckoutRecord:
        try:
            return self._checkouts[copy.surrogate]
        except KeyError:
            raise VersionError(
                f"{copy!r} is not checked out in this workspace"
            ) from None

    def checked_out(self) -> List[DBObject]:
        """The working copies currently out."""
        return [record.copy for record in self._checkouts.values()]

    def is_checked_out(self, copy: DBObject) -> bool:
        return copy.surrogate in self._checkouts

    # -- checkin -------------------------------------------------------------------

    def checkin(
        self, copy: DBObject, state: str = VersionState.IN_DESIGN
    ) -> CheckinResult:
        """Contribute a working copy back as a new version.

        The copy itself becomes the new graph member (derived from the
        checkout origin) and leaves the workspace.  An unchanged copy is
        rejected — there is nothing to version.
        """
        record = self.record_for(copy)
        changes = diff_versions(record.origin, copy)
        if not changes:
            raise VersionError(
                f"{copy!r} is unchanged since checkout; abandon it instead"
            )
        parallel = (
            len(record.graph.derivatives_of(record.origin))
            > record.origin_derivatives_at_checkout
        )
        record.graph.derive(record.origin, copy, state=state)
        del self._checkouts[copy.surrogate]
        return CheckinResult(version=copy, changes=changes, parallel=parallel)

    def abandon(self, copy: DBObject) -> None:
        """Discard a working copy (deletes it and its subobjects)."""
        record = self.record_for(copy)
        del self._checkouts[copy.surrogate]
        record.copy.delete()

    def abandon_all(self) -> int:
        """Discard every working copy; returns how many were dropped."""
        copies = self.checked_out()
        for copy in copies:
            self.abandon(copy)
        return len(copies)

    def __len__(self) -> int:
        return len(self._checkouts)

    def __repr__(self) -> str:
        return (
            f"<Workspace user={self.user!r} checkouts={len(self._checkouts)}>"
        )
