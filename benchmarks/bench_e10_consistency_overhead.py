"""E10 — ablation: the cost of consistency machinery on the update path.

§4.1 hangs adaptation tracking and triggers off transmitter updates; both
run synchronously on the event bus.  This experiment prices that design:
update throughput with (a) a bare database, (b) the adaptation tracker
attached, (c) tracker + a trigger, (d) event recording on — each across a
fan-out of inheritors.
"""

import pytest

from repro.consistency import AdaptationTracker, TriggerRegistry
from repro.workloads import gate_database, make_implementation, make_interface

FANOUTS = [1, 50]


def populated(db, n_impls):
    iface = make_interface(db)
    for _ in range(n_impls):
        make_implementation(db, iface)
    return iface


class TestUpdatePathOverhead:
    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_bare_update(self, benchmark, n_impls):
        db = gate_database("e10")
        iface = populated(db, n_impls)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", next(counter) % 500))

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_with_adaptation_tracker(self, benchmark, n_impls):
        db = gate_database("e10")
        tracker = AdaptationTracker(db)
        iface = populated(db, n_impls)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", next(counter) % 500))
        assert tracker.all_pending()  # the records really accrued

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_with_tracker_and_trigger(self, benchmark, n_impls):
        db = gate_database("e10")
        AdaptationTracker(db)
        registry = TriggerRegistry(db)
        fired = []
        registry.register(
            "watch",
            "attribute_updated",
            fired.append,
            condition=lambda e: e.attribute == "Length",
        )
        iface = populated(db, n_impls)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", next(counter) % 500))
        assert fired

    def test_update_with_event_recording(self, benchmark):
        db = gate_database("e10", record_events=True)
        iface = populated(db, 10)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", next(counter) % 500))
        assert db.events.history


class TestWorklistScan:
    @pytest.mark.parametrize("n_impls", [10, 100])
    def test_worklist_after_updates(self, benchmark, n_impls):
        db = gate_database("e10")
        tracker = AdaptationTracker(db)
        iface = populated(db, n_impls)
        for value in range(5):
            iface.set_attribute("Length", value + 1)
        worklist = benchmark(tracker.inheritors_needing_adaptation)
        assert len(worklist) == n_impls


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    fanout = 10 if suite.quick else 50

    @suite.case(f"bare_update[{fanout}]")
    def bare_case():
        db = gate_database("e10")
        iface = populated(db, fanout)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", next(counter) % 500)

    @suite.case(f"update_with_tracker[{fanout}]")
    def tracker_case():
        db = gate_database("e10")
        AdaptationTracker(db)
        iface = populated(db, fanout)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", next(counter) % 500)

    @suite.case(f"worklist_scan[{fanout}]")
    def worklist_case():
        db = gate_database("e10")
        tracker = AdaptationTracker(db)
        iface = populated(db, fanout)
        for value in range(5):
            iface.set_attribute("Length", value + 1)
        return tracker.inheritors_needing_adaptation
