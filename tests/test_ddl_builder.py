"""Tests for the DDL builder and the paper's full schemas (repro.ddl)."""

import pytest

from repro.core.domains import EnumDomain, SetOf
from repro.ddl import load_schema
from repro.ddl.paper import (
    load_gate_schema,
    load_steel_schema,
)
from repro.engine import Database
from repro.errors import (
    ConstraintViolation,
    DDLSyntaxError,
    UnknownTypeError,
)


class TestBuilderBasics:
    def test_domain_registration(self):
        catalog = load_schema("domain Material = (wood, metal);")
        assert catalog.domain("Material").validate("wood") == "wood"

    def test_inline_enum_attribute_domain(self):
        catalog = load_schema(
            "obj-type T = attributes: F: (AND, OR); end T;"
        )
        domain = catalog.object_type("T").attributes["F"].domain
        assert isinstance(domain, EnumDomain)
        assert domain.labels == ("AND", "OR")

    def test_set_of_record_attribute(self):
        catalog = load_schema(
            "domain I2 = (IN, OUT);"
            "obj-type T = attributes: Pins: set-of (PinId: integer; InOut: I2;); end T;"
        )
        domain = catalog.object_type("T").attributes["Pins"].domain
        assert isinstance(domain, SetOf)
        value = domain.validate([{"PinId": 1, "InOut": "IN"}])
        assert len(value) == 1

    def test_unknown_type_reference(self):
        with pytest.raises(UnknownTypeError):
            load_schema("obj-type T = types-of-subclasses: X: Nowhere; end T;")

    def test_case_insensitive_type_resolution_with_note(self):
        catalog = load_schema(
            "obj-type PinType = attributes: N: integer; end PinType;"
            "rel-type WireType = relates: Pin1, Pin2: object-of-type PinType; end WireType;"
            "obj-type G = types-of-subrels: W: Wiretype; end G;"
        )
        assert catalog.object_type("G").subrel_specs["W"].rel_type.name == "WireType"
        assert any("case-insensitive" in note for note in catalog.ddl_notes)

    def test_subclass_referencing_rel_type_rejected(self):
        with pytest.raises(DDLSyntaxError):
            load_schema(
                "obj-type P = end P;"
                "rel-type R = relates: A, B: object-of-type P; end R;"
                "obj-type T = types-of-subclasses: X: R; end T;"
            )

    def test_inheritor_in_unknown_rel_rejected(self):
        with pytest.raises(UnknownTypeError):
            load_schema("obj-type T = inheritor-in: Nothing; end T;")

    def test_inheritor_in_non_inheritance_type_rejected(self):
        with pytest.raises(DDLSyntaxError):
            load_schema(
                "obj-type P = end P;"
                "rel-type R = relates: A, B: object-of-type P; end R;"
                "obj-type T = inheritor-in: R; end T;"
            )


class TestGateSchema:
    @pytest.fixture(scope="class")
    def catalog(self):
        return load_gate_schema()

    def test_all_types_registered(self, catalog):
        for name in (
            "SimpleGate",
            "PinType",
            "WireType",
            "ElementaryGate",
            "Gate",
            "GateInterface_I",
            "AllOf_GateInterface_I",
            "GateInterface",
            "AllOf_GateInterface",
            "GateImplementation",
            "SomeOf_Gate",
        ):
            assert catalog.has_type(name), name

    def test_simple_gate_pins_are_attribute(self, catalog):
        simple = catalog.object_type("SimpleGate")
        assert "Pins" in simple.attributes
        assert isinstance(simple.attributes["Pins"].domain, SetOf)

    def test_elementary_gate_pins_are_subclass(self, catalog):
        elementary = catalog.object_type("ElementaryGate")
        assert "Pins" in elementary.subclass_specs
        assert elementary.subclass_specs["Pins"].element_type.name == "PinType"

    def test_interface_hierarchy_declared(self, catalog):
        iface = catalog.object_type("GateInterface")
        top_rel = catalog.inheritance_type("AllOf_GateInterface_I")
        assert top_rel in iface.inheritor_in
        # GateInterface passes the inherited Pins on (§4.2).
        assert catalog.inheritance_type("AllOf_GateInterface").is_permeable("Pins")

    def test_implementation_subtype_of_interface(self, catalog):
        impl = catalog.object_type("GateImplementation")
        assert impl.conforms_to(catalog.object_type("GateInterface"))
        assert impl.conforms_to(catalog.object_type("GateInterface_I"))

    def test_anonymous_subgates_type(self, catalog):
        impl = catalog.object_type("GateImplementation")
        subgates = impl.subclass_specs["SubGates"].element_type
        assert subgates.name == "GateImplementation.SubGates"
        assert "GateLocation" in subgates.attributes
        assert subgates.conforms_to(catalog.object_type("GateInterface"))

    def test_someof_gate_permeability(self, catalog):
        someof = catalog.inheritance_type("SomeOf_Gate")
        assert someof.is_permeable("TimeBehavior")
        assert not someof.is_permeable("Function")

    def test_paper_quirks_recorded(self, catalog):
        notes = "\n".join(catalog.ddl_notes)
        assert "connections" in notes
        assert "case-insensitive" in notes  # Wiretype -> WireType


class TestGateSchemaInstances:
    """Figures 2 and 4, driven entirely from the parsed DDL."""

    @pytest.fixture
    def db(self):
        db = Database("gates-ddl")
        load_gate_schema(db.catalog)
        return db

    def test_interface_implementation_value_flow(self, db):
        iface = db.create_object("GateInterface", Length=40, Width=20)
        iface.subclass("Pins").create(InOut="IN", PinLocation=(0, 0))
        iface.subclass("Pins").create(InOut="IN", PinLocation=(0, 1))
        iface.subclass("Pins").create(InOut="OUT", PinLocation=(9, 0))
        impl = db.create_object("GateImplementation", transmitter=iface)
        assert impl["Length"] == 40
        assert len(impl["Pins"]) == 3
        iface.set_attribute("Length", 41)
        assert impl["Length"] == 41

    def test_composite_gate_via_interface_components(self, db):
        # Figure 4: the component subobject inherits from GateInterface and
        # adds GateLocation; wiring constraints bind pins.
        nand_if = db.create_object("GateInterface", Length=10, Width=5)
        a = nand_if.subclass("Pins").create(InOut="IN")
        b = nand_if.subclass("Pins").create(InOut="IN")
        out = nand_if.subclass("Pins").create(InOut="OUT")

        ff_if = db.create_object("GateInterface", Length=40, Width=20)
        ff_in = ff_if.subclass("Pins").create(InOut="IN")
        impl = db.create_object("GateImplementation", transmitter=ff_if)

        component = impl.subclass("SubGates").create(
            transmitter=nand_if, GateLocation=(3, 4)
        )
        assert component["Length"] == 10  # inherited from the component
        assert component["GateLocation"].X == 3  # own placement data

        wire = impl.subrel("Wire").create({"Pin1": ff_in, "Pin2": a})
        assert wire.participant("Pin2") is a

    def test_wiring_constraint_rejects_alien_pins(self, db):
        ff_if = db.create_object("GateInterface", Length=1, Width=1)
        ff_in = ff_if.subclass("Pins").create(InOut="IN")
        impl = db.create_object("GateImplementation", transmitter=ff_if)
        alien = db.create_object("PinType", InOut="OUT")
        with pytest.raises(ConstraintViolation):
            impl.subrel("Wire").create({"Pin1": ff_in, "Pin2": alien})


class TestSteelSchema:
    @pytest.fixture(scope="class")
    def catalog(self):
        return load_steel_schema()

    def test_all_types_registered(self, catalog):
        for name in (
            "BoltType",
            "NutType",
            "BoreType",
            "GirderInterface",
            "PlateInterface",
            "Plate",
            "Girder",
            "AllOf_GirderIf",
            "AllOf_PlateIf",
            "AllOf_BoltType",
            "AllOf_NutType",
            "ScrewingType",
            "WeightCarrying_Structure",
        ):
            assert catalog.has_type(name), name

    def test_forward_inheritor_reference_resolved(self, catalog):
        rel = catalog.inheritance_type("AllOf_GirderIf")
        assert rel.inheritor_type is catalog.object_type("Girder")
        assert rel in catalog.object_type("Girder").inheritor_in

    def test_area_domain(self, catalog):
        area = catalog.domain("AreaDom")
        value = area.validate({"Length": 3, "Width": 4})
        assert value.Width == 4

    def test_screwing_subclasses_are_inheritors(self, catalog):
        screwing = catalog.relationship_type("ScrewingType")
        bolt_type = screwing.subclass_specs["Bolt"].element_type
        assert bolt_type.conforms_to(catalog.object_type("BoltType"))

    def test_typo_notes_recorded(self, catalog):
        notes = "\n".join(catalog.ddl_notes)
        assert "inher-rel-typ" in notes
        assert "mismatch" in notes  # end AllOf_BoltType closes AllOf_NutType


class TestSteelInstances:
    """§5 at the instance level, from the parsed DDL."""

    @pytest.fixture
    def db(self):
        db = Database("steel")
        load_steel_schema(db.catalog)
        return db

    def make_structure(self, db, bolt_len=30, nut_len=10, bores=(12, 8)):
        girder_if = db.create_object("GirderInterface", Length=100, Height=10, Width=10)
        g_bore = girder_if.subclass("Bores").create(Diameter=10, Length=bores[0])
        plate_if = db.create_object("PlateInterface", Thickness=8, Area=(50, 20))
        p_bore = plate_if.subclass("Bores").create(Diameter=10, Length=bores[1])

        structure = db.create_object(
            "WeightCarrying_Structure", Designer="Pegels", Description="bridge"
        )
        structure.subclass("Girders").create(transmitter=girder_if)
        structure.subclass("Plates").create(transmitter=plate_if)

        bolt = db.create_object("BoltType", Length=bolt_len, Diameter=8)
        nut = db.create_object("NutType", Length=nut_len, Diameter=8)
        screwing = structure.subrel("Screwings").create(
            {"Bores": [g_bore, p_bore]}, Strength=5
        )
        screwing.subclass("Bolt").create(transmitter=bolt)
        screwing.subclass("Nut").create(transmitter=nut)
        return structure, screwing

    def test_structure_assembles(self, db):
        structure, screwing = self.make_structure(db)
        assert len(structure["Girders"]) == 1
        assert structure["Girders"][0]["Length"] == 100  # inherited
        screwing.check_constraints()

    def test_bolt_length_constraint_violated(self, db):
        # 25 != 10 + (12 + 8): the bolt is too short for the bore stack.
        structure, screwing = self.make_structure(db, bolt_len=25)
        with pytest.raises(ConstraintViolation):
            screwing.check_constraints()

    def test_diameter_mismatch_violated(self, db):
        structure, screwing = self.make_structure(db)
        nut_component = screwing.subclass("Nut").members()[0]
        nut = nut_component.transmitter_of(
            db.catalog.inheritance_type("AllOf_NutType")
        )
        nut.set_attribute("Diameter", 9)
        with pytest.raises(ConstraintViolation):
            screwing.check_constraints()

    def test_screwing_where_clause_rejects_foreign_bores(self, db):
        structure, _ = self.make_structure(db)
        stray = db.create_object("BoreType", Diameter=10, Length=5)
        bolt = db.create_object("BoltType", Length=15, Diameter=8)
        nut = db.create_object("NutType", Length=10, Diameter=8)
        with pytest.raises(ConstraintViolation):
            structure.subrel("Screwings").create({"Bores": [stray]}, Strength=1)

    def test_girder_interface_constraint(self, db):
        girder_if = db.create_object("GirderInterface", Length=99, Height=1, Width=1)
        girder_if.check_constraints()
        girder_if.set_attribute("Length", 200)
        with pytest.raises(ConstraintViolation):
            girder_if.check_constraints()

    def test_both_schemas_share_a_catalog(self):
        db = Database("both")
        load_steel_schema(db.catalog)
        from repro.ddl.paper import load_gate_schema

        load_gate_schema(db.catalog)
        assert db.catalog.has_type("Gate") and db.catalog.has_type("Girder")
