"""Object types and the shared type machinery.

§3: an object type describes attributes (typed by domains), local integrity
constraints and — for complex objects — *types-of-subclasses* (local object
subclasses) and *types-of-subrels* (local relationship subclasses).

§4.1 adds the ``inheritor-in:`` clause: declaring an object type an
inheritor in an inheritance relationship makes it a *subtype* of the
transmitter type — the type level of value inheritance.  The *effective*
members of a type are therefore its own members plus the permeable members
of the transmitter types of every inheritance relationship it is an
inheritor in, transitively.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..errors import SchemaError
from ..expr import parse_expression
from ..expr.ast import Node
from . import resolution
from .attributes import RESERVED_MEMBER_NAMES, AttributeSpec
from .constraints import Constraint, as_constraints
from .domains import Domain

__all__ = ["SubclassSpec", "SubrelSpec", "TypeBase", "ObjectType"]


class SubclassSpec:
    """Declaration of a local object subclass of a complex type.

    ``Pins: PinType`` in the paper — subobjects of the declared element
    type, owned by (and deleted with) the enclosing complex object.
    """

    __slots__ = ("name", "element_type")

    def __init__(self, name: str, element_type: "ObjectType") -> None:
        if not name.isidentifier():
            raise SchemaError(f"subclass name {name!r} is not a valid identifier")
        if name in RESERVED_MEMBER_NAMES:
            raise SchemaError(f"subclass name {name!r} is reserved")
        self.name = name
        self.element_type = element_type

    def __repr__(self) -> str:
        return f"SubclassSpec({self.name!r}: {self.element_type.name})"


class SubrelSpec:
    """Declaration of a local relationship subclass of a complex type.

    ``Wires: WireType where (Wire.Pin1 in Pins or …)`` — relationship
    objects of the declared relationship type, restricted by an optional
    ``where`` clause evaluated against the enclosing complex object with the
    candidate relationship bound under the subclass name (and friendly
    aliases, see :meth:`binding_names`).
    """

    __slots__ = ("name", "rel_type", "where", "where_source")

    def __init__(self, name: str, rel_type, where: Union[None, str, Node] = None):
        if not name.isidentifier():
            raise SchemaError(f"subrel name {name!r} is not a valid identifier")
        if name in RESERVED_MEMBER_NAMES:
            raise SchemaError(f"subrel name {name!r} is reserved")
        self.name = name
        self.rel_type = rel_type
        if isinstance(where, str):
            self.where_source = where
            self.where: Optional[Node] = parse_expression(where)
        elif where is not None:
            self.where = where
            self.where_source = where.unparse()
        else:
            self.where = None
            self.where_source = ""

    def binding_names(self) -> Tuple[str, ...]:
        """Names the candidate relationship is bound under in the where clause.

        The paper declares the subclass ``Wires`` but writes ``Wire.Pin1``
        in its restriction, so alongside the subclass name we bind the
        singular form (trailing ``s`` stripped), the relationship type name
        and the type name with a ``Type`` suffix stripped.
        """
        names = [self.name]
        if self.name.endswith("s") and len(self.name) > 1:
            names.append(self.name[:-1])
        type_name = self.rel_type.name
        names.append(type_name)
        if type_name.lower().endswith("type") and len(type_name) > 4:
            names.append(type_name[:-4])
        seen: Set[str] = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return tuple(unique)

    def __repr__(self) -> str:
        suffix = f" where {self.where_source}" if self.where_source else ""
        return f"SubrelSpec({self.name!r}: {self.rel_type.name}{suffix})"


def _normalise_attributes(
    attributes: Optional[Mapping[str, Union[Domain, AttributeSpec]]],
) -> Dict[str, AttributeSpec]:
    specs: Dict[str, AttributeSpec] = {}
    for name, value in (attributes or {}).items():
        if isinstance(value, AttributeSpec):
            if value.name != name:
                raise SchemaError(
                    f"attribute spec name {value.name!r} does not match key {name!r}"
                )
            specs[name] = value
        elif isinstance(value, Domain):
            specs[name] = AttributeSpec(name, value)
        else:
            raise SchemaError(
                f"attribute {name!r} must map to a Domain or AttributeSpec, got {value!r}"
            )
    return specs


def _normalise_subclasses(
    subclasses: Optional[Mapping[str, Union["ObjectType", SubclassSpec]]],
) -> Dict[str, SubclassSpec]:
    specs: Dict[str, SubclassSpec] = {}
    for name, value in (subclasses or {}).items():
        if isinstance(value, SubclassSpec):
            if value.name != name:
                raise SchemaError(
                    f"subclass spec name {value.name!r} does not match key {name!r}"
                )
            specs[name] = value
        elif isinstance(value, ObjectType):
            specs[name] = SubclassSpec(name, value)
        else:
            raise SchemaError(
                f"subclass {name!r} must map to an ObjectType or SubclassSpec"
            )
    return specs


def _normalise_subrels(subrels) -> Dict[str, SubrelSpec]:
    specs: Dict[str, SubrelSpec] = {}
    for name, value in (subrels or {}).items():
        if isinstance(value, SubrelSpec):
            if value.name != name:
                raise SchemaError(
                    f"subrel spec name {value.name!r} does not match key {name!r}"
                )
            specs[name] = value
        elif isinstance(value, tuple) and len(value) == 2:
            specs[name] = SubrelSpec(name, value[0], value[1])
        else:
            specs[name] = SubrelSpec(name, value)
    return specs


class TypeBase:
    """Shared machinery of object types and relationship types.

    Both kinds of type carry attributes, local subclasses, local
    relationship subclasses, integrity constraints and ``inheritor-in``
    declarations (§4.1: "an inheritance relationship may have attributes,
    subclasses and constraints" — and relationship subclasses such as
    ScrewingType's ``Bolt`` are themselves inheritors).
    """

    def __init__(
        self,
        name: str,
        attributes: Optional[Mapping[str, Union[Domain, AttributeSpec]]] = None,
        subclasses: Optional[Mapping[str, Union["ObjectType", SubclassSpec]]] = None,
        subrels=None,
        constraints: Optional[Iterable] = None,
        doc: str = "",
    ):
        if not name or not all(part.isidentifier() for part in name.split(".")):
            raise SchemaError(f"type name {name!r} is not a valid identifier path")
        self.name = name
        self.doc = doc
        self.attributes: Dict[str, AttributeSpec] = _normalise_attributes(attributes)
        self.subclass_specs: Dict[str, SubclassSpec] = _normalise_subclasses(subclasses)
        self.subrel_specs: Dict[str, SubrelSpec] = _normalise_subrels(subrels)
        self.constraints: List[Constraint] = as_constraints(constraints)
        #: Inheritance-relationship types this type is an inheritor in,
        #: in declaration order (resolution order for diamond situations).
        self.inheritor_in: List[Any] = []
        #: Inheritance-relationship types whose *transmitter* is this type
        #: (registered by InheritanceRelationshipType; used by impact
        #: analysis and schema documentation).
        self._transmitting_rel_types: List[Any] = []
        #: Lazily compiled member-resolution plan (see repro.core.resolution);
        #: valid only while its schema epoch matches the global one.
        self._plan: Any = None
        #: Lazily built slotted column store for instances of this type
        #: (see repro.core.slots); its layout follows the plan and is
        #: refreshed in place on schema-epoch bumps.
        self._store: Any = None
        self._check_local_name_clashes()
        resolution.bump_schema_epoch()

    # -- schema construction -------------------------------------------------

    def _check_local_name_clashes(self) -> None:
        names = list(self.attributes) + list(self.subclass_specs) + list(self.subrel_specs)
        seen: Set[str] = set()
        for name in names:
            if name in seen:
                raise SchemaError(
                    f"type {self.name!r} declares member {name!r} more than once"
                )
            seen.add(name)

    def declare_inheritor_in(self, inheritance_rel_type) -> None:
        """Register an ``inheritor-in:`` clause (type-level inheritance).

        Validates that the inherited member names do not collide with the
        type's own members and that no inheritance cycle arises.
        """
        if inheritance_rel_type in self.inheritor_in:
            return
        transmitter_type = inheritance_rel_type.transmitter_type
        if self._reaches(transmitter_type):
            raise SchemaError(
                f"inheritor-in {inheritance_rel_type.name!r} would create an "
                f"inheritance cycle at type {self.name!r}"
            )
        own = set(self.attributes) | set(self.subclass_specs) | set(self.subrel_specs)
        for member in inheritance_rel_type.inheriting:
            if member in own:
                raise SchemaError(
                    f"type {self.name!r} declares {member!r} locally but would "
                    f"also inherit it through {inheritance_rel_type.name!r}"
                )
        self.inheritor_in.append(inheritance_rel_type)
        inheritance_rel_type._register_inheritor_type(self)
        # A new inheritor-in clause changes visible members here and on every
        # type that inherits through this one: invalidate all plans at once.
        resolution.bump_schema_epoch()

    def _reaches(self, other: "TypeBase") -> bool:
        """True when ``self`` appears in ``other``'s transmitter ancestry."""
        if other is self:
            return True
        visited: Set[int] = set()
        stack = [other]
        while stack:
            current = stack.pop()
            if current is self:
                return True
            if id(current) in visited:
                continue
            visited.add(id(current))
            stack.extend(rel.transmitter_type for rel in current.inheritor_in)
        return False

    # -- effective (type-level inherited) members -----------------------------

    def effective_attribute(self, name: str) -> Optional[AttributeSpec]:
        """The attribute spec for ``name``, own or inherited, else None."""
        spec = self.attributes.get(name)
        if spec is not None:
            return spec
        for rel in self.inheritor_in:
            if name in rel.inheriting:
                found = rel.transmitter_type.effective_attribute(name)
                if found is not None:
                    return found
        return None

    def effective_subclass(self, name: str) -> Optional[SubclassSpec]:
        """The subclass spec for ``name``, own or inherited, else None."""
        spec = self.subclass_specs.get(name)
        if spec is not None:
            return spec
        for rel in self.inheritor_in:
            if name in rel.inheriting:
                found = rel.transmitter_type.effective_subclass(name)
                if found is not None:
                    return found
        return None

    def effective_subrel(self, name: str) -> Optional[SubrelSpec]:
        spec = self.subrel_specs.get(name)
        if spec is not None:
            return spec
        for rel in self.inheritor_in:
            if name in rel.inheriting:
                found = rel.transmitter_type.effective_subrel(name)
                if found is not None:
                    return found
        return None

    def effective_attributes(self) -> Dict[str, AttributeSpec]:
        """All attribute specs visible on instances, inherited ones first."""
        merged: Dict[str, AttributeSpec] = {}
        for rel in self.inheritor_in:
            for name, spec in rel.transmitter_type.effective_attributes().items():
                if name in rel.inheriting:
                    merged[name] = spec
        merged.update(self.attributes)
        return merged

    def effective_subclasses(self) -> Dict[str, SubclassSpec]:
        merged: Dict[str, SubclassSpec] = {}
        for rel in self.inheritor_in:
            for name, spec in rel.transmitter_type.effective_subclasses().items():
                if name in rel.inheriting:
                    merged[name] = spec
        merged.update(self.subclass_specs)
        return merged

    def effective_subrels(self) -> Dict[str, SubrelSpec]:
        merged: Dict[str, SubrelSpec] = {}
        for rel in self.inheritor_in:
            for name, spec in rel.transmitter_type.effective_subrels().items():
                if name in rel.inheriting:
                    merged[name] = spec
        merged.update(self.subrel_specs)
        return merged

    def inherited_member_names(self) -> Set[str]:
        """Member names that reach this type only through inheritance."""
        own = set(self.attributes) | set(self.subclass_specs) | set(self.subrel_specs)
        names: Set[str] = set()
        for rel in self.inheritor_in:
            for member in rel.inheriting:
                if member not in own:
                    names.add(member)
        return names

    def member_kind(self, name: str) -> Optional[str]:
        """'attribute', 'subclass' or 'subrel' for effective member ``name``."""
        if self.effective_attribute(name) is not None:
            return "attribute"
        if self.effective_subclass(name) is not None:
            return "subclass"
        if self.effective_subrel(name) is not None:
            return "subrel"
        return None

    # -- conformance -----------------------------------------------------------

    def conforms_to(self, other: Optional["TypeBase"]) -> bool:
        """Substitutability: ``self`` is ``other`` or a transitive subtype.

        ``other is None`` represents the untyped ``object`` participant and
        accepts everything.
        """
        if other is None or other is self:
            return True
        visited: Set[int] = set()
        stack: List[TypeBase] = [self]
        while stack:
            current = stack.pop()
            if current is other:
                return True
            if id(current) in visited:
                continue
            visited.add(id(current))
            stack.extend(rel.transmitter_type for rel in current.inheritor_in)
        return False

    def is_complex(self) -> bool:
        """True when instances own subobjects or local relationships."""
        return bool(self.effective_subclasses() or self.effective_subrels())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class ObjectType(TypeBase):
    """An object type (§3), possibly complex and possibly an inheritor.

    Parameters
    ----------
    name:
        Type name, unique within a catalog.
    attributes:
        Mapping of attribute name to domain (or full
        :class:`~repro.core.attributes.AttributeSpec`).
    subclasses:
        ``types-of-subclasses`` — mapping of subclass name to element
        object type.
    subrels:
        ``types-of-subrels`` — mapping of subrel name to relationship type,
        or to a ``(relationship_type, where_source)`` pair.
    constraints:
        Constraint sources (strings in the paper's language), callables or
        :class:`~repro.core.constraints.Constraint` objects.
    allow_dynamic:
        When true, instances accept attribute names outside the declared
        set with the untyped domain.  Off by default (the paper's model is
        schema-first); the workload generators use it for ad-hoc data.
    """

    def __init__(
        self,
        name: str,
        attributes=None,
        subclasses=None,
        subrels=None,
        constraints=None,
        doc: str = "",
        allow_dynamic: bool = False,
    ):
        super().__init__(
            name,
            attributes=attributes,
            subclasses=subclasses,
            subrels=subrels,
            constraints=constraints,
            doc=doc,
        )
        self.allow_dynamic = allow_dynamic
