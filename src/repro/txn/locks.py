"""Lock manager with member-scoped locks.

§6 motivates two refinements over plain object locking:

* **lock inheritance** — "Accessing the data of a composite object which
  are inherited from a component requires to prevent the component also
  from being updated.  Thus, the parts of the component which are visible
  in the composite object have to be read-locked …";
* **partial locks** — "only these parts of the standard cells are locked
  in read-mode", so heavily shared standard objects stay usable.

Both need locks scoped to a *subset of members*, not whole objects.  A lock
here is ``(surrogate, mode, scope)`` where ``scope`` is a frozenset of
member names or ``None`` for the whole object.  Two locks conflict when
their modes conflict **and** their scopes overlap (``None`` overlaps
everything).

The manager is non-blocking: a conflicting request raises
:class:`~repro.errors.LockConflictError` immediately, leaving retry/abort
policy to the design session — the interactive setting the paper assumes,
where blocking a designer for hours is worse than telling them who holds
the lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.surrogate import Surrogate
from ..errors import LockConflictError

__all__ = ["LockMode", "LockEntry", "LockTable", "scopes_overlap"]


class LockMode:
    """Lock modes: shared (read) and exclusive (write)."""

    S = "S"
    X = "X"

    @staticmethod
    def compatible(a: str, b: str) -> bool:
        return a == LockMode.S and b == LockMode.S

    @staticmethod
    def stronger(a: str, b: str) -> str:
        return LockMode.X if LockMode.X in (a, b) else LockMode.S


Scope = Optional[FrozenSet[str]]


def scopes_overlap(a: Scope, b: Scope) -> bool:
    """Whole-object scope (None) overlaps everything; sets must intersect."""
    if a is None or b is None:
        return True
    return bool(a & b)


@dataclass
class LockEntry:
    """One granted lock of one transaction on one object."""

    txn_id: int
    mode: str
    scope: Scope

    def conflicts_with(self, mode: str, scope: Scope) -> bool:
        return not LockMode.compatible(self.mode, mode) and scopes_overlap(
            self.scope, scope
        )


class LockTable:
    """All granted locks, indexed by object surrogate.

    ``obs`` optionally attaches a :class:`repro.obs.Observability` bundle;
    when present, grants, conflicts and scope sizes are recorded in its
    metrics registry (``locks.*``).
    """

    def __init__(self, obs=None) -> None:
        self._locks: Dict[Surrogate, List[LockEntry]] = {}
        self._by_txn: Dict[int, List[Tuple[Surrogate, LockEntry]]] = {}
        #: Cooperative groups: transactions in the same group never
        #: conflict with each other (design teams sharing a checkout,
        #: the "advanced transaction mechanisms" of §6's references).
        self._groups: Dict[int, int] = {}
        self.obs = obs

    def set_group(self, txn_id: int, group_id: Optional[int]) -> None:
        """Place a transaction in a cooperative group (None removes it)."""
        if group_id is None:
            self._groups.pop(txn_id, None)
        else:
            self._groups[txn_id] = group_id

    def _same_owner(self, a: int, b: int) -> bool:
        if a == b:
            return True
        group_a = self._groups.get(a)
        return group_a is not None and group_a == self._groups.get(b)

    def acquire(
        self,
        txn_id: int,
        surrogate: Surrogate,
        mode: str,
        scope: Scope = None,
    ) -> LockEntry:
        """Grant a lock or raise :class:`LockConflictError`.

        A transaction's own locks never conflict; re-requests merge into
        the existing entry (scope union, stronger mode), which also
        implements the S→X upgrade when no other holder blocks it.  The
        conflict check runs against the would-be **merged** entry — an
        upgrade that strengthens the mode must re-justify the transaction's
        *entire* scope, otherwise a reader of a disjoint member could be
        silently overrun (conservative, and safe).
        """
        entries = self._locks.setdefault(surrogate, [])
        own = next((e for e in entries if e.txn_id == txn_id), None)
        if own is not None:
            requested_mode = LockMode.stronger(own.mode, mode)
            if own.scope is None or scope is None:
                requested_scope: Scope = None
            else:
                requested_scope = frozenset(own.scope | scope)
        else:
            requested_mode = mode
            requested_scope = None if scope is None else frozenset(scope)
        for entry in entries:
            if not self._same_owner(entry.txn_id, txn_id) and entry.conflicts_with(
                requested_mode, requested_scope
            ):
                if self.obs is not None:
                    # The non-blocking manager's equivalent of a lock wait.
                    self.obs.metrics.counter("locks.conflicts").inc()
                    self.obs.metrics.counter(
                        f"locks.conflicts.{requested_mode}"
                    ).inc()
                raise LockConflictError(
                    f"lock {requested_mode} on {surrogate} (scope "
                    f"{sorted(requested_scope) if requested_scope else 'ALL'}) "
                    f"conflicts with {entry.mode} held by transaction "
                    f"{entry.txn_id}",
                    holder=entry.txn_id,
                    surrogate=surrogate,
                )
        if self.obs is not None:
            self.obs.metrics.counter("locks.acquired").inc()
            self.obs.metrics.counter(f"locks.acquired.{requested_mode}").inc()
            if requested_scope is None:
                self.obs.metrics.counter("locks.whole_object").inc()
            else:
                self.obs.metrics.histogram("locks.scope_size").observe(
                    len(requested_scope)
                )
        if own is not None:
            own.mode = requested_mode
            own.scope = requested_scope
            return own
        entry = LockEntry(txn_id, requested_mode, requested_scope)
        entries.append(entry)
        self._by_txn.setdefault(txn_id, []).append((surrogate, entry))
        return entry

    def release_all(self, txn_id: int) -> int:
        """Drop every lock of a transaction; returns how many were held."""
        held = self._by_txn.pop(txn_id, [])
        if self.obs is not None and held:
            self.obs.metrics.counter("locks.released").inc(len(held))
        for surrogate, entry in held:
            entries = self._locks.get(surrogate)
            if entries is not None:
                try:
                    entries.remove(entry)
                except ValueError:  # pragma: no cover - defensive
                    pass
                if not entries:
                    del self._locks[surrogate]
        return len(held)

    def holders(self, surrogate: Surrogate) -> List[LockEntry]:
        """Copy of the entries currently granted on one object."""
        return list(self._locks.get(surrogate, []))

    def held_by(self, txn_id: int) -> List[Tuple[Surrogate, LockEntry]]:
        return list(self._by_txn.get(txn_id, []))

    def lock_count(self) -> int:
        return sum(len(entries) for entries in self._locks.values())

    def is_locked(self, surrogate: Surrogate) -> bool:
        return bool(self._locks.get(surrogate))
