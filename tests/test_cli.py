"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.ddl.paper import GATE_SCHEMA
from repro.engine import save
from tests.conftest import build_gate_database


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "gates.ddl"
    path.write_text(GATE_SCHEMA)
    return str(path)


@pytest.fixture
def image_file(tmp_path):
    db = build_gate_database("persist")
    iface = db.create_object("GateInterface", class_name="Interfaces", Length=10, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    db.create_object("GateImplementation", transmitter=iface)
    path = tmp_path / "image.json"
    save(db, str(path))
    return str(path)


@pytest.fixture
def paper_image_file(tmp_path, schema_file):
    """An image whose schema is the paper's gate DDL itself."""
    from repro.ddl import load_schema
    from repro.engine import Database, save as save_db

    db = Database("cli")
    load_schema(GATE_SCHEMA, db.catalog)
    iface = db.create_object("GateInterface", Length=10, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    db.create_object("GateImplementation", transmitter=iface)
    path = tmp_path / "paper-image.json"
    save_db(db, str(path))
    return str(path)


class TestSchemaCommand:
    def test_pretty_print(self, schema_file, capsys):
        assert main(["schema", schema_file]) == 0
        out = capsys.readouterr().out
        assert "obj-type GateImplementation =" in out
        assert "inher-rel-type AllOf_GateInterface =" in out

    def test_notes_on_stderr(self, schema_file, capsys):
        main(["schema", schema_file])
        err = capsys.readouterr().err
        assert "note:" in err  # the paper's quirks are reported

    def test_missing_file(self, capsys):
        assert main(["schema", "/does/not/exist.ddl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.ddl"
        path.write_text("this is not ddl")
        assert main(["schema", str(path)]) == 1


class TestCheckCommand:
    def test_schema_only(self, schema_file, capsys):
        assert main(["check", schema_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_schema_with_image(self, schema_file, paper_image_file, capsys):
        assert main(["check", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "OK" in out

    def test_constraint_violation_detected(self, tmp_path, capsys):
        from repro.ddl import load_schema
        from repro.engine import Database, save as save_db

        schema_path = tmp_path / "g.ddl"
        schema_path.write_text(GATE_SCHEMA)
        db = Database("cli")
        load_schema(GATE_SCHEMA, db.catalog)
        bad = db.create_object("ElementaryGate", Function="AND")
        bad.subclass("Pins").create(InOut="IN")  # needs 2 IN + 1 OUT
        image_path = tmp_path / "bad.json"
        save_db(db, str(image_path))
        assert main(["check", str(schema_path), str(image_path)]) == 2
        assert "constraint:" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_output(self, schema_file, paper_image_file, capsys):
        assert main(["stats", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        # iface + pin + implementation + the inheritance link object.
        assert "objects: 4" in out
        assert "GateInterface: 1" in out
        assert "AllOf_GateInterface: 1" in out


class TestQueryCommand:
    def test_query_rows(self, schema_file, paper_image_file, capsys):
        assert main([
            "query", schema_file, paper_image_file,
            "select Length, Width from GateInterface where Length = 10",
        ]) == 0
        out = capsys.readouterr().out
        assert "Length | Width" in out
        assert "10 | 5" in out
        # Two rows: the implementation is a subtype of GateInterface and
        # inherits the same values — type queries include subtypes.
        assert "(2 row(s))" in out

    def test_query_error(self, schema_file, paper_image_file, capsys):
        assert main(["query", schema_file, paper_image_file, "selekt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDocsCommand:
    def test_docs_markdown(self, schema_file, capsys):
        assert main(["docs", schema_file, "--title", "Gates"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Gates")
        assert "## Inheritance relationships" in out


class TestPaperCommand:
    def test_gate_normalised(self, capsys):
        assert main(["paper", "gate"]) == 0
        assert "obj-type Gate =" in capsys.readouterr().out

    def test_steel_raw(self, capsys):
        assert main(["paper", "steel", "--raw"]) == 0
        assert "WeightCarrying_Structure" in capsys.readouterr().out

    def test_module_entry_point(self, schema_file):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "schema", schema_file],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "obj-type" in result.stdout


class TestAuditCommand:
    def test_table_output(self, schema_file, paper_image_file, capsys):
        assert main(["audit", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        assert "audit log" in out
        assert "attribute_updated" in out

    def test_json_is_stable_schema(self, schema_file, paper_image_file, capsys):
        assert main(["audit", schema_file, paper_image_file, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == "repro.audit/1"
        assert set(snap) == {"schema", "database", "appended", "records", "cones"}
        assert snap["records"]

    def test_filters(self, schema_file, paper_image_file, capsys):
        assert (
            main(
                [
                    "audit",
                    schema_file,
                    paper_image_file,
                    "--json",
                    "--kind",
                    "propagation.fanout",
                ]
            )
            == 0
        )
        snap = json.loads(capsys.readouterr().out)
        assert all(r["kind"] == "propagation.fanout" for r in snap["records"])
        trace = snap["records"][0]["trace"]
        assert (
            main(
                [
                    "audit",
                    schema_file,
                    paper_image_file,
                    "--json",
                    "--trace-id",
                    str(trace),
                ]
            )
            == 0
        )
        # seq/trace stamps are process-global, so the second run allocates
        # fresh ids: the filter applies (possibly to nothing).
        by_trace = json.loads(capsys.readouterr().out)
        assert all(r["trace"] == trace for r in by_trace["records"])

    def test_object_filter_and_no_exercise(
        self, schema_file, paper_image_file, capsys
    ):
        assert (
            main(
                [
                    "audit",
                    schema_file,
                    paper_image_file,
                    "--json",
                    "--no-exercise",
                    "--object",
                    "GateImplementation",
                ]
            )
            == 0
        )
        snap = json.loads(capsys.readouterr().out)
        assert all("GateImplementation" in r["subject"] for r in snap["records"])


class TestExplainValueCommand:
    def test_inherited_member(self, schema_file, paper_image_file, capsys):
        assert (
            main(
                [
                    "explain-value",
                    schema_file,
                    paper_image_file,
                    "GateImplementation[0]",
                    "Length",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "'Length' of <GateImplementation" in out
        assert "holder: <GateInterface" in out
        assert "AllOf_GateInterface: followed" in out

    def test_json_output(self, schema_file, paper_image_file, capsys):
        assert (
            main(
                [
                    "explain-value",
                    schema_file,
                    paper_image_file,
                    "GateInterface[0]",
                    "Length",
                    "--json",
                ]
            )
            == 0
        )
        shape = json.loads(capsys.readouterr().out)
        assert shape["value"] == 10
        assert shape["source"] == "local-attribute"
        assert shape["hops"] == 0

    def test_surrogate_selector(self, schema_file, paper_image_file, capsys):
        assert (
            main(
                [
                    "explain-value",
                    schema_file,
                    paper_image_file,
                    "@cli:1",
                    "Length",
                    "--json",
                ]
            )
            == 0
        )
        assert json.loads(capsys.readouterr().out)["attribute"] == "Length"

    def test_bad_selector_reports_error(
        self, schema_file, paper_image_file, capsys
    ):
        assert (
            main(
                [
                    "explain-value",
                    schema_file,
                    paper_image_file,
                    "NoSuchThing[0]",
                    "Length",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err
        assert (
            main(
                [
                    "explain-value",
                    schema_file,
                    paper_image_file,
                    "Pin",
                    "PinName",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "error:" in err


class TestTraceConeOutput:
    def test_print_trace_shows_cone_membership(self, capsys):
        from repro.cli import _print_trace
        from repro.ddl.paper import load_gate_schema
        from repro.engine import Database

        db = Database("cli", observe=True)
        load_gate_schema(db.catalog)
        iface = db.create_object("GateInterface", Length=10, Width=5)
        impl = db.create_object("GateImplementation", transmitter=iface)
        iface.set_attribute("Length", 42)
        _print_trace(db)
        err = capsys.readouterr().err
        assert "propagation cones:" in err
        assert "attribute_updated" in err
        assert f"reached {impl!r}" in err


class TestMetricsEventsFlag:
    def test_events_dump_shows_causal_stamps(
        self, schema_file, paper_image_file, capsys
    ):
        assert (
            main(["metrics", schema_file, paper_image_file, "--events"]) == 0
        )
        out = capsys.readouterr().out
        assert "event ring (" in out
        assert "trace=" in out


class TestFlightCommand:
    def test_text_output(self, schema_file, paper_image_file, capsys):
        assert main(
            ["flight", schema_file, paper_image_file, "--ticks", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "flight recorder: 3 sample(s) buffered" in out
        assert "rates (/s):" in out

    def test_json_is_stable_schema(self, schema_file, paper_image_file, capsys):
        assert main(
            ["flight", schema_file, paper_image_file, "--ticks", "2", "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.flight/1"
        assert len(doc["samples"]) == 3
        sample = doc["samples"][-1]
        assert sample["rates"]  # the workout produced nonzero deltas
        assert sample["elapsed"] > 0


class TestHealthCommand:
    def test_healthy_image_exits_zero(self, schema_file, paper_image_file, capsys):
        assert main(["health", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        assert "health: OK" in out
        assert "lock-timeouts" in out

    def test_json_is_stable_schema(self, schema_file, paper_image_file, capsys):
        assert main(
            ["health", schema_file, paper_image_file, "--json"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.health/1"
        assert doc["status"] == "ok"
        assert {rule["name"] for rule in doc["rules"]} >= {
            "slowlog-rate", "lock-wait-p95", "lock-timeouts",
        }


class TestTopCommand:
    def test_bounded_frames(self, schema_file, paper_image_file, capsys):
        assert main([
            "top", schema_file, paper_image_file,
            "--count", "2", "--interval", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top — db=cli") == 2
        assert "health=OK" in out


class TestMetricsWatch:
    def test_watch_renders_rate_frames(
        self, schema_file, paper_image_file, capsys
    ):
        assert main([
            "metrics", schema_file, paper_image_file,
            "--watch", "0.01", "--count", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("rates (/s):") == 2
        assert "sample #" in out


class TestSlowlogFilters:
    def test_kind_and_since(self, schema_file, paper_image_file, capsys):
        assert main([
            "slowlog", schema_file, paper_image_file,
            "--budget-ms", "0", "--json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["operations"], "zero budget must record the workout"
        op = doc["operations"][0]
        assert op["seq"] is not None
        kind, seq = op["kind"], op["seq"]

        assert main([
            "slowlog", schema_file, paper_image_file,
            "--budget-ms", "0", "--json",
            "--kind", kind, "--since", str(seq),
        ]) == 0
        filtered = json.loads(capsys.readouterr().out)
        assert filtered["operations"]
        assert all(o["kind"] == kind for o in filtered["operations"])
        assert all(o["seq"] >= seq for o in filtered["operations"])

    def test_filters_can_match_nothing(
        self, schema_file, paper_image_file, capsys
    ):
        assert main([
            "slowlog", schema_file, paper_image_file,
            "--budget-ms", "0", "--kind", "no-such-kind",
        ]) == 0
        assert "no operations match" in capsys.readouterr().out


class TestBenchBaselineHandling:
    @pytest.fixture
    def tiny_suite_dir(self, tmp_path):
        suite_dir = tmp_path / "suites"
        suite_dir.mkdir()
        (suite_dir / "bench_tiny.py").write_text(
            "def register(suite):\n"
            "    @suite.case('noop')\n"
            "    def noop():\n"
            "        def run():\n"
            "            return 0\n"
            "        return run\n"
        )
        return str(suite_dir)

    def test_missing_baseline_is_not_an_error(
        self, tiny_suite_dir, tmp_path, capsys
    ):
        root = tmp_path / "fresh"
        root.mkdir()
        assert main([
            "bench", "--quick", "--repeats", "1", "--no-emit", "--compare",
            "--dir", tiny_suite_dir, "--root", str(root),
        ]) == 0
        err = capsys.readouterr().err
        assert "no prior BENCH_*.json" in err

    def test_empty_baseline_is_not_an_error(
        self, tiny_suite_dir, tmp_path, capsys
    ):
        root = tmp_path / "seeded"
        root.mkdir()
        (root / "BENCH_0001.json").write_text("")
        assert main([
            "bench", "--quick", "--repeats", "1", "--no-emit", "--compare",
            "--dir", tiny_suite_dir, "--root", str(root),
        ]) == 0
        err = capsys.readouterr().err
        assert "unusable" in err
        assert "skipping the regression gate" in err

    def test_malformed_baseline_is_not_an_error(
        self, tiny_suite_dir, tmp_path, capsys
    ):
        root = tmp_path / "corrupt"
        root.mkdir()
        (root / "BENCH_0001.json").write_text('{"schema": "wrong/9"}')
        assert main([
            "bench", "--quick", "--repeats", "1", "--no-emit", "--compare",
            "--dir", tiny_suite_dir, "--root", str(root),
        ]) == 0
        err = capsys.readouterr().err
        assert "unusable" in err
