"""Transactions for design sessions.

Strict two-phase locking over the scoped :class:`~repro.txn.locks.LockTable`
with three §6-specific features:

* **lock inheritance** — reading an object read-locks the visible parts of
  its transmitters (see :mod:`repro.txn.lock_inheritance`), so a composite
  reader and a component writer conflict even though they touch different
  objects;
* **expansion locking** — :meth:`Transaction.lock_expansion` locks "not
  only single objects but whole parts of the component hierarchy";
* **access-control capping** — implicit expansion locks are capped to the
  mode the :class:`~repro.txn.access.AccessControlManager` admits, so
  protected standard parts (bolts, nuts, standard cells) are never
  write-locked by a sweep.

Transactions default to the non-blocking conflict policy (a conflicting
acquisition raises immediately).  ``begin(wait=True, lock_timeout=...)``
switches a transaction to the blocking policy ahead of the service tier:
its acquisitions park on the lock table until grantable (bounded by the
timeout), producing the wait histograms, waits-for edges and blocked/
timeout audit events of the contention observatory.  Every acquisition is
tagged with its *origin* (``read``/``write``/``inherited``/``expansion``)
so §6 lock-inheritance contention is separable in ``locks.*`` metrics.

Aborts undo attribute updates through an in-transaction undo log.  *Design
transactions* (``persistent=True``) model the long checkout/checkin
sessions of CAD work: their locks survive :meth:`~Transaction.commit` until
:meth:`~Transaction.checkin`.
"""

from __future__ import annotations

import itertools
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..core.objects import DBObject
from ..core.slots import UNSET as _UNSET
from ..errors import LockConflictError, TransactionError
from .access import AccessControlManager, Right
from .lock_inheritance import (
    expansion_lock_plan,
    inherited_lock_plan,
    note_inherited_conflict,
)
from .locks import LockMode, LockTable

__all__ = ["Transaction", "TransactionManager"]


class Transaction:
    """One transaction: lock set, undo log, status."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        user: Optional[str] = None,
        persistent: bool = False,
        wait: bool = False,
        lock_timeout: Optional[float] = None,
    ):
        self.manager = manager
        self.id = txn_id
        self.user = user
        self.persistent = persistent
        #: Blocking conflict policy: park on conflicting locks instead of
        #: raising, bounded by ``lock_timeout`` seconds (None = forever,
        #: or the table's default).
        self.wait = wait
        self.lock_timeout = lock_timeout
        self.status = self.ACTIVE
        self._undo: List[Tuple[DBObject, str, Any, bool]] = []
        self._checked_in = not persistent

    # -- status plumbing ---------------------------------------------------------

    def _ensure_active(self) -> None:
        if self.status != self.ACTIVE:
            raise TransactionError(f"transaction {self.id} is {self.status}")

    @property
    def lock_table(self) -> LockTable:
        return self.manager.lock_table

    def _audit_log(self):
        """The attached audit log, or None (one load + branch when off)."""
        obs = getattr(self.manager.database, "obs", None)
        return obs.audit if obs is not None else None

    def _slowlog(self):
        """The attached slow-op log, or None (one load + branch when off)."""
        obs = getattr(self.manager.database, "obs", None)
        return obs.slowlog if obs is not None else None

    # -- reading -----------------------------------------------------------------

    def read(self, obj: DBObject, members: Optional[set] = None) -> DBObject:
        """Read-lock ``obj`` (optionally only some members) with
        lock inheritance: the visible parts of its transmitters are
        read-locked too (§6)."""
        self._ensure_active()
        self._check_access(obj, Right.READ)
        scope = frozenset(members) if members is not None else None
        audit = self._audit_log()
        if audit is None:
            self._acquire_read_locks(obj, scope, None)
        else:
            # The locked read is a causal root: its lock-inheritance
            # acquisitions become children of one txn.read record.
            with audit.operation(
                "txn.read",
                obj,
                txn=self.id,
                scope=sorted(scope) if scope is not None else None,
            ):
                self._acquire_read_locks(obj, scope, audit)
        return obj

    def _acquire_read_locks(self, obj: DBObject, scope, audit) -> None:
        self.lock_table.acquire(
            self.id, obj.surrogate, LockMode.S, scope,
            wait=self.wait, timeout=self.lock_timeout, origin="read",
        )
        for transmitter, visible in inherited_lock_plan(obj, scope):
            self._check_access(transmitter, Right.READ)
            try:
                self.lock_table.acquire(
                    self.id, transmitter.surrogate, LockMode.S, visible,
                    wait=self.wait, timeout=self.lock_timeout,
                    origin="inherited",
                )
            except LockConflictError as exc:
                # §6 contention in the *reverse* direction of data
                # inheritance: a component writer blocked this composite
                # reader.  Attributed separately from direct conflicts.
                note_inherited_conflict(
                    getattr(self.manager.database, "obs", None),
                    obj, transmitter, exc, txn=self.id,
                )
                raise
            if audit is not None:
                audit.record(
                    "lock.inherited",
                    transmitter,
                    txn=self.id,
                    scope=sorted(visible) if visible is not None else None,
                )

    def get(self, obj: DBObject, member: str) -> Any:
        """Locked read of one member."""
        self.read(obj, {member})
        return obj.get_member(member)

    # -- writing -----------------------------------------------------------------

    def write(self, obj: DBObject, members: Optional[set] = None) -> DBObject:
        """Write-lock ``obj`` (optionally scoped to some members).

        Conflicts with any composite reader that holds an inherited read
        lock on the visible part — exactly the §6 requirement.
        """
        self._ensure_active()
        self._check_access(obj, Right.WRITE)
        scope = frozenset(members) if members is not None else None
        self.lock_table.acquire(
            self.id, obj.surrogate, LockMode.X, scope,
            wait=self.wait, timeout=self.lock_timeout, origin="write",
        )
        return obj

    def set(self, obj: DBObject, attribute: str, value: Any) -> Any:
        """Write-lock, log undo information, update."""
        self.write(obj, {attribute})
        # One slot probe instead of two _attrs-view constructions.
        old = obj._local_value(attribute, _UNSET)
        had_value = old is not _UNSET
        if old is _UNSET:
            old = None
        result = obj.set_attribute(attribute, value)
        self._undo.append((obj, attribute, old, had_value))
        return result

    # -- expansion locking ----------------------------------------------------------

    def lock_expansion(self, composite: DBObject, mode: str = LockMode.S) -> int:
        """Lock a whole component hierarchy for expansion work (§6).

        Requested ``mode`` applies to the composite's own tree; components
        are read-locked on their visible parts only.  Every mode is capped
        by access control before acquisition; the standard-object pattern
        (WRITE requested, READ allowed) downgrades instead of failing.
        Returns the number of objects locked.
        """
        self._ensure_active()
        obs = getattr(self.manager.database, "obs", None)
        if obs is None:
            return self._lock_expansion(composite, mode)
        with obs.tracer.span(
            "txn.lock_expansion", txn=self.id, root=str(composite.surrogate)
        ):
            return self._lock_expansion(composite, mode)

    def _lock_expansion(self, composite: DBObject, mode: str) -> int:
        plan = expansion_lock_plan(composite, mode)
        access = self.manager.access
        count = 0
        for obj, scope, requested in plan:
            granted_mode = requested
            if access is not None:
                granted_mode = access.cap_mode(self.user, obj, requested)
            self.lock_table.acquire(
                self.id, obj.surrogate, granted_mode, scope,
                wait=self.wait, timeout=self.lock_timeout, origin="expansion",
            )
            count += 1
        return count

    # -- completion -----------------------------------------------------------------

    def commit(self) -> None:
        """End the transaction, keeping its effects.

        A persistent design transaction keeps its locks (checkout
        semantics) until :meth:`checkin`.
        """
        self._ensure_active()
        slowlog = self._slowlog()
        started = perf_counter() if slowlog is not None else 0.0
        undo_length = len(self._undo)
        self.status = self.COMMITTED
        self._undo.clear()
        if not self.persistent:
            self.lock_table.release_all(self.id)
        self.manager._finished(self)
        self.manager._record_finish("committed")
        if slowlog is not None:
            duration = perf_counter() - started
            if slowlog.exceeded("txn", duration):
                slowlog.note(
                    "txn", duration, subject=self, op="commit",
                    txn=self.id, undo=undo_length,
                )

    def abort(self) -> None:
        """Undo every logged update and release all locks."""
        self._ensure_active()
        audit = self._audit_log()
        slowlog = self._slowlog()
        started = perf_counter() if slowlog is not None else 0.0
        undo_length = len(self._undo)
        if audit is None:
            self._undo_all()
        else:
            # One txn.abort record parents every attribute_restored the
            # rollback emits, so the whole revert is one causal cone.
            with audit.operation("txn.abort", txn=self.id, undo=len(self._undo)):
                self._undo_all()
        self.status = self.ABORTED
        self.lock_table.release_all(self.id)
        self.manager._finished(self)
        self.manager._record_finish("aborted")
        if slowlog is not None:
            duration = perf_counter() - started
            if slowlog.exceeded("txn", duration):
                slowlog.note(
                    "txn", duration, subject=self, op="abort",
                    txn=self.id, undo=undo_length,
                )

    def _undo_all(self) -> None:
        for obj, attribute, old, had_value in reversed(self._undo):
            if had_value:
                obj._attrs[attribute] = old
            else:
                obj._attrs.pop(attribute, None)
            obj._mutation_epoch += 1
            # The restore bypasses set_attribute; value indexes listen for
            # this to re-extract the rolled-back value.
            obj._emit("attribute_restored", attribute=attribute)
        self._undo.clear()

    def checkin(self) -> None:
        """Release the locks of a committed persistent transaction."""
        if not self.persistent:
            raise TransactionError("checkin applies to persistent transactions")
        if self.status == self.ACTIVE:
            raise TransactionError("commit (or abort) before checkin")
        if self._checked_in:
            raise TransactionError(f"transaction {self.id} already checked in")
        self.lock_table.release_all(self.id)
        self._checked_in = True

    # -- context manager ---------------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.status == self.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False

    def _check_access(self, obj: DBObject, needed: str) -> None:
        access = self.manager.access
        if access is not None:
            access.check(self.user, obj, needed)

    def __repr__(self) -> str:
        return f"<Transaction {self.id} {self.status} user={self.user!r}>"


class TransactionManager:
    """Per-database transaction coordinator."""

    def __init__(self, database, access: Optional[AccessControlManager] = None):
        self.database = database
        self.lock_table = LockTable(obs=getattr(database, "obs", None))
        self.access = access
        self._ids = itertools.count(1)
        self._active: Dict[int, Transaction] = {}
        database.transactions = self

    def begin(
        self,
        user: Optional[str] = None,
        persistent: bool = False,
        wait: bool = False,
        lock_timeout: Optional[float] = None,
    ) -> Transaction:
        """Start a transaction.

        ``wait=True`` gives it the blocking conflict policy: its lock
        acquisitions park behind conflicting holders (``lock_timeout``
        seconds at most, None = the lock table's default) instead of
        raising immediately — the concurrent-session posture, measured by
        the contention observatory.
        """
        txn = Transaction(
            self, next(self._ids), user=user, persistent=persistent,
            wait=wait, lock_timeout=lock_timeout,
        )
        self._active[txn.id] = txn
        obs = getattr(self.database, "obs", None)
        if obs is not None:
            obs.metrics.counter("txn.begun").inc()
        return txn

    def _record_finish(self, status: str) -> None:
        obs = getattr(self.database, "obs", None)
        if obs is not None:
            obs.metrics.counter(f"txn.{status}").inc()

    def _finished(self, txn: Transaction) -> None:
        self._active.pop(txn.id, None)

    def active_transactions(self) -> List[Transaction]:
        return list(self._active.values())

    def abort_all(self) -> None:
        """Abort every active transaction (session teardown)."""
        for txn in list(self._active.values()):
            txn.abort()
