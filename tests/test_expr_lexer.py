"""Unit tests for the constraint-language tokenizer (repro.expr.lexer)."""

import pytest

from repro.errors import ExprSyntaxError
from repro.expr.lexer import Token, tokenize


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestTokenize:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "EOF"

    def test_identifiers_and_keywords(self):
        tokens = tokenize("count Pins where InOut")
        assert tokens[0].kind == "KEYWORD" and tokens[0].text == "count"
        assert tokens[1].kind == "IDENT" and tokens[1].text == "Pins"
        assert tokens[2].kind == "KEYWORD"
        assert tokens[3].kind == "IDENT"

    def test_keywords_lowercase_only(self):
        # Upper-case spellings are enum labels (IN, OUT, AND, OR), not
        # operators, so they lex as identifiers.
        assert tokenize("AND")[0].kind == "IDENT"
        assert tokenize("IN")[0].kind == "IDENT"
        assert tokenize("and")[0].kind == "KEYWORD"
        assert tokenize("Where")[0].kind == "IDENT"

    def test_numbers_int_and_float(self):
        assert texts("12 3.5 0") == ["12", "3.5", "0"]
        assert kinds("3.5")[:-1] == ["NUMBER"]

    def test_number_then_dot_member(self):
        # "3.x" is NUMBER(3), OP(.), IDENT(x) — no float swallowing.
        assert texts("3.x") == ["3", ".", "x"]

    def test_strings_single_and_double_quoted(self):
        assert texts("'abc' \"de f\"") == ["abc", "de f"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ExprSyntaxError):
            tokenize("'oops")

    def test_two_char_operators(self):
        assert texts("<= >= != <>") == ["<=", ">=", "!=", "<>"]

    def test_single_char_operators(self):
        assert texts("= < > + - * / % ( ) , . : ; #") == [
            "=", "<", ">", "+", "-", "*", "/", "%",
            "(", ")", ",", ".", ":", ";", "#",
        ]

    def test_unexpected_character(self):
        with pytest.raises(ExprSyntaxError) as excinfo:
            tokenize("a @ b")
        assert excinfo.value.position == 2

    def test_positions_recorded(self):
        tokens = tokenize("ab + cd")
        assert [token.position for token in tokens[:-1]] == [0, 3, 5]

    def test_paper_constraint_tokenizes(self):
        source = "count (Pins) = 2 where Pins.InOut = IN"
        token_texts = texts(source)
        assert token_texts[0] == "count"
        assert "where" in token_texts and "IN" in token_texts

    def test_hash_count_syntax(self):
        assert texts("#s in Bolt = 1") == ["#", "s", "in", "Bolt", "=", "1"]

    def test_underscore_identifiers(self):
        assert texts("AllOf_GateInterface") == ["AllOf_GateInterface"]

    def test_token_helpers(self):
        token = Token("OP", "=", 0)
        assert token.is_op("=", "<") and not token.is_keyword("and")
