"""Unit tests for the domain system (repro.core.domains)."""

import pytest

from repro.core.domains import (
    ANY,
    BOOLEAN,
    CHAR,
    INTEGER,
    IO,
    POINT,
    REAL,
    STRING,
    EnumDomain,
    ListOf,
    MatrixOf,
    RecordDomain,
    SetOf,
    SurrogateDomain,
)
from repro.core.surrogate import Surrogate
from repro.errors import DomainError


class TestSimpleDomains:
    def test_integer_accepts_ints(self):
        assert INTEGER.validate(42) == 42
        assert INTEGER.validate(-1) == -1

    def test_integer_rejects_bool_float_str(self):
        for bad in (True, 1.5, "1", None):
            with pytest.raises(DomainError):
                INTEGER.validate(bad)

    def test_real_widens_int(self):
        assert REAL.validate(3) == 3.0
        assert isinstance(REAL.validate(3), float)

    def test_real_rejects_bool(self):
        with pytest.raises(DomainError):
            REAL.validate(False)

    def test_string_and_char(self):
        assert STRING.validate("abc") == "abc"
        assert CHAR.validate("W. Wilkes") == "W. Wilkes"
        with pytest.raises(DomainError):
            STRING.validate(5)

    def test_boolean(self):
        assert BOOLEAN.validate(True) is True
        with pytest.raises(DomainError):
            BOOLEAN.validate(1)

    def test_any_accepts_everything(self):
        for value in (1, "x", None, object()):
            assert ANY.validate(value) is value

    def test_contains(self):
        assert INTEGER.contains(1)
        assert not INTEGER.contains("1")

    def test_surrogate_domain(self):
        domain = SurrogateDomain()
        token = Surrogate(1)
        assert domain.validate(token) is token
        with pytest.raises(DomainError):
            domain.validate(1)


class TestEnumDomain:
    def test_io_domain_from_paper(self):
        assert IO.validate("IN") == "IN"
        assert IO.validate("OUT") == "OUT"
        with pytest.raises(DomainError):
            IO.validate("INOUT")

    def test_case_sensitive(self):
        with pytest.raises(DomainError):
            IO.validate("in")

    def test_empty_labels_rejected(self):
        with pytest.raises(DomainError):
            EnumDomain("E", [])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DomainError):
            EnumDomain("E", ["A", "A"])

    def test_describe_lists_labels(self):
        assert "IN" in IO.describe() and "OUT" in IO.describe()


class TestRecordDomain:
    def test_point_from_paper(self):
        value = POINT.validate({"X": 3, "Y": 4})
        assert value.X == 3 and value["Y"] == 4

    def test_positional_tuple_accepted(self):
        assert POINT.validate((1, 2)) == POINT.validate({"X": 1, "Y": 2})

    def test_missing_field_rejected(self):
        with pytest.raises(DomainError):
            POINT.validate({"X": 1})

    def test_extra_field_rejected(self):
        with pytest.raises(DomainError):
            POINT.validate({"X": 1, "Y": 2, "Z": 3})

    def test_field_domain_enforced(self):
        with pytest.raises(DomainError):
            POINT.validate({"X": 1.5, "Y": 2})

    def test_empty_record_rejected(self):
        with pytest.raises(DomainError):
            RecordDomain("E", {})

    def test_nested_record(self):
        area = RecordDomain("Area", {"Length": INTEGER, "Width": INTEGER})
        slab = RecordDomain("Slab", {"Area": area, "Thickness": INTEGER})
        value = slab.validate({"Area": {"Length": 2, "Width": 3}, "Thickness": 1})
        assert value.Area.Width == 3


class TestRecordValue:
    def test_immutable(self):
        value = POINT.validate({"X": 1, "Y": 2})
        with pytest.raises(AttributeError):
            value.X = 5

    def test_hashable_and_equal(self):
        a = POINT.validate({"X": 1, "Y": 2})
        b = POINT.validate({"Y": 2, "X": 1})
        assert a == b and hash(a) == hash(b)

    def test_equality_with_plain_mapping(self):
        assert POINT.validate({"X": 1, "Y": 2}) == {"X": 1, "Y": 2}

    def test_replace(self):
        moved = POINT.validate({"X": 1, "Y": 2}).replace(X=9)
        assert moved.X == 9 and moved.Y == 2
        with pytest.raises(KeyError):
            moved.replace(Z=1)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            POINT.validate({"X": 1, "Y": 2}).Z


class TestConstructors:
    def test_list_of_preserves_order_and_duplicates(self):
        corners = ListOf(POINT)
        value = corners.validate([(0, 0), (1, 0), (0, 0)])
        assert len(value) == 3 and value[0] == value[2]

    def test_list_of_rejects_scalar_and_string(self):
        with pytest.raises(DomainError):
            ListOf(INTEGER).validate(5)
        with pytest.raises(DomainError):
            ListOf(STRING).validate("abc")

    def test_set_of_merges_duplicates(self):
        pins = SetOf(RecordDomain("Pin", {"PinId": INTEGER, "InOut": IO}))
        value = pins.validate(
            [{"PinId": 1, "InOut": "IN"}, {"PinId": 1, "InOut": "IN"}]
        )
        assert len(value) == 1

    def test_set_of_element_domain_enforced(self):
        with pytest.raises(DomainError):
            SetOf(INTEGER).validate([1, "two"])

    def test_matrix_of_boolean_truth_table(self):
        function = MatrixOf(BOOLEAN)
        table = function.validate([[False, False], [False, True]])
        assert table[1][1] is True

    def test_matrix_must_be_rectangular(self):
        with pytest.raises(DomainError):
            MatrixOf(INTEGER).validate([[1, 2], [3]])

    def test_matrix_empty_ok(self):
        assert MatrixOf(BOOLEAN).validate([]) == ()

    def test_domain_equality_by_description(self):
        assert ListOf(INTEGER) == ListOf(INTEGER)
        assert ListOf(INTEGER) != SetOf(INTEGER)
