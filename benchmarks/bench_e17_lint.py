"""E17 — static analysis: lint cost vs. the failures it prevents.

The analyzer's pitch is "pay a parse-time pass, skip a runtime crash".
This experiment prices both sides:

* ``lint_gate`` / ``lint_steel`` — the full `analyze()` pass over the
  paper schemas (parse + model lowering + every REP1xx–REP4xx rule);
* ``lint_catalog`` — the same rules over an already-compiled catalog
  (no parse, plans already cached): the incremental re-lint cost;
* ``lint_scaling`` — rule cost as the schema grows (N types chained by
  inheritance relationships): the graph rules (Tarjan SCC, diamond
  detection) must stay near-linear in declarations;
* ``verify_differential`` — the full `--verify` harness on the gate
  schema (build + synthesize + oracle probes): the price of *proving*
  a clean bill of health rather than asserting it.

Expectation recorded in EXPERIMENTS.md: linting a paper-sized schema
costs milliseconds (far below one failed ``load_schema`` round-trip),
re-linting a compiled catalog is cheaper than parsing, and rule cost
grows roughly linearly with declaration count.
"""

import pytest

from repro.analysis import analyze, model_from_catalog, run_model_rules, verify_against_runtime
from repro.ddl.paper import GATE_SCHEMA, STEEL_SCHEMA, load_gate_schema, load_steel_schema

SCALES = [8, 32, 128]


def _chained_schema(n_types):
    """N object types where every even type transmits to its successor —
    plenty of inheritance edges for the graph rules to chew on."""
    parts = []
    for i in range(n_types):
        parts.append(
            f"obj-type T{i} = attributes: A{i}: integer; end T{i};"
        )
        if i % 2 == 1:
            parts.append(
                f"inher-rel-type R{i} = transmitter: object-of-type T{i - 1}; "
                f"inheritor: object; inheriting: A{i - 1}; end R{i};"
            )
            parts[-2] = (
                f"obj-type T{i} = inheritor-in: R{i}; "
                f"attributes: A{i}: integer; end T{i};"
            )
            # keep declaration order legal: rel before its inheritor
            parts[-2], parts[-1] = parts[-1], parts[-2]
    return "\n".join(parts)


class TestPaperSchemaLint:
    def test_lint_gate(self, benchmark):
        findings = benchmark(lambda: analyze(GATE_SCHEMA))
        assert not any(d.severity == "error" for d in findings)

    def test_lint_steel(self, benchmark):
        findings = benchmark(lambda: analyze(STEEL_SCHEMA))
        assert not any(d.severity == "error" for d in findings)

    def test_lint_gate_catalog(self, benchmark):
        catalog = load_gate_schema()
        findings = benchmark(
            lambda: run_model_rules(model_from_catalog(catalog))
        )
        assert not any(d.severity == "error" for d in findings)

    def test_lint_steel_catalog(self, benchmark):
        catalog = load_steel_schema()
        findings = benchmark(
            lambda: run_model_rules(model_from_catalog(catalog))
        )
        assert not any(d.severity == "error" for d in findings)


class TestScaling:
    @pytest.mark.parametrize("n_types", SCALES)
    def test_lint_scaling(self, benchmark, n_types):
        source = _chained_schema(n_types)
        findings = benchmark(lambda: analyze(source))
        assert not any(d.severity == "error" for d in findings)


class TestDifferential:
    def test_verify_differential_gate(self, benchmark):
        report = benchmark(
            lambda: verify_against_runtime(GATE_SCHEMA, strict=True)
        )
        assert report.ok and report.built


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""

    @suite.case("lint_gate")
    def gate_case():
        return lambda: analyze(GATE_SCHEMA)

    @suite.case("lint_gate_catalog")
    def catalog_case():
        catalog = load_gate_schema()
        return lambda: run_model_rules(model_from_catalog(catalog))

    @suite.case("lint_scaling[32]")
    def scaling_case():
        source = _chained_schema(32)
        return lambda: analyze(source)

    if not suite.quick:

        @suite.case("verify_differential_gate")
        def verify_case():
            return lambda: verify_against_runtime(GATE_SCHEMA, strict=True)
