"""E14 — resolution engine: compiled plans vs. the interpretive walk.

The member-resolution refactor compiles a per-type dispatch table
(:mod:`repro.core.resolution`) validated by epoch counters.  This
experiment quantifies the move:

* deep-chain inherited reads vs. the original interpretive walk (kept as
  ``naive_get_member``) — both the steady state (memoised holder, O(1)
  epoch validation) and the cold compiled walk; the acceptance target is
  ≥3× at depth 8;
* diamond dispatch (two candidate relationships, declaration order);
* the epoch-guarded cache: warm reads and the update → revalidate cycle;
* plan-compilation cost and amortisation (``visible_member_names``).
"""

import pytest

from repro.core import INTEGER, InheritanceRelationshipType, ObjectType, new_object
from repro.core import resolution

DEPTHS = [4, 8, 16]


def build_chain(depth, prefix):
    """A depth-level transmitter chain; returns (top, bottom)."""
    base_type = ObjectType(f"{prefix}L0", attributes={"V": INTEGER})
    current_type = base_type
    top = new_object(base_type, V=42)
    current = top
    for level in range(1, depth + 1):
        rel = InheritanceRelationshipType(f"{prefix}R{level}", current_type, ["V"])
        next_type = ObjectType(f"{prefix}L{level}")
        next_type.declare_inheritor_in(rel)
        current = new_object(next_type, transmitter=current, via=rel)
        current_type = next_type
    return top, current


class TestDeepChainReads:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_plan_read(self, benchmark, depth):
        """Steady state: memoised holder, two epoch compares, live value."""
        _top, bottom = build_chain(depth, "P")
        assert bottom.get_member("V") == 42  # warm plan + holder memo
        benchmark(bottom.get_member, "V")

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_plan_walk_cold(self, benchmark, depth):
        """First-read cost: the compiled iterative walk, memo discarded."""
        _top, bottom = build_chain(depth, "W")
        memo = bottom._member_memo

        def cold_read():
            memo.clear()
            return bottom.get_member("V")

        assert cold_read() == 42
        benchmark(cold_read)

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_interpretive_read(self, benchmark, depth):
        """The seed delegation path: re-scan inheritor-in at every level."""
        _top, bottom = build_chain(depth, "N")
        assert resolution.naive_get_member(bottom, "V") == 42
        benchmark(resolution.naive_get_member, bottom, "V")


class TestDiamondDispatch:
    def test_diamond_read_plan(self, benchmark):
        """Two candidate relationships: declaration order decides."""
        transmitter_type = ObjectType(
            "DiaT", attributes={"A": INTEGER, "B": INTEGER}
        )
        rel_a = InheritanceRelationshipType("DiaA", transmitter_type, ["A", "B"])
        rel_b = InheritanceRelationshipType("DiaB", transmitter_type, ["A"])
        inheritor_type = ObjectType("DiaI")
        inheritor_type.declare_inheritor_in(rel_a)
        inheritor_type.declare_inheritor_in(rel_b)
        t1 = new_object(transmitter_type, A=1, B=2)
        t2 = new_object(transmitter_type, A=3, B=4)
        inh = new_object(inheritor_type)
        from repro.core import bind

        bind(inh, t2, rel_b)
        bind(inh, t1, rel_a)
        assert inh.get_member("A") == 1  # rel_a declared first
        benchmark(inh.get_member, "A")


class TestEpochCache:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_epoch_cache_warm_read(self, benchmark, depth):
        """A fresh entry costs O(chain) integer compares, no delegation."""
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e14-cache")
        cache = InheritedValueCache(db)
        base_type = ObjectType("C0", attributes={"V": INTEGER})
        current_type = base_type
        top = new_object(base_type, database=db, V=42)
        current = top
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"CR{level}", current_type, ["V"])
            next_type = ObjectType(f"C{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(next_type, database=db, transmitter=current, via=rel)
            current_type = next_type
        assert cache.get(current, "V") == 42
        benchmark(cache.get, current, "V")

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_epoch_cache_update_then_revalidate(self, benchmark, depth):
        """Root update + next read: lazy staleness detection + rematerialise."""
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e14-cache")
        cache = InheritedValueCache(db)
        base_type = ObjectType("U0", attributes={"V": INTEGER})
        current_type = base_type
        top = new_object(base_type, database=db, V=0)
        current = top
        for level in range(1, depth + 1):
            rel = InheritanceRelationshipType(f"UR{level}", current_type, ["V"])
            next_type = ObjectType(f"U{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(next_type, database=db, transmitter=current, via=rel)
            current_type = next_type
        counter = iter(range(10**9))

        def update_and_reread():
            top.set_attribute("V", next(counter))
            cache.get(current, "V")

        benchmark(update_and_reread)


class TestPlanCompilation:
    def test_plan_compile_wide_type(self, benchmark):
        """One-off compile cost for a 64-attribute type with inheritance."""
        transmitter_type = ObjectType(
            "WideT", attributes={f"A{i}": INTEGER for i in range(64)}
        )
        rel = InheritanceRelationshipType(
            "WideRel", transmitter_type, [f"A{i}" for i in range(64)]
        )
        inheritor_type = ObjectType("WideI", attributes={"Own": INTEGER})
        inheritor_type.declare_inheritor_in(rel)
        benchmark(resolution.compile_plan, inheritor_type)

    def test_visible_member_names_amortised(self, benchmark):
        """Precompiled member order: a tuple load after the epoch check."""
        transmitter_type = ObjectType(
            "VisT", attributes={f"A{i}": INTEGER for i in range(32)}
        )
        rel = InheritanceRelationshipType(
            "VisRel", transmitter_type, [f"A{i}" for i in range(32)]
        )
        inheritor_type = ObjectType("VisI")
        inheritor_type.declare_inheritor_in(rel)
        obj = new_object(inheritor_type)
        assert len(obj.visible_member_names()) == 33
        benchmark(obj.visible_member_names)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    depths = [8] if suite.quick else [8, 16]
    for depth in depths:

        @suite.case(f"plan_read[{depth}]")
        def plan_case(depth=depth):
            _top, bottom = build_chain(depth, "P")
            assert bottom.get_member("V") == 42
            return lambda: bottom.get_member("V")

        @suite.case(f"plan_walk_cold[{depth}]")
        def cold_case(depth=depth):
            _top, bottom = build_chain(depth, "W")
            memo = bottom._member_memo

            def cold_read():
                memo.clear()
                return bottom.get_member("V")

            assert cold_read() == 42
            return cold_read

        @suite.case(f"interpretive_read[{depth}]")
        def interpretive_case(depth=depth):
            _top, bottom = build_chain(depth, "N")
            assert resolution.naive_get_member(bottom, "V") == 42
            return lambda: resolution.naive_get_member(bottom, "V")

    @suite.case("epoch_cache_warm_read[8]")
    def cache_case():
        from repro.composition import InheritedValueCache
        from repro.workloads import gate_database

        db = gate_database("e14-cache")
        cache = InheritedValueCache(db)
        base_type = ObjectType("C0", attributes={"V": INTEGER})
        current_type = base_type
        current = new_object(base_type, database=db, V=42)
        for level in range(1, 9):
            rel = InheritanceRelationshipType(f"CR{level}", current_type, ["V"])
            next_type = ObjectType(f"C{level}")
            next_type.declare_inheritor_in(rel)
            current = new_object(
                next_type, database=db, transmitter=current, via=rel
            )
            current_type = next_type
        assert cache.get(current, "V") == 42
        return lambda: cache.get(current, "V")
