"""Constraint-expression language (lexer, parser, AST, evaluation).

This package implements the little language the paper writes its integrity
constraints in, e.g.::

    count (Pins) = 2 where Pins.InOut = IN
    for (s in Bolt, n in Nut): s.Diameter = n.Diameter
    s.Length = n.Length + sum (Bores.Length)

Use :func:`parse_expression` / :func:`parse_constraints` to build ASTs and
evaluate them against an :class:`EvalContext` rooted at a database object.
"""

from .ast import (
    Aggregate,
    Binary,
    Literal,
    Name,
    Node,
    Path,
    Quantified,
    Unary,
    iter_aggregates,
    truthy,
)
from .context import MISSING, EvalContext, as_collection, is_collection, resolve_member
from .lexer import Token, tokenize
from .parser import parse_constraints, parse_expression

__all__ = [
    "Aggregate",
    "Binary",
    "Literal",
    "Name",
    "Node",
    "Path",
    "Quantified",
    "Unary",
    "iter_aggregates",
    "truthy",
    "MISSING",
    "EvalContext",
    "as_collection",
    "is_collection",
    "resolve_member",
    "Token",
    "tokenize",
    "parse_constraints",
    "parse_expression",
]
