"""E15 — indexed query engine: value indexes vs. full scans.

A parts library at 10k/50k objects, three access patterns:

* selective equality (``Category`` holds ~1% of the extent per value);
* range + top-k (``Serial >= high-water order by Serial desc limit 10``);
* the same queries forced through the full scan (``indexes.auto = False``)
  as the baseline the planner must beat;
* the maintenance tax: one attribute update with value indexes attached.

The acceptance shape: at 50k the indexed equality beats the scan by ≥10×
and the indexed range+top-k by ≥5×; updates stay O(indexes touched).
"""

import pytest

from repro.core.domains import ANY
from repro.engine import Database

SIZES = [10_000, 50_000]

_cache = {}


def parts_db(n):
    """A cached n-part library with warmed value indexes."""
    if n not in _cache:
        db = Database(f"e15-{n}")
        db.catalog.define_object_type(
            "Part",
            attributes={"Serial": ANY, "Weight": ANY, "Category": ANY},
        )
        db.create_class("Parts", "Part")
        categories = n // 100  # ~1% of the extent per category value
        for i in range(n):
            db.create_object(
                "Part",
                class_name="Parts",
                Serial=i,
                Weight=i % 97,
                Category=f"cat_{i % categories}",
            )
        # Warm the Category and Serial indexes so the benchmark measures
        # steady-state lookups, not the one-off build.
        db.query("select * from Parts where Category = 'cat_0'")
        db.query("select * from Parts where Serial >= 0 and Serial < 1")
        db.query("select * from Parts where Weight = -1")
        _cache[n] = db
    return _cache[n]


def run_with(db, text, auto):
    manager = db.indexes
    previous = manager.auto
    manager.auto = auto
    try:
        return db.query(text)
    finally:
        manager.auto = previous


class TestSelectiveEquality:
    @pytest.mark.parametrize("n", SIZES)
    def test_eq_indexed(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(
            run_with, db, "select * from Parts where Category = 'cat_3'", True
        )
        assert len(result) == 100
        assert result.plan.access_path == "index-eq"

    @pytest.mark.parametrize("n", SIZES)
    def test_eq_full_scan(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(
            run_with, db, "select * from Parts where Category = 'cat_3'", False
        )
        assert len(result) == 100
        assert result.plan.access_path == "full-scan"


class TestRangeTopK:
    @pytest.mark.parametrize("n", SIZES)
    def test_range_topk_indexed(self, benchmark, n):
        db = parts_db(n)
        text = (
            f"select Serial from Parts where Serial >= {n - n // 100} "
            "order by Serial desc limit 10"
        )
        result = benchmark(run_with, db, text, True)
        assert result.scalars() == list(range(n - 1, n - 11, -1))
        assert result.plan.access_path == "index-range"
        assert result.plan.order == "top-10 heap desc"

    @pytest.mark.parametrize("n", SIZES)
    def test_range_topk_full_scan(self, benchmark, n):
        db = parts_db(n)
        text = (
            f"select Serial from Parts where Serial >= {n - n // 100} "
            "order by Serial desc limit 10"
        )
        result = benchmark(run_with, db, text, False)
        assert result.scalars() == list(range(n - 1, n - 11, -1))
        assert result.plan.access_path == "full-scan"


class TestMaintenance:
    @pytest.mark.parametrize("n", SIZES)
    def test_update_with_indexes(self, benchmark, n):
        """The write-path tax: each update refreshes the attribute's index."""
        db = parts_db(n)
        obj = db.class_("Parts").members()[0]
        counter = iter(range(10**9))

        def run():
            obj.set_attribute("Weight", next(counter))

        benchmark(run)
        obj.set_attribute("Weight", 0)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    sizes = [2_000] if suite.quick else SIZES
    for n in sizes:

        @suite.case(f"eq_indexed[{n}]")
        def eq_indexed_case(n=n):
            db = parts_db(n)
            query = "select * from Parts where Category = 'cat_3'"
            return lambda: run_with(db, query, True)

        @suite.case(f"eq_full_scan[{n}]")
        def eq_scan_case(n=n):
            db = parts_db(n)
            query = "select * from Parts where Category = 'cat_3'"
            return lambda: run_with(db, query, False)

        @suite.case(f"range_topk_indexed[{n}]")
        def range_indexed_case(n=n):
            db = parts_db(n)
            query = (
                f"select Serial from Parts where Serial >= {n - n // 100} "
                "order by Serial desc limit 10"
            )
            return lambda: run_with(db, query, True)

        @suite.case(f"range_topk_full_scan[{n}]")
        def range_scan_case(n=n):
            db = parts_db(n)
            query = (
                f"select Serial from Parts where Serial >= {n - n // 100} "
                "order by Serial desc limit 10"
            )
            return lambda: run_with(db, query, False)

        @suite.case(f"update_with_indexes[{n}]")
        def update_case(n=n):
            db = parts_db(n)
            obj = db.class_("Parts").members()[0]
            counter = iter(range(10**9))
            return lambda: obj.set_attribute("Weight", next(counter))
