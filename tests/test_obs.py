"""Tests for the observability layer (repro.obs)."""

import copy
import json
import time

import pytest

from repro.engine import Database, save
from repro.engine.events import Event, EventBus
from repro.obs import (
    FANOUT_BUCKETS,
    EventTap,
    Histogram,
    MetricsRegistry,
    Observability,
    RESERVOIR_SIZE,
    Tracer,
    exercise,
    format_span_tree,
    maybe_span,
    render_table,
    snapshot,
)
from repro.obs.report import SCHEMA_VERSION, derived_stats
from repro.workloads import gate_database, make_implementation, make_interface


def observed_gate_database(name="obs-test", **options):
    db = gate_database(name)
    db.enable_observability(**options)
    return db


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", kind="test"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner_a", "inner_b"]
        assert outer.children[1].children[0].name == "leaf"
        assert outer.children[1].children[0].parent is outer.children[1]

    def test_span_timing(self):
        tracer = Tracer()
        with tracer.span("timed"):
            time.sleep(0.01)
        span = tracer.roots[0]
        assert span.duration is not None
        assert span.duration >= 0.009
        # The parent's duration covers its children.
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.005)
        parent = tracer.roots[1]
        assert parent.duration >= parent.children[0].duration

    def test_disabled_tracer_is_noop_singleton(self):
        tracer = Tracer(enabled=False)
        span_a = tracer.span("a", attr=1)
        span_b = tracer.span("b")
        assert span_a is span_b  # shared singleton, no allocation
        with span_a:
            pass
        assert len(tracer) == 0
        assert tracer.roots == []

    def test_max_spans_drops_but_keeps_timing_balance(self):
        tracer = Tracer(max_spans=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.roots) == 2
        assert tracer.dropped == 3
        assert tracer._stack == []

    def test_attributes_and_error_flag(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", n=3) as span:
                span.set(extra="yes")
                raise ValueError("x")
        span = tracer.roots[0]
        assert span.attributes["n"] == 3
        assert span.attributes["extra"] == "yes"
        assert span.attributes["error"] == "ValueError"

    def test_find_and_format(self):
        tracer = Tracer()
        with tracer.span("load", objects=2):
            with tracer.span("decode"):
                pass
        assert [span.name for span in tracer.all_spans()] == ["load", "decode"]
        assert len(tracer.find("decode")) == 1
        text = format_span_tree(tracer)
        assert "load" in text
        assert "\n  decode" in text  # indented child

    def test_maybe_span_with_none(self):
        with maybe_span(None, "anything"):
            pass  # no observability attached: no-op


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_basics(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(2)
        assert registry.value("a") == 5
        assert registry.value("g") == 5
        assert registry.value("missing", default=-1) == -1

    def test_histogram_bucket_edges(self):
        hist = Histogram("h", bounds=(1, 10, 100))
        # Edges are inclusive upper bounds: value == bound lands in it.
        for value in (0, 1):
            hist.observe(value)
        hist.observe(2)
        hist.observe(10)
        hist.observe(11)
        hist.observe(100)
        hist.observe(101)  # overflow
        assert hist.bucket_counts == [2, 2, 2]
        assert hist.overflow == 1
        assert hist.count == 7
        assert hist.min == 0 and hist.max == 101
        assert hist.sum == 225
        exported = hist.as_dict()
        assert [bucket["le"] for bucket in exported["buckets"]] == [1, 10, 100]
        assert exported["inf"] == 1
        assert exported["mean"] == pytest.approx(225 / 7)

    def test_histogram_percentiles_exact_below_reservoir(self):
        hist = Histogram("h", bounds=(1000,))
        for value in range(1, 101):  # 1..100, well under RESERVOIR_SIZE
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)
        exported = hist.as_dict()
        assert exported["p50"] == pytest.approx(50.5)
        assert exported["p99"] == pytest.approx(99.01)
        assert exported["sampled"] == 100

    def test_histogram_percentile_edge_cases(self):
        hist = Histogram("h", bounds=(1,))
        assert hist.percentile(50) is None  # no observations
        hist.observe(7)
        assert hist.percentile(0) == 7 == hist.percentile(100)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_histogram_reservoir_bounded_and_representative(self):
        hist = Histogram("h", bounds=(10**7,))
        n = 4 * RESERVOIR_SIZE
        for value in range(n):
            hist.observe(value)
        # The reservoir never outgrows its bound even for 4x the traffic,
        # and the uniform sample keeps the median estimate near truth.
        assert len(hist.reservoir) == RESERVOIR_SIZE
        assert hist.count == n
        assert hist.percentile(50) == pytest.approx(n / 2, rel=0.15)
        # Seeded RNG: the same stream always yields the same sample.
        twin = Histogram("h", bounds=(10**7,))
        for value in range(n):
            twin.observe(value)
        assert twin.reservoir == hist.reservoir

    def test_histogram_bounds_sorted_and_nonempty(self):
        hist = Histogram("h", bounds=(100, 1, 10))
        assert hist.bounds == (1, 10, 100)
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())

    def test_name_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h", bounds=(1,)).observe(1)
        data = registry.as_dict()
        assert set(data) == {"counters", "gauges", "histograms"}
        assert data["counters"] == {"c": 1}
        assert json.dumps(data)  # JSON-serialisable


# ---------------------------------------------------------------------------
# the event tap and propagation measurement
# ---------------------------------------------------------------------------

class TestEventTap:
    def test_scripted_propagation_scenario(self):
        """Counts checked against a hand-built interface hierarchy."""
        db = observed_gate_database()
        metrics = db.obs.metrics
        iface = make_interface(db)
        impls = [make_implementation(db, iface) for _ in range(3)]

        assert metrics.value("events.object_created") == 1 + 3
        assert metrics.value("inheritance.bound.AllOf_GateInterface") == 3

        metrics.reset()  # drop the construction-time attribute_updated noise
        iface.set_attribute("Length", 42)  # fans out to the 3 implementations
        assert metrics.value("propagation.updates") == 1
        assert metrics.value("propagation.fanout_total") == 3
        assert metrics.value("propagation.by_rel_type.AllOf_GateInterface") == 3

        impls[0].set_attribute("TimeBehavior", 9)  # local member: fan-out 0
        assert metrics.value("propagation.updates") == 2
        assert metrics.value("propagation.fanout_total") == 3
        fanout = metrics.histogram("propagation.fanout", FANOUT_BUCKETS)
        assert fanout.count == 2
        assert fanout.max == 3 and fanout.min == 0
        assert metrics.value("propagation.updates_with_inheritors") == 1

        link = impls[1].inheritance_links[0]
        link.unbind()
        assert metrics.value("inheritance.unbound.AllOf_GateInterface") == 1
        iface.set_attribute("Length", 43)
        assert metrics.value("propagation.fanout_total") == 3 + 2

    def test_event_kind_counters_and_ring(self):
        db = observed_gate_database(ring_size=4)
        iface = make_interface(db, n_in=1, n_out=1)
        tap = db.obs.tap
        assert db.obs.metrics.value("events.subobject_added") == 2
        assert len(tap.recent()) == 4  # ring capped
        kinds = {event.kind for event in tap.recent()}
        assert kinds <= {"object_created", "subobject_added", "attribute_updated"}
        assert tap.recent("subobject_added")[-1].subject is iface

    def test_observe_false_adds_zero_subscriptions(self):
        db = gate_database("unobserved")
        assert db.obs is None
        handler_count = sum(len(v) for v in db.events._handlers.values())
        assert handler_count == 0

    def test_observe_true_adds_exactly_one_subscription(self):
        db = observed_gate_database()
        handler_count = sum(len(v) for v in db.events._handlers.values())
        assert handler_count == 1
        db.disable_observability()
        assert db.obs is None
        handler_count = sum(len(v) for v in db.events._handlers.values())
        assert handler_count == 0

    def test_detach_stops_counting(self):
        db = observed_gate_database()
        obs = db.obs
        iface = make_interface(db)
        before = obs.metrics.value("propagation.updates", 0)
        db.disable_observability()
        iface.set_attribute("Length", 77)
        assert obs.metrics.value("propagation.updates", 0) == before


# ---------------------------------------------------------------------------
# instrumented engine paths
# ---------------------------------------------------------------------------

class TestInstrumentedPaths:
    def test_inherited_read_counter_counts_hops(self):
        db = observed_gate_database()
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        before = db.obs.metrics.value("reads.inherited", 0)
        impl.get_member("Length")
        assert db.obs.metrics.value("reads.inherited") == before + 1
        impl.get_member("TimeBehavior")  # local: uncounted
        assert db.obs.metrics.value("reads.inherited") == before + 1

    def test_bind_span_recorded(self):
        db = observed_gate_database()
        iface = make_interface(db)
        make_implementation(db, iface)
        spans = db.obs.tracer.find("inheritance.bind")
        assert spans and spans[0].attributes["rel_type"] == "AllOf_GateInterface"

    def test_query_metrics_and_span(self):
        db = observed_gate_database()
        make_interface(db, length=10)
        make_interface(db, length=99)
        result = db.query("select * from GateInterface where Length > 50")
        assert len(result) == 1
        metrics = db.obs.metrics
        assert metrics.value("query.executed") == 1
        assert metrics.value("query.rows_scanned") == 2
        assert metrics.value("query.rows_matched") == 1
        span = db.obs.tracer.find("query.execute")[0]
        assert span.attributes["rows"] == 1

    def test_lock_metrics(self):
        from repro.errors import LockConflictError
        from repro.txn import TransactionManager

        db = observed_gate_database()
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        manager = TransactionManager(db)
        reader = manager.begin()
        reader.read(impl, {"Length"})  # + inherited lock on the interface
        metrics = db.obs.metrics
        assert metrics.value("locks.acquired") >= 2
        assert metrics.value("locks.inherited_plans") >= 1
        writer = manager.begin()
        with pytest.raises(LockConflictError):
            writer.write(iface, {"Length"})
        assert metrics.value("locks.conflicts") == 1
        reader.commit()
        assert metrics.value("txn.committed") == 1
        assert metrics.value("locks.released") >= 2

    def test_persistence_metrics(self, tmp_path):
        db = observed_gate_database()
        make_interface(db)
        path = tmp_path / "image.json"
        save(db, str(path))
        assert db.obs.metrics.value("persistence.dumps") == 1
        assert db.obs.metrics.value("persistence.objects_dumped") == db.count()
        assert db.obs.tracer.find("persistence.dump")

    def test_cache_metrics(self):
        from repro.composition.cache import InheritedValueCache

        db = observed_gate_database()
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        cache = InheritedValueCache(db)
        cache.get(impl, "Length")
        cache.get(impl, "Length")
        metrics = db.obs.metrics
        assert metrics.value("cache.misses") == 1
        assert metrics.value("cache.hits") == 1
        iface.set_attribute("Length", 55)
        # Epoch-based invalidation is lazy: counted at the read that finds
        # the entry stale.
        assert cache.get(impl, "Length") == 55
        assert metrics.value("cache.invalidations") == 1
        cache.detach()

    def test_expand_metrics(self):
        from repro.composition import add_component
        from repro.composition.composite import expand

        db = observed_gate_database()
        component = make_interface(db)
        composite = make_implementation(db, make_interface(db))
        add_component(composite, "SubGates", component,
                      GateLocation={"X": 0, "Y": 0})
        expansion = expand(composite)
        metrics = db.obs.metrics
        assert metrics.value("composition.expansions") == 1
        hist = metrics.histogram("composition.expansion_size")
        assert hist.count == 1 and hist.max == len(expansion.objects)


# ---------------------------------------------------------------------------
# snapshot / report / exercise
# ---------------------------------------------------------------------------

class TestReport:
    def test_snapshot_schema(self):
        db = observed_gate_database()
        make_interface(db)
        snap = snapshot(db)
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["database"] == "obs-test"
        assert snap["objects"] == db.count()
        assert set(snap) >= {"counters", "gauges", "histograms", "events"}
        assert snap["counters"]["events.object_created"] >= 1
        assert json.dumps(snap)  # fully JSON-serialisable

    def test_snapshot_requires_observability(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            snapshot(gate_database("plain"))

    def test_render_table(self):
        db = observed_gate_database()
        iface = make_interface(db)
        iface.set_attribute("Length", 12)
        text = render_table(snapshot(db))
        assert "events.attribute_updated" in text
        assert "propagation.fanout" in text
        assert "recent events" in text

    def test_exercise_produces_core_metrics(self):
        db = observed_gate_database()
        iface = make_interface(db)
        make_implementation(db, iface)
        exercise(db)
        stats = derived_stats(snapshot(db))
        assert stats["propagation_updates"] > 0
        assert stats["lock_acquisitions"] > 0
        assert stats["cache_hits"] > 0 and stats["cache_misses"] > 0
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["inherited_reads"] > 0

    def test_exercise_does_not_change_values(self):
        db = observed_gate_database()
        iface = make_interface(db, length=10)
        impl = make_implementation(db, iface)
        exercise(db)
        assert iface["Length"] == 10
        assert impl["Length"] == 10


# ---------------------------------------------------------------------------
# Database plumbing and the Event dunder fix
# ---------------------------------------------------------------------------

class TestPlumbing:
    def test_observe_flag_and_idempotent_enable(self):
        db = Database("flagged", observe=True)
        assert isinstance(db.obs, Observability)
        assert db.enable_observability() is db.obs

    def test_event_dunder_lookup_raises_attribute_error(self):
        event = Event("attribute_updated", subject=None, data={"attribute": "x"})
        with pytest.raises(AttributeError):
            event.__deepcopy__
        with pytest.raises(AttributeError):
            event.__copy__
        assert event.attribute == "x"
        with pytest.raises(AttributeError):
            event.missing_key

    def test_event_survives_deepcopy(self):
        event = Event("k", subject=None, data={"a": 1}, seq=3)
        clone = copy.deepcopy(event)
        assert clone.kind == "k" and clone.a == 1 and clone.seq == 3

    def test_tap_on_plain_bus(self):
        bus = EventBus()
        registry = MetricsRegistry()
        tap = EventTap(bus, registry, track_propagation=False)
        bus.emit("custom_kind", subject=None, payload=1)
        assert registry.value("events.custom_kind") == 1
        tap.detach()
        bus.emit("custom_kind", subject=None)
        assert registry.value("events.custom_kind") == 1
