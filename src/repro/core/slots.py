"""Slotted per-type attribute storage.

Before this module, every :class:`~repro.core.objects.DBObject` stored its
local attribute values in a per-instance dict.  That is flexible but slow
to scan: an unindexed query or constraint sweep over 50k objects pays a
hash probe per attribute per object, and the values of one attribute are
scattered across 50k dicts.

Here the storage is *columnar per type* — Litwin's stored/inherited
relation layout applied at the instance level:

* :class:`TypeStore` — one store per type, holding a **column table**: one
  Python list (column) per declared attribute, plus a **slot-index map**
  from attribute name to column index.  The layout is compiled from the
  type's :class:`~repro.core.resolution.ResolutionPlan` (the plan already
  knows every member; ``MemberEntry.slot`` is the column index), so the
  plan remains the single layout authority.
* Objects hold a **row index** into the columns (``DBObject._row``).  A
  cell holds :data:`UNSET` when the object has no local value — exactly
  the old dict-miss.
* **Epoch lifecycle**: the store records the schema epoch of its layout.
  On a schema-epoch bump the layout is recompiled lazily on next access
  (:meth:`TypeStore.refresh`); live objects migrate in place because
  columns move *by name* — values survive, and names that left the
  declared layout keep their columns (matching dict semantics, where a
  stored value outlives schema evolution).
* **Dynamic attributes** (types with ``allow_dynamic``) and values of
  deleted objects live in a per-object ``_overflow`` dict — the escape
  hatch for everything without a declared slot.
* :class:`AttrsView` — a ``MutableMapping`` with the exact raw-dict
  protocol of the old ``obj._attrs``: reads and writes touch storage only,
  with **no validation, no events, no epoch bumps**.  Transaction undo
  logs, version revert and merge apply keep writing ``obj._attrs[...]``
  unchanged; they manage epochs/events themselves.

Row recycling: deleting an object spills its non-UNSET cells into the
object's overflow dict and releases the row to a free list — a deleted
object keeps reporting its last local values (as dicts did), while the
column table stays dense for the batch executor.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, MutableMapping

from . import resolution as _resolution
from .interning import intern_name

__all__ = ["UNSET", "TypeStore", "AttrsView", "store_for"]

#: Race-sanitizer guard (:mod:`repro.obs.race`): ``None`` when dark, the
#: active sanitizer while enabled.  Call sites pay one global load + branch
#: when dark — the slowlog guard idiom.
TSAN: Any = None


class _UnsetType:
    """Sentinel for "no local value in this cell" (never leaks to users)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return "<UNSET>"


#: The one cell sentinel.  Identity-compared everywhere (``is UNSET``).
UNSET: Any = _UnsetType()


class TypeStore:
    """The column table of one type: slot arrays + slot-index map."""

    __slots__ = ("type", "epoch", "names", "slot_of", "columns", "free", "capacity")

    def __init__(self, type_: Any, plan: Any) -> None:
        self.type = type_
        #: Schema epoch of the current layout; checked (one integer
        #: compare) on every access, refreshed lazily when stale.
        self.epoch: int = plan.schema_epoch
        names: List[str] = [intern_name(n) for n in plan.attribute_names]
        #: Column index -> attribute name (slot order of the plan).
        self.names = names
        #: Attribute name -> column index.  Interned keys: probes with
        #: parsed-query identifiers short-circuit on identity.
        self.slot_of: Dict[str, int] = {n: i for i, n in enumerate(names)}
        #: One column (Python list) per slot; cells default to UNSET.
        self.columns: List[List[Any]] = [[] for _ in names]
        self.free: List[int] = []
        self.capacity = 0

    # -- row lifecycle -------------------------------------------------------

    def alloc(self) -> int:
        """A fresh (or recycled) row with every cell UNSET."""
        san = TSAN
        if san is not None:
            san.write(("store", id(self)), label=f"store:{self.type.name}")
        free = self.free
        if free:
            return free.pop()
        row = self.capacity
        self.capacity = row + 1
        for column in self.columns:
            column.append(UNSET)
        return row

    def spill_row(self, row: int) -> Dict[str, Any]:
        """Release ``row``, returning its live cells ``{name: value}``.

        Called on object deletion: the values move to the object's
        overflow dict so deleted objects keep reporting their last local
        state, while the row is recycled for new objects.
        """
        san = TSAN
        if san is not None:
            san.write(("store", id(self)), label=f"store:{self.type.name}")
        spilled: Dict[str, Any] = {}
        for name, column in zip(self.names, self.columns):
            value = column[row]
            if value is not UNSET:
                spilled[name] = value
                column[row] = UNSET
        self.free.append(row)
        return spilled

    # -- layout lifecycle ----------------------------------------------------

    def refresh(self, plan: Any) -> None:
        """Adopt ``plan``'s layout; live rows migrate in place, by name.

        Columns are *moved*, never copied: a name present in both layouts
        keeps its column list object (so per-object values survive with
        zero copying), new names get fresh UNSET columns, and names no
        longer declared keep trailing slots — a stored value outlives
        schema evolution exactly as it did in the dict regime.
        """
        if self.epoch == plan.schema_epoch:
            return
        san = TSAN
        if san is not None:
            san.write(("store", id(self)), label=f"store:{self.type.name}")
        old_slot_of = self.slot_of
        old_columns = self.columns
        names = [intern_name(n) for n in plan.attribute_names]
        known = set(names)
        for name in self.names:
            if name not in known:
                names.append(name)
                known.add(name)
        columns: List[List[Any]] = []
        for name in names:
            old_slot = old_slot_of.get(name)
            if old_slot is None:
                columns.append([UNSET] * self.capacity)
            else:
                columns.append(old_columns[old_slot])
        self.names = names
        self.slot_of = {n: i for i, n in enumerate(names)}
        self.columns = columns
        self.epoch = plan.schema_epoch

    # -- introspection -------------------------------------------------------

    def live_rows(self) -> int:
        """Rows currently assigned to objects (capacity minus free list)."""
        return self.capacity - len(self.free)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<TypeStore {self.type.name} epoch={self.epoch} "
            f"slots={len(self.names)} rows={self.live_rows()}>"
        )


def store_for(type_: Any, obs: Any = None) -> TypeStore:
    """The current store of ``type_``, building/refreshing lazily.

    Steady state costs one attribute load and one integer compare (same
    contract as :func:`repro.core.resolution.plan_for`).
    """
    store = type_._store
    if store is None:
        store = TypeStore(type_, _resolution.plan_for(type_, obs))
        type_._store = store
    elif store.epoch != _resolution._SCHEMA_EPOCH:
        store.refresh(_resolution.plan_for(type_, obs))
    return store


class AttrsView(MutableMapping[str, Any]):
    """Raw mapping over one object's local storage (slots + overflow).

    This is the compatibility ``obj._attrs`` surface: plain-dict get /
    set / pop / contains / iter / len semantics with **no side effects**
    — no domain validation, no events, no epoch bumps.  The raw writers
    (transaction undo, version revert, merge apply, persistence restore)
    rely on exactly that and handle epochs/events themselves.
    """

    __slots__ = ("_obj",)

    def __init__(self, obj: Any) -> None:
        self._obj = obj

    def _store(self) -> TypeStore:
        obj = self._obj
        store = obj._store
        if store.epoch != _resolution._SCHEMA_EPOCH:
            store.refresh(_resolution.plan_for(obj.object_type))
        return store

    def __getitem__(self, name: str) -> Any:
        obj = self._obj
        row = obj._row
        if row >= 0:
            store = obj._store
            if store.epoch != _resolution._SCHEMA_EPOCH:
                store = self._store()
            slot = store.slot_of.get(name)
            if slot is not None:
                value = store.columns[slot][row]
                if value is not UNSET:
                    return value
                raise KeyError(name)
        overflow = obj._overflow
        if overflow is None:
            raise KeyError(name)
        return overflow[name]

    def __setitem__(self, name: str, value: Any) -> None:
        obj = self._obj
        san = TSAN
        if san is not None:
            san.write(("cell", obj.surrogate, name), label=f"cell:{name}")
        row = obj._row
        if row >= 0:
            store = obj._store
            if store.epoch != _resolution._SCHEMA_EPOCH:
                store = self._store()
            slot = store.slot_of.get(name)
            if slot is not None:
                store.columns[slot][row] = value
                return
        overflow = obj._overflow
        if overflow is None:
            overflow = obj._overflow = {}
        overflow[name] = value

    def __delitem__(self, name: str) -> None:
        obj = self._obj
        san = TSAN
        if san is not None:
            san.write(("cell", obj.surrogate, name), label=f"cell:{name}")
        row = obj._row
        if row >= 0:
            store = self._store()
            slot = store.slot_of.get(name)
            if slot is not None:
                column = store.columns[slot]
                if column[row] is UNSET:
                    raise KeyError(name)
                column[row] = UNSET
                return
        overflow = obj._overflow
        if overflow is None:
            raise KeyError(name)
        del overflow[name]

    def __contains__(self, name: object) -> bool:
        obj = self._obj
        row = obj._row
        if row >= 0 and isinstance(name, str):
            store = self._store()
            slot = store.slot_of.get(name)
            if slot is not None:
                return store.columns[slot][row] is not UNSET
        overflow = obj._overflow
        return overflow is not None and name in overflow

    def __iter__(self) -> Iterator[str]:
        obj = self._obj
        row = obj._row
        if row >= 0:
            store = self._store()
            for name, column in zip(store.names, store.columns):
                if column[row] is not UNSET:
                    yield name
        overflow = obj._overflow
        if overflow is not None:
            yield from overflow

    def __len__(self) -> int:
        count = 0
        for _ in self:
            count += 1
        return count

    def to_dict(self) -> Dict[str, Any]:
        """Materialise as a plain dict (slot order, then overflow)."""
        obj = self._obj
        row = obj._row
        out: Dict[str, Any] = {}
        if row >= 0:
            store = self._store()
            for name, column in zip(store.names, store.columns):
                value = column[row]
                if value is not UNSET:
                    out[name] = value
        overflow = obj._overflow
        if overflow is not None:
            out.update(overflow)
        return out

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AttrsView):
            return self.to_dict() == other.to_dict()
        if isinstance(other, dict):
            return self.to_dict() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = None  # type: ignore[assignment]  # mutable mapping

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"AttrsView({self.to_dict()!r})"
