"""E19 — slotted storage engine: compiled slot programs vs the tree walk.

A parts library at 10k/50k objects with two value constraints, three
workloads, each run in both engine modes:

* unindexed **equality scan** (``Weight = 5``, ~1% selectivity);
* unindexed **range scan** (``Weight > 90``, ~6% selectivity);
* the **constraint sweep** over every live object
  (:func:`repro.engine.integrity.sweep_constraints`).

``compiled=True`` is the slotted engine: predicates and constraints
compile once per (expression, type, schema epoch) into generated batch
scans over the type's column store.  ``compiled=False`` forces the
tree-walking interpreter — the dict-era evaluation path, kept callable as
the oracle.  Value indexes are off throughout: this experiment measures
raw scan machinery, not access-path selection (that is E15).

The acceptance shape: at 50k objects the compiled equality scan, range
scan and constraint sweep each beat the tree walk by ≥10×.
"""

import pytest

from repro.core.domains import ANY
from repro.engine import Database
from repro.engine.integrity import sweep_constraints
from repro.query.executor import run_query

SIZES = [10_000, 50_000]

EQ_QUERY = "select * from Parts where Weight = 5"
RANGE_QUERY = "select * from Parts where Weight > 90"

_cache = {}


def parts_db(n):
    """A cached n-part library, no value indexes, two value constraints."""
    if n not in _cache:
        db = Database(f"e19-{n}")
        db.indexes.auto = False
        db.catalog.define_object_type(
            "Part",
            attributes={"Serial": ANY, "Weight": ANY, "Category": ANY},
            constraints=["Weight >= 0", "Serial >= 0"],
        )
        db.create_class("Parts", "Part")
        categories = max(1, n // 100)
        for i in range(n):
            db.create_object(
                "Part",
                class_name="Parts",
                Serial=i,
                Weight=i % 97,
                Category=f"cat_{i % categories}",
            )
        # Warm the compiled programs and the parse cache so the benchmark
        # measures steady-state scans, not the one-off compilation.
        run_query(db, EQ_QUERY, compiled=True)
        run_query(db, RANGE_QUERY, compiled=True)
        sweep_constraints(db, compiled=True)
        _cache[n] = db
    return _cache[n]


class TestEqualityScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_eq_compiled(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(run_query, db, EQ_QUERY, compiled=True)
        assert len(result) == sum(1 for i in range(n) if i % 97 == 5)
        assert result.plan.access_path == "full-scan"

    @pytest.mark.parametrize("n", SIZES)
    def test_eq_tree_walk(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(run_query, db, EQ_QUERY, compiled=False)
        assert len(result) == sum(1 for i in range(n) if i % 97 == 5)
        assert result.plan.access_path == "full-scan"


class TestRangeScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_range_compiled(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(run_query, db, RANGE_QUERY, compiled=True)
        assert len(result) == sum(1 for i in range(n) if i % 97 > 90)

    @pytest.mark.parametrize("n", SIZES)
    def test_range_tree_walk(self, benchmark, n):
        db = parts_db(n)
        result = benchmark(run_query, db, RANGE_QUERY, compiled=False)
        assert len(result) == sum(1 for i in range(n) if i % 97 > 90)


class TestConstraintSweep:
    @pytest.mark.parametrize("n", SIZES)
    def test_sweep_compiled(self, benchmark, n):
        db = parts_db(n)
        violations = benchmark(sweep_constraints, db, compiled=True)
        assert violations == []

    @pytest.mark.parametrize("n", SIZES)
    def test_sweep_tree_walk(self, benchmark, n):
        db = parts_db(n)
        violations = benchmark(sweep_constraints, db, compiled=False)
        assert violations == []


class TestAcceptance:
    def test_compiled_beats_tree_walk_10x_at_50k(self):
        """The PR's acceptance gate, measured in-process (best of 5)."""
        from time import perf_counter

        db = parts_db(50_000)

        def best_of(fn, reps=5):
            best = float("inf")
            for _ in range(reps):
                started = perf_counter()
                fn()
                best = min(best, perf_counter() - started)
            return best

        for label, fast, slow in [
            ("eq", lambda: run_query(db, EQ_QUERY, compiled=True),
             lambda: run_query(db, EQ_QUERY, compiled=False)),
            ("range", lambda: run_query(db, RANGE_QUERY, compiled=True),
             lambda: run_query(db, RANGE_QUERY, compiled=False)),
            ("sweep", lambda: sweep_constraints(db, compiled=True),
             lambda: sweep_constraints(db, compiled=False)),
        ]:
            speedup = best_of(slow) / best_of(fast)
            # 7× in-test floor: the documented ≥10× holds on quiet runs
            # (see EXPERIMENTS.md); CI boxes get headroom against noise.
            assert speedup >= 7.0, f"{label}: only {speedup:.1f}x"


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    sizes = [2_000] if suite.quick else SIZES
    for n in sizes:

        @suite.case(f"eq_compiled[{n}]")
        def eq_compiled_case(n=n):
            db = parts_db(n)
            return lambda: run_query(db, EQ_QUERY, compiled=True)

        @suite.case(f"eq_tree_walk[{n}]")
        def eq_walk_case(n=n):
            db = parts_db(n)
            return lambda: run_query(db, EQ_QUERY, compiled=False)

        @suite.case(f"range_compiled[{n}]")
        def range_compiled_case(n=n):
            db = parts_db(n)
            return lambda: run_query(db, RANGE_QUERY, compiled=True)

        @suite.case(f"range_tree_walk[{n}]")
        def range_walk_case(n=n):
            db = parts_db(n)
            return lambda: run_query(db, RANGE_QUERY, compiled=False)

        @suite.case(f"sweep_compiled[{n}]")
        def sweep_compiled_case(n=n):
            db = parts_db(n)
            return lambda: sweep_constraints(db, compiled=True)

        @suite.case(f"sweep_tree_walk[{n}]")
        def sweep_walk_case(n=n):
            db = parts_db(n)
            return lambda: sweep_constraints(db, compiled=False)
