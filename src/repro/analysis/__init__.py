"""Static schema analysis: a rule-engine lint pass over DDL/schema graphs.

The analyzer predicts runtime failures *before* execution.  It accepts any
of the engine's schema representations:

* DDL source text (or a parsed :class:`~repro.ddl.ast.Schema`) — the rules
  see the defects the builder would reject, with source line numbers;
* a compiled :class:`~repro.engine.catalog.Catalog` — linting a schema the
  engine already accepted (diamonds, lock-order cycles, advisories);
* a live :class:`~repro.engine.database.Database` — adds the REP0xx
  runtime-integrity diagnostics and, given workload queries, the REP5xx
  index advisories.

Entry points::

    from repro.analysis import analyze, render_text, to_json, to_sarif
    findings = analyze(open("schema.ddl").read(), source_path="schema.ddl")
    print(render_text(findings))

``repro lint`` is the CLI face; :func:`verify_against_runtime` is the
differential harness that holds every *error* diagnostic to the standard
of an actual engine failure.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..ddl import ast as ddl_ast
from ..ddl.builder import SchemaBuilder
from ..ddl.parser import parse_schema_source
from ..engine.catalog import Catalog
from ..engine.database import Database
from ..errors import DDLSyntaxError, ExprSyntaxError
from .diagnostics import (
    ADVICE,
    Diagnostic,
    ERROR,
    RULES,
    RuleInfo,
    SEVERITIES,
    SourceLocation,
    WARNING,
    count_by_severity,
    filter_diagnostics,
    make,
    rule_info,
    severity_rank,
    sort_diagnostics,
)
from .emit import render_text, summary_line, to_json, to_sarif
from .model import SchemaModel, model_from_ast, model_from_catalog
from .rules import (
    diagnostics_from_violations,
    run_database_rules,
    run_model_rules,
    run_query_rules,
)
from .engine_lint import EngineLintResult, lint_engine, lint_source
from .lockorder import (
    LockOrderReport,
    analyze_lock_order,
    cycles_in_wait_edges,
    find_cycles,
)
from .verify import (
    Disagreement,
    EngineCheck,
    EngineVerifyReport,
    VerifyReport,
    verify_against_runtime,
    verify_engine_invariants,
)

__all__ = [
    "ERROR",
    "WARNING",
    "ADVICE",
    "SEVERITIES",
    "RULES",
    "RuleInfo",
    "Diagnostic",
    "SourceLocation",
    "SchemaModel",
    "analyze",
    "model_from_ast",
    "model_from_catalog",
    "run_model_rules",
    "run_database_rules",
    "run_query_rules",
    "diagnostics_from_violations",
    "filter_diagnostics",
    "sort_diagnostics",
    "count_by_severity",
    "severity_rank",
    "rule_info",
    "make",
    "render_text",
    "summary_line",
    "to_json",
    "to_sarif",
    "Disagreement",
    "VerifyReport",
    "verify_against_runtime",
    "EngineCheck",
    "EngineVerifyReport",
    "verify_engine_invariants",
    "EngineLintResult",
    "lint_engine",
    "lint_source",
    "LockOrderReport",
    "analyze_lock_order",
    "cycles_in_wait_edges",
    "find_cycles",
]

Subject = Union[str, ddl_ast.Schema, Catalog, Database]


def analyze(
    subject: Subject,
    *,
    queries: Optional[Sequence[str]] = None,
    source_path: Optional[str] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Run every applicable rule over ``subject``; sorted diagnostics.

    For DDL/AST inputs the REP100 safety net also *builds* the schema once
    — but only when the specific rules found no errors, so the net catches
    exactly the failures no rule predicted.
    """
    findings: List[Diagnostic] = []

    if isinstance(subject, str):
        try:
            subject = parse_schema_source(subject)
        except (DDLSyntaxError, ExprSyntaxError) as exc:
            line = getattr(exc, "line", -1)
            findings.append(make(
                "REP100",
                f"schema does not parse: {exc}",
                location=SourceLocation(
                    source_path, line if line and line > 0 else None
                ),
            ))
            return sort_diagnostics(filter_diagnostics(findings, select, ignore))

    if isinstance(subject, ddl_ast.Schema):
        model = model_from_ast(subject, source_path)
        findings.extend(run_model_rules(model))
        if not any(d.severity == ERROR for d in findings):
            try:
                SchemaBuilder(Catalog()).build(subject)
            except Exception as exc:  # noqa: BLE001 — the net reports anything
                findings.append(make(
                    "REP100",
                    f"schema fails to build: {type(exc).__name__}: {exc}",
                    location=SourceLocation(source_path, None),
                ))
    elif isinstance(subject, Catalog):
        findings.extend(run_model_rules(model_from_catalog(subject)))
    elif isinstance(subject, Database):
        findings.extend(run_model_rules(model_from_catalog(subject.catalog)))
        findings.extend(run_database_rules(subject))
        if queries:
            findings.extend(run_query_rules(subject, queries))
        obs = subject.obs
        if obs is not None:
            obs.metrics.counter("lint.runs").inc()
            obs.metrics.counter("lint.findings").inc(len(findings))
            if obs.audit is not None:
                obs.audit.record(
                    "lint.run",
                    None,
                    findings=len(findings),
                    errors=sum(1 for d in findings if d.severity == ERROR),
                )
    else:
        raise TypeError(
            f"analyze() wants DDL text, a Schema, a Catalog or a Database; "
            f"got {type(subject).__name__}"
        )

    return sort_diagnostics(filter_diagnostics(findings, select, ignore))
