"""Database integrity checker.

Verifies the structural invariants the engine maintains, independent of the
type-level constraints (:meth:`DBObject.check_constraints` handles those):

* registry: every tracked object is live, knows its database, and its
  surrogate matches its registry key;
* containment: parent/container pointers and container membership agree,
  and no object is in two containers;
* relationships: every participant back-references the relationship, and
  no live relationship references a deleted participant;
* inheritance links: both endpoints register the link, permeable members
  are still effective members of the transmitter's type, no object-level
  cycles;
* classes: every extent member is tracked and type-conformant.

The checker never mutates; it returns a list of :class:`Violation` records
so tests can inject corruption and assert precise findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set, Tuple

from ..core.constraints import ExprConstraint
from ..core.objects import DBObject, RelationshipObject
from ..core.surrogate import Surrogate
from ..errors import ConstraintViolation, ExprEvaluationError
from ..expr.ast import Binary, Node
from ..expr.compile import compile_predicate, compiled_for
from .database import Database

__all__ = [
    "Violation",
    "VIOLATION_CODES",
    "check_integrity",
    "assert_integrity",
    "sweep_constraints",
]

#: Stable diagnostic code per violation kind — the REP0xx namespace of the
#: rule catalog (repro.analysis.diagnostics registers the metadata).
VIOLATION_CODES = {
    "registry": "REP001",
    "containment": "REP002",
    "relationship": "REP003",
    "inheritance": "REP004",
    "class": "REP005",
    "constraint": "REP006",
}


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    kind: str
    subject: Any
    detail: str

    @property
    def code(self) -> str:
        """The stable REP0xx diagnostic code for this kind of violation."""
        return VIOLATION_CODES.get(self.kind, "REP001")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.kind}] {self.subject!r}: {self.detail}"


def check_integrity(db: Database) -> List[Violation]:
    """Run every structural check; returns all violations found."""
    violations: List[Violation] = []
    objects = db.objects()
    tracked: Set[Surrogate] = {obj.surrogate for obj in objects}

    for obj in objects:
        _check_registry(db, obj, violations)
        if obj.deleted:
            # The registry violation is recorded; deeper accessors would
            # raise ObjectDeletedError, so stop here for this object.
            continue
        _check_containment(obj, tracked, violations)
        if isinstance(obj, RelationshipObject):
            _check_relationship(obj, violations)
        _check_links(obj, violations)

    _check_classes(db, tracked, violations)
    _check_containment_uniqueness(objects, violations)
    return violations


#: Per-type fused AND-conjunction of its expression constraints, cached by
#: constraint identity so the compiled-program cache (keyed on node
#: identity) hits across sweeps.  Revalidated against the constraint list.
_FUSED: Dict[int, Tuple[Tuple[int, ...], Node]] = {}


def _fused_constraint_node(type_: Any, exprs: List[ExprConstraint]) -> Node:
    ids = tuple(id(c) for c in exprs)
    hit = _FUSED.get(id(type_))
    if hit is not None and hit[0] == ids:
        return hit[1]
    node = exprs[0].node
    for constraint in exprs[1:]:
        node = Binary("and", node, constraint.node)
    _FUSED[id(type_)] = (ids, node)
    return node


def sweep_constraints(db: Database, compiled: bool = True) -> List[Violation]:
    """Batched sweep of every type-level value constraint.

    Live objects are grouped by concrete type; each type's expression
    constraints bind to their compiled slot program **once**, then run
    over the whole group — the constraint-side counterpart of the batch
    query executor.  Violations are *collected* (kind ``constraint``,
    code REP006), not raised, so diagnostics can report them all.

    ``compiled=False`` forces the tree-walking oracle
    (:meth:`ExprConstraint.naive_holds`); results are identical — the
    equivalence is part of the storage test suite.

    Structural restrictions (subrel ``where`` clauses) stay with
    :meth:`DBObject.check_constraints`: they carry binder scopes the slot
    program cannot see.
    """
    obs = getattr(db, "obs", None)
    violations: List[Violation] = []
    for type_, members in db.indexes.type_groups():
        if not type_.constraints:
            continue
        suspects = members
        if compiled:
            exprs = [c for c in type_.constraints if isinstance(c, ExprConstraint)]
            if exprs:
                # Phase 1: one batched scan of the fused AND-conjunction of
                # the type's expression constraints.  Objects the scan
                # passes satisfy every constraint and need no per-constraint
                # work — the common all-clean sweep is a single generated
                # loop per type.  Failures (and any evaluation error, which
                # aborts the scan) drop to the per-constraint phase below
                # for attribution.
                fused = _fused_constraint_node(type_, exprs)
                try:
                    outcome = compiled_for(fused, type_, obs).scan(members)
                except ExprEvaluationError:
                    outcome = None
                if outcome is not None:
                    passed = outcome[1]
                    if len(passed) == len(members):
                        suspects = []
                    else:
                        # Order-preserving difference: the scan keeps
                        # member order, so one forward merge suffices.
                        suspects = []
                        position = 0
                        for obj in members:
                            if position < len(passed) and passed[position] is obj:
                                position += 1
                            else:
                                suspects.append(obj)
        for constraint in type_.constraints:
            if compiled and isinstance(constraint, ExprConstraint):
                if not suspects:
                    continue
                predicate = compile_predicate(constraint.node, type_, obs)
                for obj in suspects:
                    try:
                        # A live object without a row (defensive; deleted
                        # objects never reach the buckets) gets the oracle.
                        ok = predicate(obj) if obj._row >= 0 else (
                            constraint.naive_holds(obj)
                        )
                    except ExprEvaluationError as exc:
                        violations.append(Violation(
                            "constraint",
                            obj,
                            f"constraint {constraint.source!r} failed to "
                            f"evaluate on {obj!r}: {exc}",
                        ))
                        continue
                    if not ok:
                        violations.append(Violation(
                            "constraint",
                            obj,
                            f"constraint {constraint.source!r} violated",
                        ))
            else:
                for obj in members:
                    try:
                        if isinstance(constraint, ExprConstraint):
                            ok = constraint.naive_holds(obj)
                        else:
                            ok = constraint.holds(obj)
                    except ConstraintViolation as exc:
                        violations.append(Violation(
                            "constraint", obj, str(exc)
                        ))
                        continue
                    if not ok:
                        violations.append(Violation(
                            "constraint",
                            obj,
                            f"constraint {constraint.source!r} violated",
                        ))
    return violations


def assert_integrity(db: Database) -> None:
    """Raise AssertionError listing violations, for test harnesses."""
    violations = check_integrity(db)
    if violations:
        raise AssertionError(
            "integrity violations:\n" + "\n".join(str(v) for v in violations)
        )


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------

def _check_registry(db: Database, obj: DBObject, out: List[Violation]) -> None:
    if obj.deleted:
        out.append(Violation("registry", obj, "deleted object still tracked"))
    if obj.database is not db:
        out.append(Violation("registry", obj, "object does not reference its database"))
    if db.get(obj.surrogate) is not obj:
        out.append(Violation("registry", obj, "registry key does not map back"))


def _check_containment(obj: DBObject, tracked: Set[Surrogate], out: List[Violation]) -> None:
    container = obj._container
    if container is None and isinstance(obj, RelationshipObject):
        container = obj._container_rel
    if (obj.parent is None) != (container is None):
        out.append(
            Violation("containment", obj, "parent and container pointers disagree")
        )
    if container is not None:
        if container.owner is not obj.parent:
            out.append(
                Violation("containment", obj, "container owner is not the parent")
            )
        if obj.surrogate not in container._members:
            out.append(
                Violation("containment", obj, "not a member of its own container")
            )
    for name in obj.subclass_names():
        for member in obj.subclass(name):
            if member.parent is not obj:
                out.append(
                    Violation(
                        "containment",
                        member,
                        f"member of {obj!r}.{name} has wrong parent",
                    )
                )
            if member.deleted:
                out.append(
                    Violation(
                        "containment", member, f"deleted member still in {name!r}"
                    )
                )


def _check_containment_uniqueness(objects: List[DBObject], out: List[Violation]) -> None:
    membership: dict = {}
    for obj in objects:
        if obj.deleted:
            continue
        for name in obj.subclass_names():
            for member in obj.subclass(name):
                previous = membership.get(member.surrogate)
                if previous is not None and previous is not obj:
                    out.append(
                        Violation(
                            "containment",
                            member,
                            "object is a member of two complex objects",
                        )
                    )
                membership[member.surrogate] = obj


def _check_relationship(rel: RelationshipObject, out: List[Violation]) -> None:
    for participant in rel.participant_objects():
        if participant.deleted:
            out.append(
                Violation(
                    "relationship", rel, f"references deleted {participant!r}"
                )
            )
        elif rel not in participant._participating:
            out.append(
                Violation(
                    "relationship",
                    rel,
                    f"participant {participant!r} lacks the back-reference",
                )
            )


def _check_links(obj: DBObject, out: List[Violation]) -> None:
    for link in obj.inheritance_links:
        if link.inheritor is not obj:
            out.append(Violation("inheritance", obj, "link inheritor mismatch"))
        if link not in link.transmitter._links_as_transmitter:
            out.append(
                Violation(
                    "inheritance",
                    obj,
                    f"transmitter {link.transmitter!r} does not register the link",
                )
            )
        if link.transmitter.deleted:
            out.append(
                Violation("inheritance", obj, "bound to a deleted transmitter")
            )
        for member in link.rel_type.inheriting:
            if link.transmitter.object_type.member_kind(member) is None:
                out.append(
                    Violation(
                        "inheritance",
                        obj,
                        f"permeable member {member!r} vanished from the "
                        f"transmitter type",
                    )
                )
        _check_no_cycle(obj, out)
    for link in obj.inheritor_links:
        if link.transmitter is not obj:
            out.append(Violation("inheritance", obj, "link transmitter mismatch"))
        if obj.deleted:
            out.append(
                Violation("inheritance", obj, "deleted transmitter still linked")
            )


def _check_no_cycle(obj: DBObject, out: List[Violation]) -> None:
    seen: Set[Surrogate] = set()
    current = obj
    while True:
        links = current.inheritance_links
        if not links:
            return
        current = links[0].transmitter
        if current.surrogate == obj.surrogate or current.surrogate in seen:
            out.append(Violation("inheritance", obj, "inheritance cycle detected"))
            return
        seen.add(current.surrogate)


def _check_classes(db: Database, tracked: Set[Surrogate], out: List[Violation]) -> None:
    for name, extent in db.classes().items():
        for member in extent:
            if member.surrogate not in tracked:
                out.append(
                    Violation("class", member, f"member of {name!r} is not tracked")
                )
            if member.deleted:
                out.append(
                    Violation("class", member, f"deleted member still in {name!r}")
                )
            if not member.object_type.conforms_to(extent.object_type):
                out.append(
                    Violation(
                        "class",
                        member,
                        f"type {member.object_type.name!r} does not conform to "
                        f"class {name!r}",
                    )
                )
