"""Cooperative transaction groups.

§6 opens by noting that CAD/CAM databases "need advanced transaction
mechanisms to deal with the specific requirements of this application
area", citing the group/design-transaction models ([KSUW85], [KLMP84],
[BaKK85]).  The minimal such mechanism the composite-object story needs is
the *cooperative group*: several transactions belonging to one design team
share their locks — they never conflict with each other, while the group as
a whole behaves like one long transaction towards outsiders.

Usage::

    tm = TransactionManager(db)
    team = TransactionGroup(tm, "chip-team")
    alice = team.begin(user="alice")
    bob   = team.begin(user="bob")
    alice.write(part)       # bob.read(part) succeeds: same group
    ...
    team.end()              # releases every remaining group lock
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from ..errors import TransactionError
from .transactions import Transaction, TransactionManager

__all__ = ["TransactionGroup"]

_GROUP_IDS = itertools.count(1)


class TransactionGroup:
    """A set of transactions whose locks do not conflict with each other."""

    def __init__(self, manager: TransactionManager, name: str = ""):
        self.manager = manager
        self.group_id = next(_GROUP_IDS)
        self.name = name or f"group-{self.group_id}"
        self.members: List[Transaction] = []
        self._ended = False

    def begin(self, user: Optional[str] = None, persistent: bool = False) -> Transaction:
        """Start a member transaction inside the group."""
        if self._ended:
            raise TransactionError(f"group {self.name!r} has ended")
        txn = self.manager.begin(user=user, persistent=persistent)
        self.manager.lock_table.set_group(txn.id, self.group_id)
        self.members.append(txn)
        return txn

    def join(self, txn: Transaction) -> Transaction:
        """Add an existing transaction to the group.

        Joining is only safe while the transaction holds no locks —
        otherwise previously granted locks could retroactively stop
        conflicting with group members they were checked against.
        """
        if self._ended:
            raise TransactionError(f"group {self.name!r} has ended")
        if self.manager.lock_table.held_by(txn.id):
            raise TransactionError(
                f"transaction {txn.id} already holds locks and cannot "
                f"join a group"
            )
        self.manager.lock_table.set_group(txn.id, self.group_id)
        self.members.append(txn)
        return txn

    def active_members(self) -> List[Transaction]:
        return [txn for txn in self.members if txn.status == Transaction.ACTIVE]

    def commit_all(self) -> None:
        """Commit every active member, then end the group."""
        for txn in self.active_members():
            txn.commit()
        self.end()

    def abort_all(self) -> None:
        """Abort every active member, then end the group."""
        for txn in self.active_members():
            txn.abort()
        self.end()

    def end(self) -> None:
        """Dissolve the group: release all member locks still held.

        Persistent members' checkout locks are released too — the group is
        the checkout unit.
        """
        if self._ended:
            return
        if self.active_members():
            raise TransactionError(
                f"group {self.name!r} still has active members; commit or "
                f"abort them first"
            )
        for txn in self.members:
            self.manager.lock_table.release_all(txn.id)
            self.manager.lock_table.set_group(txn.id, None)
        self._ended = True

    @property
    def ended(self) -> bool:
        return self._ended

    def __repr__(self) -> str:
        state = "ended" if self._ended else "active"
        return f"<TransactionGroup {self.name} members={len(self.members)} {state}>"
