"""Tests for interface-change impact analysis (repro.consistency.impact)."""

import pytest

from repro.composition import add_component
from repro.consistency import (
    affected_types,
    change_impact,
    extension_impact,
)
from repro.core import INTEGER, ObjectType
from repro.workloads import gate_database, make_implementation, make_interface


@pytest.fixture
def db():
    return gate_database("impact")


class TestChangeImpact:
    def test_isolated_change(self, db):
        iface = make_interface(db)
        report = change_impact(iface, "Length")
        assert report.is_isolated
        assert "affects 0" in report.summary()

    def test_direct_implementations_affected(self, db):
        iface = make_interface(db)
        impls = [make_implementation(db, iface) for _ in range(3)]
        report = change_impact(iface, "Length")
        assert {obj.surrogate for obj, _ in report.affected} == {
            impl.surrogate for impl in impls
        }
        # Each affected object is reached by a one-link chain.
        assert all(len(chain) == 1 for _, chain in report.affected)

    def test_non_permeable_member_affects_nobody(self, db):
        # Function is not in AllOf_GateInterface's inheriting list — and is
        # not even an interface member; a change to an implementation's own
        # Function concerns no other object.
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        assert change_impact(impl, "Function").is_isolated

    def test_transitive_impact_through_hierarchy(self, db):
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        report = change_impact(top, "Pins")
        affected = {obj.surrogate for obj, _ in report.affected}
        assert iface.surrogate in affected and impl.surrogate in affected
        chains = {obj.surrogate: chain for obj, chain in report.affected}
        assert len(chains[impl.surrogate]) == 2  # two hops from the top

    def test_member_selectivity_cuts_the_chain(self, db):
        # Length is not permeable through AllOf_GateInterface_I, so a
        # Length change at the mid level reaches implementations, while the
        # top level is never the subject here; and a change of Pins at mid
        # level reaches implementations but a change of Length at top level
        # reaches nobody (top has no Length at all — schema-level guard).
        top = db.create_object("GateInterface_I")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        report = change_impact(iface, "Length")
        assert [obj.surrogate for obj, _ in report.affected] == [impl.surrogate]

    def test_composites_enclosing_affected_slots_reported(self, db):
        iface = make_interface(db)
        composite = make_implementation(db, make_interface(db))
        slot = add_component(composite, "SubGates", iface, GateLocation=(0, 0))
        report = change_impact(iface, "Width")
        assert [obj.surrogate for obj, _ in report.affected] == [slot.surrogate]
        assert [c.surrogate for c in report.composites] == [composite.surrogate]

    def test_shared_component_reports_each_composite_once(self, db):
        iface = make_interface(db)
        composites = [make_implementation(db, make_interface(db)) for _ in range(2)]
        for composite in composites:
            add_component(composite, "SubGates", iface, GateLocation=(0, 0))
        report = change_impact(iface, "Width")
        assert len(report.affected) == 2
        assert {c.surrogate for c in report.composites} == {
            c.surrogate for c in composites
        }


class TestTypeLevelImpact:
    def test_affected_types_closure(self, db):
        catalog = db.catalog
        interface_i = catalog.object_type("GateInterface_I")
        types = affected_types(interface_i, "Pins")
        names = {t.name for t in types}
        assert "GateInterface" in names
        assert "GateImplementation" in names  # transitively, via AllOf_GateInterface

    def test_affected_types_respects_permeability(self, db):
        catalog = db.catalog
        iface_type = catalog.object_type("GateInterface")
        # Width flows through AllOf_GateInterface but not through a narrow
        # relationship someone else might define.
        types = affected_types(iface_type, "Width")
        assert any(t.name == "GateImplementation" for t in types)

    def test_extension_impact_lists_candidates(self, db):
        catalog = db.catalog
        iface_type = catalog.object_type("GateInterface")
        candidates = extension_impact(iface_type, "Voltage")
        names = {rel.name for rel in candidates}
        assert "AllOf_GateInterface" in names

    def test_extension_impact_excludes_already_permeable(self, db):
        catalog = db.catalog
        iface_type = catalog.object_type("GateInterface")
        candidates = extension_impact(iface_type, "Length")
        assert all(not rel.is_permeable("Length") for rel in candidates)
        assert "AllOf_GateInterface" not in {rel.name for rel in candidates}

    def test_fresh_type_has_no_relationships(self):
        lonely = ObjectType("Lonely", attributes={"X": INTEGER})
        assert affected_types(lonely, "X") == []
        assert extension_impact(lonely, "Y") == []
