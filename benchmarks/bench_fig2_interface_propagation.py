"""E2 — Figure 2: interface-update propagation to N implementations.

The claim quantified: with value inheritance, a transmitter update costs
O(1) regardless of how many implementations exist (they read through),
while a copy-based regime must re-materialise every copy — O(N·size).
Read-through adds a small constant per access.
"""

import pytest

from repro.composition import clone_object, stale_members
from repro.workloads import gate_database, make_implementation, make_interface

FANOUTS = [1, 10, 100]


class TestInterfaceUpdate:
    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_with_inheritance(self, benchmark, n_impls):
        """One attribute write, regardless of inheritor count."""
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        for _ in range(n_impls):
            make_implementation(db, iface)
        counter = iter(range(10**9))

        def update():
            iface.set_attribute("Length", 10 + next(counter) % 50)

        benchmark(update)

    @pytest.mark.parametrize("n_impls", FANOUTS)
    def test_update_with_copies(self, benchmark, n_impls):
        """The copy baseline: the update must be pushed into every copy."""
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        copies = [clone_object(iface) for _ in range(n_impls)]
        counter = iter(range(10**9))

        def update_and_refresh():
            value = 10 + next(counter) % 50
            iface.set_attribute("Length", value)
            for copy in copies:
                # Re-materialise the changed attribute in each copy.
                copy._attrs["Length"] = value

        benchmark(update_and_refresh)


class TestReadThrough:
    def test_local_attribute_read(self, benchmark):
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        benchmark(iface.get_member, "Length")

    def test_inherited_attribute_read(self, benchmark):
        """One delegation hop: the price of always-fresh data."""
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        assert impl.get_member("Length") == iface.get_member("Length")
        benchmark(impl.get_member, "Length")

    def test_inherited_subclass_read(self, benchmark):
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        benchmark(impl.get_member, "Pins")


class TestStalenessDetection:
    @pytest.mark.parametrize("n_impls", [10, 100])
    def test_copy_staleness_scan(self, benchmark, n_impls):
        """What the copy regime must *additionally* run to regain the
        freshness inheritance gives for free."""
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        copies = [clone_object(iface) for _ in range(n_impls)]
        iface.set_attribute("Length", 99)

        def scan():
            return sum(1 for copy in copies if stale_members(copy, iface))

        assert scan() == n_impls
        benchmark(scan)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    fanout = 10 if suite.quick else 100

    @suite.case(f"update_with_inheritance[{fanout}]")
    def inherit_case():
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        for _ in range(fanout):
            make_implementation(db, iface)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case(f"update_with_copies[{fanout}]")
    def copy_case():
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        copies = [clone_object(iface) for _ in range(fanout)]
        counter = iter(range(10**9))

        def update_and_refresh():
            value = 10 + next(counter) % 50
            iface.set_attribute("Length", value)
            for copy in copies:
                copy._attrs["Length"] = value

        return update_and_refresh

    @suite.case("local_read")
    def local_case():
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        return lambda: iface.get_member("Length")

    @suite.case("inherited_read")
    def inherited_case():
        db = gate_database("fig2-bench")
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        assert impl.get_member("Length") == iface.get_member("Length")
        return lambda: impl.get_member("Length")
