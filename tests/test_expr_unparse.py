"""Unparse coverage for every expression node kind (repro.expr.ast)."""


from repro.expr import EvalContext, parse_constraints, parse_expression
from repro.expr.ast import Name, Path


class Obj:
    def __init__(self, **members):
        self._members = members

    def get_member(self, name):
        return self._members[name]


def round_trip(source, root):
    node = parse_expression(source)
    again = parse_expression(node.unparse())
    assert node.evaluate(EvalContext(root)) == again.evaluate(EvalContext(root))
    return node


class TestUnparseForms:
    def test_literals(self):
        assert parse_expression("1").unparse() == "1"
        assert parse_expression("1.5").unparse() == "1.5"
        assert parse_expression("'abc'").unparse() == "'abc'"
        assert parse_expression("true").unparse() == "true"
        assert parse_expression("false").unparse() == "false"

    def test_unary(self):
        assert parse_expression("-3").unparse() == "-3"
        assert parse_expression("not true").unparse() == "not true"

    def test_path(self):
        node = parse_expression("a.b.c")
        assert node.unparse() == "a.b.c"
        assert isinstance(node, Path)
        assert node.display_names() == ("a.b.c", "c")

    def test_membership_ops(self):
        root = Obj(Pins=[1, 2])
        round_trip("1 in Pins", root)
        round_trip("9 not in Pins", root)

    def test_aggregate_with_binder(self):
        # The #s in Bolt form unparsing keeps semantics.
        root = Obj(Bolt=[Obj(D=3)])
        node = round_trip("#s in Bolt = 1", root)

    def test_aggregate_with_where_and_binder(self):
        root = Obj(Bolt=[Obj(D=3), Obj(D=9)])
        node = round_trip("#s in Bolt = 1 where s.D > 5", root)

    def test_quantifier_with_multiple_binders(self):
        root = Obj(A=[Obj(V=1)], B=[Obj(V=1)])
        node = round_trip("for (x in A, y in B): x.V = y.V", root)
        assert node.unparse().startswith("for (x in A, y in B):")

    def test_constraint_list_unparse(self):
        nodes = parse_constraints("1 = 1; 2 = 2")
        assert [n.unparse() for n in nodes] == ["(1 = 1)", "(2 = 2)"]

    def test_arithmetic_parenthesisation(self):
        root = Obj()
        round_trip("1 + 2 * 3 - 4 / 2", root)
        round_trip("(1 + 2) % 2", root)

    def test_logical_connectives(self):
        root = Obj(A=1, B=2)
        round_trip("A = 1 and (B = 2 or not (A = 2))", root)

    def test_node_repr_contains_unparse(self):
        node = parse_expression("count(Pins)")
        assert "count(Pins)" in repr(node)


class TestPathEdgeCases:
    def test_path_over_record_value(self):
        from repro.core.domains import POINT

        root = Obj(Location=POINT.validate({"X": 4, "Y": 2}))
        node = parse_expression("Location.X = 4")
        assert node.evaluate(EvalContext(root))

    def test_missing_midpath_yields_false_comparison(self):
        root = Obj(A=Obj())
        assert not parse_expression("A.b.c = 1").evaluate(EvalContext(root))

    def test_name_display(self):
        assert Name("Pins").unparse() == "Pins"
