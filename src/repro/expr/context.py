"""Evaluation contexts and member resolution for constraint expressions.

Expressions are evaluated against a *root* object — a complex object, a
relationship object, or any value exposing ``get_member(name)``.  Name
resolution proceeds through

1. quantifier/binder bindings (innermost first),
2. members of the root object,
3. optionally, the bare identifier itself as a string literal, which is how
   enumeration labels like ``IN`` or ``AND`` appear in the paper's
   constraints without quoting.

Member access on a *collection* maps over the elements and flattens nested
collections, so the path ``SubGates.Pins`` yields all pins of all subgates,
exactly the semantics the paper's wiring constraints need.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import UnknownAttributeError

__all__ = [
    "MISSING",
    "EvalContext",
    "resolve_member",
    "is_collection",
    "as_collection",
]


class _Missing:
    """Sentinel for "name not resolvable"."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<MISSING>"

    def __bool__(self) -> bool:
        return False


MISSING = _Missing()


def is_collection(value: Any) -> bool:
    """True for list/tuple/set/frozenset — the collection shapes paths yield.

    Strings, mappings and record values are scalars for path purposes.
    """
    return isinstance(value, (list, tuple, set, frozenset))


def as_collection(value: Any) -> List[Any]:
    """Coerce ``value`` to a list: collections are listed, scalars wrapped."""
    if is_collection(value):
        return list(value)
    if value is MISSING or value is None:
        return []
    return [value]


def resolve_member(value: Any, name: str) -> Any:
    """Resolve member ``name`` on ``value``.

    Handles, in order: objects exposing ``get_member`` (the database object
    protocol), mappings / record values, plain attribute access, and
    collections (mapped element-wise with flattening).  Returns
    :data:`MISSING` when the member does not exist.
    """
    if is_collection(value):
        collected: List[Any] = []
        for element in value:
            member = resolve_member(element, name)
            if member is MISSING:
                continue
            if is_collection(member):
                collected.extend(member)
            else:
                collected.append(member)
        return collected
    getter = getattr(value, "get_member", None)
    if callable(getter):
        try:
            return getter(name)
        except (KeyError, UnknownAttributeError):
            return MISSING
    if isinstance(value, Mapping):
        return value[name] if name in value else MISSING
    if hasattr(value, name):
        return getattr(value, name)
    return MISSING


class EvalContext:
    """Binding environment for one expression evaluation.

    Parameters
    ----------
    root:
        The object whose members anchor unbound names.
    bindings:
        Mapping of binder names introduced by quantifiers or by the host
        (e.g. the DDL layer binds a relationship element under its subclass
        name when checking ``where`` clauses).
    unresolved_as_literal:
        When true (the default), an identifier that resolves nowhere
        evaluates to its own spelling — the paper writes enum labels and
        similar symbols unquoted (``Pins.InOut = IN``).
    """

    __slots__ = ("root", "bindings", "unresolved_as_literal", "parent",
                 "_root_getter")

    def __init__(
        self,
        root: Any,
        bindings: Optional[Dict[str, Any]] = None,
        unresolved_as_literal: bool = True,
        parent: Optional["EvalContext"] = None,
    ):
        self.root = root
        self.bindings = dict(bindings or {})
        self.unresolved_as_literal = unresolved_as_literal
        self.parent = parent
        # Bind the root's member protocol once per context, not per lookup
        # — expression evaluation resolves many names against one root.
        getter = getattr(root, "get_member", None)
        self._root_getter = getter if callable(getter) else None

    def child(self, bindings: Dict[str, Any]) -> "EvalContext":
        """A nested context with extra binder bindings (quantifier scope)."""
        return EvalContext(
            self.root,
            bindings,
            unresolved_as_literal=self.unresolved_as_literal,
            parent=self,
        )

    def lookup(self, name: str) -> Any:
        """Resolve ``name`` through bindings then root members.

        Returns :data:`MISSING` when nothing matches.
        """
        context: Optional[EvalContext] = self
        while context is not None:
            if name in context.bindings:
                return context.bindings[name]
            context = context.parent
        getter = self._root_getter
        if getter is not None:
            try:
                return getter(name)
            except (KeyError, UnknownAttributeError):
                return MISSING
        return resolve_member(self.root, name)


#: Signature of pluggable root resolvers (reserved for host extensions).
MemberResolver = Callable[[Any, str], Any]
