"""Update-event bus.

The paper relies on change notification twice: §2/§4.1 (the inheritance
relationship's attributes inform users about transmitter changes, together
with "trigger mechanisms") and §6 (conflict identification through explicit
relationships).  The event bus is the substrate both the consistency
subsystem (:mod:`repro.consistency`) and the lock manager build on.

Event kinds emitted by the core layer:

========================  =====================================================
kind                      data
========================  =====================================================
``attribute_updated``     ``attribute``, ``old``, ``new``
``attribute_restored``    ``attribute`` (direct ``_attrs`` restore: txn
                          abort, version revert-and-reject, merge apply)
``object_deleted``        —
``subobject_added``       ``subclass``, ``member``
``subobject_removed``     ``subclass``, ``member``
``relationship_created``  ``subrel``, ``relationship``
``relationship_removed``  ``subrel``, ``relationship``
``inheritor_bound``       ``rel_type``, ``transmitter``, ``link``
``inheritor_unbound``     ``rel_type``, ``transmitter``
``object_created``        ``class_name`` (emitted by the database facade)
========================  =====================================================

Every event carries ``subject`` — the object it happened to.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Event", "EventBus", "Subscription"]


@dataclass(frozen=True)
class Event:
    """One change notification."""

    kind: str
    subject: Any
    data: Dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def __getattr__(self, name: str) -> Any:
        # Dunder lookups (``__deepcopy__``, ``__getstate__``, …) come from
        # copy/pickle/inspect machinery probing for optional protocols;
        # answering them out of ``data`` would corrupt those protocols, so
        # refuse immediately without touching the payload.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None


Handler = Callable[[Event], None]


@dataclass(frozen=True)
class Subscription:
    """Token returned by :meth:`EventBus.subscribe`; pass to unsubscribe."""

    kind: str
    token: int


class EventBus:
    """Synchronous publish/subscribe hub.

    Handlers run inline in emission order; a handler registered for the
    wildcard kind ``"*"`` receives every event.  Handler exceptions
    propagate to the mutating call — consistency hooks are part of the
    update, exactly the semantics triggers need.
    """

    WILDCARD = "*"

    def __init__(self, record: bool = False, history_limit: int = 10_000):
        self._handlers: Dict[str, Dict[int, Handler]] = {}
        self._tokens = itertools.count(1)
        self._seq = itertools.count(1)
        self.record = record
        self.history_limit = history_limit
        self.history: List[Event] = []

    def subscribe(self, kind: str, handler: Handler) -> Subscription:
        """Register ``handler`` for events of ``kind`` (or ``"*"``)."""
        token = next(self._tokens)
        self._handlers.setdefault(kind, {})[token] = handler
        return Subscription(kind, token)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Remove a handler; unknown subscriptions are ignored."""
        handlers = self._handlers.get(subscription.kind)
        if handlers is not None:
            handlers.pop(subscription.token, None)

    def emit(self, kind: str, subject: Any = None, **data: Any) -> Event:
        """Publish an event and run its handlers synchronously."""
        event = Event(kind, subject, data, next(self._seq))
        if self.record:
            self.history.append(event)
            if len(self.history) > self.history_limit:
                del self.history[: len(self.history) - self.history_limit]
        for handler in list(self._handlers.get(kind, {}).values()):
            handler(event)
        for handler in list(self._handlers.get(self.WILDCARD, {}).values()):
            handler(event)
        return event

    def events_of(self, kind: str) -> Tuple[Event, ...]:
        """Recorded events of one kind (requires ``record=True``)."""
        return tuple(event for event in self.history if event.kind == kind)

    def clear_history(self) -> None:
        self.history.clear()
