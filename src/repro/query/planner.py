"""Sargable-predicate planner: index-scan vs full-scan selection.

The executor used to walk every candidate of the ``from`` source and
evaluate the whole ``where`` per object.  The planner sits in front of
that loop:

1. **Source resolution** — ``from`` names a class (extent) first, falling
   back to a type (all live conforming objects, served by the
   :class:`~repro.query.indexes.IndexManager`'s per-type extent index).

2. **Sarg extraction** — the parsed ``where`` AST is flattened over
   top-level ``and`` conjuncts; every ``Name <cmp> <constant>`` conjunct
   (either side, operators ``= < <= > >=``) is a *search argument*.
   Constants are literals, negated numeric literals, and — matching the
   paper's unquoted enum-label convention (``Function = NAND``) — bare
   identifiers that provably resolve on **no** live candidate type, so
   they evaluate to their own spelling everywhere.

3. **Costing** — each sarg asks the index manager for a value index
   (built lazily on first use once the source holds at least
   ``min_index_source`` objects) and gets a cardinality estimate: exact
   bucket size for equality, bisect-bounded span for ranges.  The
   cheapest access path wins if it beats the full scan.

4. **Candidates** — an index lookup returns a *superset* of the matching
   objects in the source's scan order (unhashable values ride along in an
   always-included pool; per-candidate epoch validation self-heals stale
   entries).  The executor re-applies the full ``where`` to every
   candidate, so planner choices can never change query results — only
   how many objects are touched.

The chosen plan is recorded as a :class:`QueryPlan` on the result
(``run_query(..., explain=True)``, CLI ``repro query --explain``) with
estimated vs actual row counts.

Known (documented) divergence: a conjunct that *raises* for objects the
index skips — e.g. ``Weight = 5 and -'x' > 0`` over a source where
``Weight = 5`` matches nothing — raises under a full scan but not under
an index scan, because the residual filter only runs on candidates.
Predicates that evaluate without error are always byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..core import resolution as _resolution
from ..errors import QueryError, UnknownTypeError
from ..expr.ast import Binary, Literal, Name, Node, Unary

__all__ = ["QueryPlan", "Sarg", "extract_sargs", "plan_source", "resolve_source"]

_COMPARISONS = frozenset(["=", "<", "<=", ">", ">="])
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


class _ClassSource:
    """A named extent as a query source."""

    kind = "class"

    def __init__(self, db, extent):
        self.db = db
        self.extent = extent
        self.name = extent.name

    def size(self) -> int:
        return len(self.extent)

    def fetch_all(self):
        return self.extent.members()

    def concrete_types(self):
        return [
            concrete
            for concrete, count in self.extent._type_counts.items()
            if count > 0
        ]

    def source_type(self):
        return self.extent.object_type

    def ordered(self, candidates):
        order = self.extent._order
        return sorted(candidates, key=lambda obj: order.get(obj.surrogate, 0))


class _TypeSource:
    """All live objects of a type (subtypes included) as a query source."""

    kind = "type"

    def __init__(self, db, type_):
        self.db = db
        self.type_ = type_
        self.name = type_.name

    def size(self) -> int:
        return self.db.indexes.type_population(self.type_)

    def fetch_all(self):
        return self.db.indexes.objects_of_type(self.type_)

    def concrete_types(self):
        return self.db.indexes.concrete_types_of(self.type_)

    def source_type(self):
        return self.type_

    def ordered(self, candidates):
        order = self.db.indexes._adopt_order
        return sorted(candidates, key=lambda obj: order.get(obj.surrogate, 0))


def resolve_source(db, name: str):
    """Resolve a ``from`` name: class extent first, then type."""
    try:
        return _ClassSource(db, db.class_(name))
    except UnknownTypeError:
        pass
    try:
        return _TypeSource(db, db.catalog.type(name))
    except UnknownTypeError:
        raise QueryError(
            f"{name!r} names neither a class nor a type in this database"
        ) from None


def class_source(db, extent) -> _ClassSource:
    """Wrap an already-resolved extent (``Database.select``'s path)."""
    return _ClassSource(db, extent)


# ---------------------------------------------------------------------------
# sarg extraction
# ---------------------------------------------------------------------------


@dataclass
class Sarg:
    """One sargable conjunct: ``attr <op> key`` with a constant key."""

    attr: str
    op: str
    key: Any
    text: str


def _conjuncts(node: Node) -> List[Node]:
    """Flatten a top-level ``and`` chain into its conjuncts."""
    out: List[Node] = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Binary) and current.op == "and":
            stack.append(current.right)
            stack.append(current.left)
        else:
            out.append(current)
    return out


_NOT_CONSTANT = object()


def _fold_constant(node: Node, concrete_types) -> Any:
    """The constant value ``node`` evaluates to for *every* candidate, or
    :data:`_NOT_CONSTANT`.

    Bare identifiers fold to their own spelling only when no live
    candidate type can resolve them — no plan entry, no relationship
    role, no dynamic attributes — mirroring ``Name.evaluate``'s
    unresolved-as-literal fallback.
    """
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, Unary) and node.op == "-":
        inner = _fold_constant(node.operand, concrete_types)
        if (inner is _NOT_CONSTANT or isinstance(inner, bool)
                or not isinstance(inner, (int, float))):
            return _NOT_CONSTANT
        return -inner
    if isinstance(node, Name):
        identifier = node.identifier
        for concrete in concrete_types:
            if getattr(concrete, "allow_dynamic", False):
                return _NOT_CONSTANT
            if identifier in _resolution.plan_for(concrete).entries:
                return _NOT_CONSTANT
            participants = getattr(concrete, "participants", None)
            if participants and identifier in participants:
                return _NOT_CONSTANT
        return identifier
    return _NOT_CONSTANT


def extract_sargs(where: Node, concrete_types) -> List[Sarg]:
    """Sargable conjuncts of ``where`` against the given candidate types."""
    sargs: List[Sarg] = []
    for conjunct in _conjuncts(where):
        if not isinstance(conjunct, Binary) or conjunct.op not in _COMPARISONS:
            continue
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        left_const = _fold_constant(left, concrete_types)
        right_const = _fold_constant(right, concrete_types)
        if left_const is not _NOT_CONSTANT and right_const is not _NOT_CONSTANT:
            continue  # constant conjunct: nothing to index
        if isinstance(left, Name) and right_const is not _NOT_CONSTANT:
            sargs.append(Sarg(left.identifier, op, right_const, conjunct.unparse()))
        elif isinstance(right, Name) and left_const is not _NOT_CONSTANT:
            sargs.append(
                Sarg(right.identifier, _FLIP[op], left_const, conjunct.unparse())
            )
    return sargs


# ---------------------------------------------------------------------------
# the plan
# ---------------------------------------------------------------------------


@dataclass
class QueryPlan:
    """An inspectable record of how one query was executed.

    ``access_path`` is ``full-scan``, ``index-eq`` or ``index-range``;
    ``estimated_candidates`` is the planner's pre-execution estimate while
    ``candidates``/``rows`` are filled in by the executor (estimated vs
    actual).  ``notes`` records why alternatives were rejected.
    """

    source_name: str
    source_kind: str
    source_size: int
    access_path: str = "full-scan"
    index_attr: Optional[str] = None
    sarg: str = ""
    estimated_candidates: int = 0
    candidates: Optional[int] = None
    rows: Optional[int] = None
    order: str = "none"
    text: str = ""
    notes: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line EXPLAIN rendering (the CLI's ``--explain`` output)."""
        lines = [f"plan: {self.text}" if self.text else "plan:"]
        lines.append(
            f"  source:  {self.source_kind} {self.source_name}"
            f" ({self.source_size} objects)"
        )
        access = self.access_path
        if self.index_attr is not None:
            access += f" on {self.index_attr!r} [{self.sarg}]"
        lines.append(f"  access:  {access}")
        actual = ""
        if self.candidates is not None:
            actual += f"  candidates={self.candidates}"
        if self.rows is not None:
            actual += f"  matched={self.rows}"
        lines.append(f"  rows:    estimated={self.estimated_candidates}{actual}")
        if self.order != "none":
            lines.append(f"  order:   {self.order}")
        for note in self.notes:
            lines.append(f"  note:    {note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# planning
# ---------------------------------------------------------------------------


def plan_source(
    db, source, where: Optional[Node], text: str = ""
) -> Tuple[QueryPlan, List[Any]]:
    """Choose an access path for ``source`` filtered by ``where``.

    Returns the plan plus the candidate objects in source scan order.
    Candidates are a superset of the matches; the caller must still apply
    the full ``where``.
    """
    manager = db.indexes
    size = source.size()
    plan = QueryPlan(
        source_name=source.name,
        source_kind=source.kind,
        source_size=size,
        estimated_candidates=size,
        text=text,
    )
    best = None
    if where is not None and manager.auto and size > 0:
        concrete_types = source.concrete_types()
        for sarg in extract_sargs(where, concrete_types):
            index = manager.usable_value_index(
                source.kind, source.name, source.source_type(), sarg.attr, size
            )
            if index is None:
                plan.notes.append(
                    f"{sarg.attr}: source below index threshold "
                    f"({size} < {manager.min_index_source})"
                )
                continue
            if sarg.op == "=":
                estimate = index.estimate_eq(sarg.key)
                path = "index-eq"
            else:
                if not index.range_supported(sarg.key):
                    plan.notes.append(
                        f"{sarg.text}: values not uniformly comparable with "
                        f"{sarg.key!r}; range scan unsafe"
                    )
                    continue
                estimate = index.estimate_range(sarg.op, sarg.key)
                path = "index-range"
            if best is None or estimate < best[0]:
                best = (estimate, path, sarg, index)

    if best is not None and best[0] < size:
        estimate, path, sarg, index = best
        if sarg.op == "=":
            candidates = index.lookup_eq(sarg.key)
        else:
            candidates = index.lookup_range(sarg.op, sarg.key)
        index.validate(candidates)
        candidates = source.ordered(candidates)
        plan.access_path = path
        plan.index_attr = sarg.attr
        plan.sarg = sarg.text
        plan.estimated_candidates = estimate
        manager._bump("index.hits")
    else:
        if best is not None:
            plan.notes.append(
                f"cheapest index ({best[2].text}) estimated {best[0]} of "
                f"{size}; full scan kept"
            )
        candidates = source.fetch_all()
        if (where is not None and manager.auto
                and size >= manager.min_index_source):
            manager._bump("index.misses")
    return plan, candidates
