"""The paper's schema listings, as executable DDL.

Two normalisations were applied to the published text and are documented in
DESIGN.md: OCR artefacts are corrected (``Gatelnterface`` → ``GateInterface``,
``Wiretype`` → ``WireType``), the §5 constraint typos ``1 00`` → ``100`` and
``= l`` → ``= 1`` are fixed.  The paper's *structural* quirks — ``obj-type
SimpleGate:`` with a colon, ``connections:``, ``inher-rel-typ``,
``inheritor:`` for ``inheritor-in:``, mismatched ``end`` names, trailing
commas — are left in place; the parser accepts them and records notes.
"""

from __future__ import annotations

from typing import Optional

from ..engine.catalog import Catalog
from .builder import load_schema

__all__ = [
    "GATE_SCHEMA",
    "STEEL_SCHEMA",
    "load_gate_schema",
    "load_steel_schema",
]

#: §3 and §4: simple gates, pins, wires, complex gates, interfaces,
#: implementations and the composite-object form of GateImplementation.
GATE_SCHEMA = """
domain I/O = (IN, OUT);
domain Point = (X, Y: integer);

obj-type SimpleGate:
    attributes:
        Length, Width: integer;
        Function: (AND, OR, NOR, NAND);
        Pins: set-of ( PinId: integer;
                       InOut: I/O;
                     );
    constraints:
        count (Pins) = 2 where Pins.InOut = IN;
        count (Pins) = 1 where Pins.InOut = OUT;
end SimpleGate;

obj-type PinType =
    attributes:
        InOut: I/O;
        PinLocation: Point;
end PinType;

rel-type WireType =
    relates:
        Pin1, Pin2: object-of-type PinType;
    attributes:
        Corners: list-of Point;
end WireType;

obj-type ElementaryGate =
    /* equals SimpleGate except for the definition of Pins */
    attributes:
        Length, Width: integer;
        Function: (AND, OR, NAND, NOR);
        GatePosition: Point;
    types-of-subclasses:
        Pins: PinType;
    constraints:
        count (Pins) = 2 where Pins.InOut = IN;
        count (Pins) = 1 where Pins.InOut = OUT;
end ElementaryGate;

obj-type Gate =
    /* representation of gates constructed by AND, OR, NAND and NOR-gates */
    attributes:
        Length,
        Width: integer;
        Function: matrix-of boolean;
    types-of-subclasses:
        Pins: PinType;
        SubGates: ElementaryGate;
    types-of-subrels:
        Wires: WireType
            where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and
                  (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end Gate;

obj-type GateInterface_I =
    types-of-subclasses:
        Pins: PinType;
end GateInterface_I;

inher-rel-type AllOf_GateInterface_I =
    transmitter: object-of-type GateInterface_I;
    inheritor: object;
    inheriting: Pins;
end AllOfGateInterface_I;

obj-type GateInterface =
    inheritor-in: AllOf_GateInterface_I;
    attributes:
        Length,
        Width: integer;
end GateInterface;

inher-rel-type AllOf_GateInterface =
    /* enables objects to inherit all data of GateInterface objects */
    transmitter: object-of-type GateInterface;
    inheritor: object;
    inheriting: Length, Width, Pins;
end AllOf_GateInterface;

obj-type GateImplementation =
    inheritor-in: AllOf_GateInterface;
    attributes:
        Function: matrix-of boolean;
        TimeBehavior: integer;
    types-of-subclasses:
        SubGates:
            inheritor-in: AllOf_GateInterface;
            attributes:
                GateLocation: Point;
    connections:
        Wire: Wiretype
            where (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and
                  (Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins);
end GateImplementation;

inher-rel-type SomeOf_Gate =
    transmitter: object-of-type GateImplementation
    inheritor: object;
    inheriting:
        Length, Width,
        TimeBehavior, Pins;
end SomeOf_Gate;
"""

#: §5: the steel-construction world — bolts, nuts, bores, girders, plates,
#: screwings and weight-carrying structures.
STEEL_SCHEMA = """
domain AreaDom =
    record:
        Length, Width: integer;
end-domain AreaDom;

obj-type BoltType =
    attributes:
        Length,
        Diameter: integer;
end BoltType;

obj-type NutType =
    attributes:
        Length,
        Diameter: integer;
end NutType;

obj-type BoreType =
    attributes:
        Diameter,
        Length: integer;
        Position: Point;
end BoreType;

obj-type GirderInterface =
    attributes:
        Length, Height, Width: integer;
    types-of-subclasses:
        Bores: BoreType;
    constraints:
        Length < 100*Height*Width;
end GirderInterface;

obj-type PlateInterface =
    attributes:
        Thickness: integer;
        Area: AreaDom;
    types-of-subclasses:
        Bores: BoreType;
end PlateInterface;

inher-rel-type AllOf_GirderIf =
    transmitter: object-of-type GirderInterface
    inheritor: object-of-type Girder
    inheriting:
        Length, Height, Width, Bores;
end AllOf_GirderIf;

inher-rel-typ AllOf_PlateIf =
    transmitter: object-of-type PlateInterface
    inheritor: object-of-type Plate
    inheriting:
        Thickness, Area, Bores;
end AllOf_PlateIf;

obj-type Plate =
    inheritor-in: AllOf_PlateIf;
    attributes:
        Material: (wood, metal);
end Plate;

obj-type Girder
    inheritor: AllOf_GirderIf;
    attributes:
        Material: (wood, metal);
end Girder;

inher-rel-type AllOf_BoltType =
    transmitter: object-of-type BoltType;
    inheritor: object;
    inheriting:
        Length, Diameter,
end AllOf_BoltType;

inher-rel-type AllOf_NutType =
    transmitter: object-of-type NutType;
    inheritor: object;
    inheriting:
        Length, Diameter;
end AllOf_BoltType;

rel-type ScrewingType =
    relates:
        Bores: set-of object-of-type BoreType;
    attributes:
        Strength: integer;
    types-of-subclasses:
        Bolt:
            inheritor-in: AllOf_BoltType;
        Nut:
            inheritor-in: AllOf_NutType;
    constraints:
        #s in Bolt = 1;
        #n in Nut = 1;
        for (s in Bolt, n in Nut):
            s.Diameter = n.Diameter;
            for b in Bores:
                s.Diameter <= b.Diameter;
            s.Length = n.Length + sum (Bores.Length)
end ScrewingType;

obj-type WeightCarrying_Structure =
    attributes:
        Designer: char;
        Description: char;
    types-of-subclasses:
        Girders:
            inheritor-in: AllOf_GirderIf;
        Plates:
            inheritor-in: AllOf_PlateIf;
    types-of-subrels:
        Screwings: ScrewingType
            where for x in Bores:
                x in Girders.Bores or x in Plates.Bores;
end WeightCarrying_Structure;
"""


def load_gate_schema(catalog: Optional[Catalog] = None) -> Catalog:
    """Load the §3/§4 gate schema into a catalog."""
    return load_schema(GATE_SCHEMA, catalog)


def load_steel_schema(catalog: Optional[Catalog] = None) -> Catalog:
    """Load the §5 steel-construction schema into a catalog.

    The schema references the ``Point`` domain (built in) and is otherwise
    self-contained; it can share a catalog with the gate schema.
    """
    return load_schema(STEEL_SCHEMA, catalog)
