"""Unparser: catalog types back to the paper's DDL syntax.

The inverse of :mod:`repro.ddl.parser`/:mod:`repro.ddl.builder` — renders a
catalog (or individual types) as schema text in the published syntax.  Used
for schema documentation, diffing, and the round-trip tests that pin the
parser and builder against each other.

Anonymous element types (``Owner.Subclass``) are rendered inline inside
their owner, exactly as the paper writes them; inline enum/record domains
are rendered as literals; registered domains are referenced by name.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.attributes import AttributeSpec
from ..core.domains import (
    Domain,
    EnumDomain,
    ListOf,
    MatrixOf,
    RecordDomain,
    SetOf,
)
from ..core.inheritance import InheritanceRelationshipType
from ..core.objtype import TypeBase
from ..core.reltype import RelationshipType
from ..engine.catalog import Catalog, _BUILTIN_DOMAINS

__all__ = [
    "unparse_domain",
    "unparse_type",
    "unparse_catalog",
]

_INDENT = "    "


def _domain_names(catalog: Optional[Catalog]) -> Dict[str, str]:
    """describe() → registered name, for named-domain references."""
    if catalog is None:
        return {}
    return {domain.describe(): name for name, domain in catalog.domains().items()}


def unparse_domain(domain: Domain, catalog: Optional[Catalog] = None) -> str:
    """Render a domain as it appears on the right of an attribute colon."""
    names = _domain_names(catalog)
    known = names.get(domain.describe())
    if known is not None:
        return known
    return _domain_literal(domain, names)


def _domain_literal(domain: Domain, names: Dict[str, str]) -> str:
    known = names.get(domain.describe())
    if known is not None:
        return known
    if isinstance(domain, EnumDomain):
        return f"({', '.join(domain.labels)})"
    if isinstance(domain, RecordDomain):
        fields = "; ".join(
            f"{name}: {_domain_literal(field, names)}"
            for name, field in domain.fields.items()
        )
        return f"( {fields}; )"
    if isinstance(domain, SetOf):
        return f"set-of {_domain_literal(domain.element, names)}"
    if isinstance(domain, ListOf):
        return f"list-of {_domain_literal(domain.element, names)}"
    if isinstance(domain, MatrixOf):
        return f"matrix-of {_domain_literal(domain.element, names)}"
    return domain.describe()


def _attribute_lines(
    attributes: Dict[str, AttributeSpec],
    catalog: Optional[Catalog],
    indent: str,
) -> List[str]:
    lines = [f"{indent}attributes:"]
    for name, spec in attributes.items():
        rendered = unparse_domain(spec.domain, catalog)
        lines.append(f"{indent}{_INDENT}{name}: {rendered};")
    return lines


def _subclass_lines(type_: TypeBase, catalog: Optional[Catalog], indent: str) -> List[str]:
    lines = [f"{indent}types-of-subclasses:"]
    for name, spec in type_.subclass_specs.items():
        element = spec.element_type
        if "." in element.name:
            # Anonymous element type: inline body.
            lines.append(f"{indent}{_INDENT}{name}:")
            for rel in element.inheritor_in:
                lines.append(f"{indent}{_INDENT*2}inheritor-in: {rel.name};")
            if element.attributes:
                lines.extend(
                    _attribute_lines(element.attributes, catalog, indent + _INDENT * 2)
                )
        else:
            lines.append(f"{indent}{_INDENT}{name}: {element.name};")
    return lines


def _subrel_lines(type_: TypeBase, indent: str) -> List[str]:
    lines = [f"{indent}types-of-subrels:"]
    for name, spec in type_.subrel_specs.items():
        if spec.where_source:
            lines.append(f"{indent}{_INDENT}{name}: {spec.rel_type.name}")
            lines.append(f"{indent}{_INDENT*2}where {spec.where_source};")
        else:
            lines.append(f"{indent}{_INDENT}{name}: {spec.rel_type.name};")
    return lines


def _constraint_lines(type_: TypeBase, indent: str) -> List[str]:
    lines = [f"{indent}constraints:"]
    for constraint in type_.constraints:
        lines.append(f"{indent}{_INDENT}{constraint.source};")
    return lines


def _body_lines(type_: TypeBase, catalog: Optional[Catalog]) -> List[str]:
    lines: List[str] = []
    for rel in type_.inheritor_in:
        lines.append(f"{_INDENT}inheritor-in: {rel.name};")
    if type_.attributes:
        lines.extend(_attribute_lines(type_.attributes, catalog, _INDENT))
    if type_.subclass_specs:
        lines.extend(_subclass_lines(type_, catalog, _INDENT))
    if type_.subrel_specs:
        lines.extend(_subrel_lines(type_, _INDENT))
    if type_.constraints:
        lines.extend(_constraint_lines(type_, _INDENT))
    return lines


def unparse_type(type_: TypeBase, catalog: Optional[Catalog] = None) -> str:
    """Render one type declaration in the paper's syntax."""
    if isinstance(type_, InheritanceRelationshipType):
        lines = [f"inher-rel-type {type_.name} ="]
        lines.append(f"{_INDENT}transmitter: object-of-type {type_.transmitter_type.name};")
        if type_.inheritor_type is not None:
            lines.append(
                f"{_INDENT}inheritor: object-of-type {type_.inheritor_type.name};"
            )
        else:
            lines.append(f"{_INDENT}inheritor: object;")
        lines.append(f"{_INDENT}inheriting: {', '.join(type_.inheriting)};")
        if type_.attributes:
            lines.extend(_attribute_lines(type_.attributes, catalog, _INDENT))
        if type_.subclass_specs:
            lines.extend(_subclass_lines(type_, catalog, _INDENT))
        if type_.constraints:
            lines.extend(_constraint_lines(type_, _INDENT))
        lines.append(f"end {type_.name};")
        return "\n".join(lines)
    if isinstance(type_, RelationshipType):
        lines = [f"rel-type {type_.name} ="]
        lines.append(f"{_INDENT}relates:")
        for role, spec in type_.participants.items():
            if spec.object_type is None:
                rendered = "object"
            else:
                rendered = f"object-of-type {spec.object_type.name}"
            if spec.many:
                rendered = f"set-of {rendered}"
            lines.append(f"{_INDENT*2}{role}: {rendered};")
        lines.extend(_body_lines(type_, catalog))
        lines.append(f"end {type_.name};")
        return "\n".join(lines)
    lines = [f"obj-type {type_.name} ="]
    lines.extend(_body_lines(type_, catalog))
    lines.append(f"end {type_.name};")
    return "\n".join(lines)


def unparse_catalog(catalog: Catalog, include_domains: bool = True) -> str:
    """Render a whole catalog as loadable DDL.

    Built-in domains and anonymous (dotted) types are skipped — the former
    pre-exist in every catalog, the latter are emitted inline inside their
    owners.
    """
    chunks: List[str] = []
    if include_domains:
        builtin_names = set(_BUILTIN_DOMAINS)
        all_names = _domain_names(catalog)
        for name, domain in catalog.domains().items():
            if name in builtin_names:
                continue
            # Other named domains may be referenced; the domain being
            # defined must be spelled out structurally.
            names = {k: v for k, v in all_names.items() if v != name}
            chunks.append(f"domain {name} = {_domain_literal(domain, names)};")
    for type_ in catalog:
        if "." in type_.name:
            continue
        chunks.append(unparse_type(type_, catalog))
    return "\n\n".join(chunks) + "\n"
