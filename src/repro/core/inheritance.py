"""Inheritance-relationship types — the paper's central mechanism (§4.1).

An inheritance relationship relates one *transmitter* object to *inheritor*
objects.  The inheritor inherits the attributes and subclasses named in the
``inheriting:`` clause — their existence at the type level (classical
generalization) **and their values at the object level** when the inheritor
is bound to a concrete transmitter object.  Inherited data is read-only in
the inheritor; transmitter updates are visible in every inheritor
immediately.

The ``inheriting:`` clause is the relationship's *permeability* (§4.2): only
the listed members flow through, which is how interfaces expose a tailored
image of a component (``SomeOf_Gate`` in the paper).

Like every relationship, an inheritance relationship is represented by a
relationship object and may carry attributes, subclasses and constraints of
its own — §4.1 singles out consistency-control data ("to inform the user
about changes of the transmitter object the attributes of the relationship
can be used"), which :mod:`repro.consistency` builds on.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import SchemaError
from .objtype import ObjectType, TypeBase
from .reltype import ParticipantSpec, RelationshipType

__all__ = [
    "InheritanceRelationshipType",
    "TRANSMITTER_ROLE",
    "INHERITOR_ROLE",
    "iter_propagation",
    "propagation_fanout",
]

TRANSMITTER_ROLE = "transmitter"
INHERITOR_ROLE = "inheritor"


class InheritanceRelationshipType(RelationshipType):
    """Type of an inheritance relationship (``inher-rel-type``).

    Parameters
    ----------
    name:
        Type name, e.g. ``AllOf_GateInterface``.
    transmitter_type:
        The object type whose instances transmit data (required — the
        ``transmitter: object-of-type T`` clause).
    inheriting:
        Names of attributes/subclasses of the transmitter type that are
        permeable.  Every name must be an *effective* member of the
        transmitter type (the transmitter may itself inherit it — the
        paper's GateInterface passes on the Pins it inherits from
        GateInterface_I).
    inheritor_type:
        Optional object type restriction for inheritors; ``None`` is the
        paper's plain ``inheritor: object``.
    attributes / subclasses / constraints:
        Own members of the relationship objects (adaptation bookkeeping,
        application data …).
    """

    def __init__(
        self,
        name: str,
        transmitter_type: ObjectType,
        inheriting: Sequence[str],
        inheritor_type: Optional[ObjectType] = None,
        attributes=None,
        subclasses=None,
        subrels=None,
        constraints=None,
        doc: str = "",
    ):
        if not isinstance(transmitter_type, TypeBase):
            raise SchemaError(
                f"inher-rel-type {name!r}: transmitter must be an object type"
            )
        super().__init__(
            name,
            relates={
                TRANSMITTER_ROLE: ParticipantSpec(TRANSMITTER_ROLE, transmitter_type),
                # The inheritor role stays untyped at the participant level:
                # the `inheritor:` restriction is enforced by bind() with the
                # inheritor-in-declaration escape hatch (§5), not by plain
                # participant conformance.
                INHERITOR_ROLE: ParticipantSpec(INHERITOR_ROLE, None),
            },
            attributes=attributes,
            subclasses=subclasses,
            subrels=subrels,
            constraints=constraints,
            doc=doc,
        )
        self.transmitter_type = transmitter_type
        self.inheritor_type = inheritor_type
        self.inheriting: Tuple[str, ...] = self._validate_inheriting(inheriting)
        #: Object types that declared ``inheritor-in: <this>`` (bookkeeping
        #: for catalogs and the documentation generator).
        self.known_inheritor_types: List[TypeBase] = []
        transmitter_type._transmitting_rel_types.append(self)
        if inheritor_type is not None:
            inheritor_type.declare_inheritor_in(self)

    def _validate_inheriting(self, inheriting: Sequence[str]) -> Tuple[str, ...]:
        if not inheriting:
            raise SchemaError(
                f"inher-rel-type {self.name!r}: the inheriting clause is empty"
            )
        seen: Set[str] = set()
        validated = []
        for member in inheriting:
            if member in seen:
                raise SchemaError(
                    f"inher-rel-type {self.name!r}: duplicate inheriting "
                    f"member {member!r}"
                )
            seen.add(member)
            if self.transmitter_type.member_kind(member) is None:
                raise SchemaError(
                    f"inher-rel-type {self.name!r}: transmitter type "
                    f"{self.transmitter_type.name!r} has no member {member!r}"
                )
            validated.append(member)
        return tuple(validated)

    def _register_inheritor_type(self, inheritor_type: TypeBase) -> None:
        if inheritor_type not in self.known_inheritor_types:
            self.known_inheritor_types.append(inheritor_type)

    def set_inheritor_type(self, inheritor_type: TypeBase) -> None:
        """Resolve a forward-referenced ``inheritor: object-of-type T``.

        The paper's §5 listing declares ``AllOf_GirderIf`` with
        ``inheritor: object-of-type Girder`` *before* defining Girder; the
        DDL builder resolves the restriction in a second pass through this
        method.  Also registers the ``inheritor-in`` declaration on the
        resolved type.
        """
        if self.inheritor_type is not None and self.inheritor_type is not inheritor_type:
            raise SchemaError(
                f"inher-rel-type {self.name!r} already restricts inheritors "
                f"to {self.inheritor_type.name!r}"
            )
        self.inheritor_type = inheritor_type
        inheritor_type.declare_inheritor_in(self)

    # -- permeability ----------------------------------------------------------

    def is_permeable(self, member: str) -> bool:
        """True when ``member`` flows through this relationship (§4.2)."""
        return member in self.inheriting

    def permeable_attributes(self) -> Dict[str, Any]:
        """Attribute specs of the transmitter type that flow through."""
        return {
            name: spec
            for name, spec in self.transmitter_type.effective_attributes().items()
            if name in self.inheriting
        }

    def permeable_subclasses(self) -> Dict[str, Any]:
        """Subclass specs of the transmitter type that flow through."""
        return {
            name: spec
            for name, spec in self.transmitter_type.effective_subclasses().items()
            if name in self.inheriting
        }

    def accepts_inheritor(self, candidate_type: Optional[TypeBase]) -> bool:
        """Type check for a would-be inheritor object."""
        if self.inheritor_type is None:
            return True
        return candidate_type is not None and candidate_type.conforms_to(
            self.inheritor_type
        )

    def __repr__(self) -> str:
        restriction = (
            self.inheritor_type.name if self.inheritor_type is not None else "object"
        )
        return (
            f"<InheritanceRelationshipType {self.name} "
            f"{self.transmitter_type.name} -> {restriction} "
            f"inheriting {list(self.inheriting)}>"
        )


# -- update-propagation traversal ------------------------------------------------


def iter_propagation(transmitter, member: str) -> Iterator[Tuple[object, object]]:
    """Yield ``(link, inheritor)`` for every object an update of ``member``
    on ``transmitter`` becomes visible in (§4.2's update fan-out).

    The walk is transitive — an inheritor that transmits the member
    onwards (interface hierarchies) contributes its own inheritors — and
    visits each ``(inheritor, member)`` pair once, so diamonds do not
    duplicate.  Only links whose ``inheriting`` clause makes the member
    permeable are followed.  The traversal is the single source of truth
    for "who sees this update": the materialising cache invalidates along
    it and the observability layer measures fan-out with it.
    """
    stack = [transmitter]
    seen: Set[object] = set()
    while stack:
        current = stack.pop()
        for link in current._links_as_transmitter:
            if not link.rel_type.is_permeable(member):
                continue
            inheritor = link.inheritor
            key = inheritor.surrogate
            if key in seen:
                continue
            seen.add(key)
            yield link, inheritor
            stack.append(inheritor)


def iter_propagation_depths(
    transmitter, member: str
) -> Iterator[Tuple[object, object, int]]:
    """Like :func:`iter_propagation`, additionally yielding each inheritor's
    **depth** — how many inheritance hops below the updated transmitter it
    sits (direct inheritors are depth 1).

    Membership and dedup semantics are identical to :func:`iter_propagation`
    (the provenance layer's propagation cones are verified against it); in
    a diamond, an inheritor is reported at the depth of whichever path the
    walk reaches it through first.
    """
    stack = [(transmitter, 0)]
    seen: Set[object] = set()
    while stack:
        current, depth = stack.pop()
        for link in current._links_as_transmitter:
            if not link.rel_type.is_permeable(member):
                continue
            inheritor = link.inheritor
            key = inheritor.surrogate
            if key in seen:
                continue
            seen.add(key)
            yield link, inheritor, depth + 1
            stack.append((inheritor, depth + 1))


def propagation_fanout(transmitter, member: str) -> int:
    """How many inheritors would see an update of ``member`` (transitively)."""
    return sum(1 for _ in iter_propagation(transmitter, member))
