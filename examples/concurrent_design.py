#!/usr/bin/env python3
"""Concurrent design (§6): lock inheritance, expansion locking, access control.

Two designers work on the same chip library.  The example shows the three
§6 mechanisms:

* **lock inheritance** — reading a composite's inherited data read-locks
  the visible part of the component, so a component writer conflicts;
* **expansion locking** — one operation locks a whole component hierarchy;
* **access-control capping** — standard cells are protected: expansion
  write requests degrade to read locks on them.

Run:  python examples/concurrent_design.py
"""

from repro.composition import add_component
from repro.errors import AccessDeniedError, LockConflictError
from repro.txn import AccessControlManager, LockMode, Right, TransactionManager
from repro.workloads import gate_database, make_implementation, make_interface


def main() -> None:
    db = gate_database("concurrent")
    access = AccessControlManager()
    tm = TransactionManager(db, access=access)

    # -- the design: a composite using a standard cell ------------------------
    std_cell_if = make_interface(db, length=10, width=5)   # library part
    access.protect_standard_object(std_cell_if)            # read-only for all
    chip_if = make_interface(db, length=100, width=80)
    chip = make_implementation(db, chip_if)
    slot = add_component(chip, "SubGates", std_cell_if, GateLocation=(0, 0))
    access.grant("alice", None, Right.WRITE)
    access.grant("bob", None, Right.WRITE)

    # -- lock inheritance -------------------------------------------------------
    # Alice reads the chip, whose Length/Width/Pins are inherited from its
    # interface; the visible part of the interface is read-locked with it.
    alice = tm.begin(user="alice")
    alice.read(chip)
    print(f"alice read the chip; locks held: {tm.lock_table.lock_count()}")

    bob = tm.begin(user="bob")
    try:
        bob.set(chip_if, "Length", 110)
    except LockConflictError as exc:
        print(f"bob's interface update blocked by lock inheritance: {exc}")
    alice.commit()

    # -- updating a protected standard object needs rights ----------------------
    try:
        bob.set(std_cell_if, "Length", 11)
    except AccessDeniedError as exc:
        print(f"bob may not update the standard cell at all: {exc}")
    bob.abort()

    # -- expansion locking, capped by access control -----------------------------
    carol = tm.begin(user="alice")
    locked = carol.lock_expansion(chip, mode=LockMode.X)
    modes = {
        entry.mode
        for entry in tm.lock_table.holders(std_cell_if.surrogate)
    }
    print(f"expansion locked {locked} objects; standard cell lock modes: "
          f"{sorted(modes)} (write capped to read)")
    own_modes = {e.mode for e in tm.lock_table.holders(chip.surrogate)}
    print(f"the chip itself is locked {sorted(own_modes)}")
    carol.commit()

    # -- design transactions: checkout/checkin -----------------------------------
    design = tm.begin(user="alice", persistent=True)
    design.set(chip_if, "Length", 101)
    design.commit()  # work saved, locks kept (checkout semantics)
    late = tm.begin(user="bob")
    try:
        late.read(chip_if, {"Length"})
    except LockConflictError:
        print("bob still blocked: alice's design transaction holds the part")
    design.checkin()
    late.read(chip_if, {"Length"})
    late.commit()
    print(f"after checkin bob reads Length={chip_if['Length']}; done.")


if __name__ == "__main__":
    main()
