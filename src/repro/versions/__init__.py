"""Version management (§6): graphs, states, generic relationships, environments."""

from .diff import DiffEntry, derive_version, diff_versions
from .merge import MergeConflict, MergeResult, merge_versions
from .environments import Environment, EnvironmentRegistry
from .graph import VersionGraph
from .selection import (
    DefaultSelection,
    EnvironmentSelection,
    GenericRelationship,
    QuerySelection,
    SelectionPolicy,
)
from .states import StateGuard, VersionState, can_transition
from .workspace import CheckinResult, CheckoutRecord, Workspace

__all__ = [
    "DiffEntry",
    "derive_version",
    "diff_versions",
    "MergeConflict",
    "MergeResult",
    "merge_versions",
    "Environment",
    "EnvironmentRegistry",
    "VersionGraph",
    "DefaultSelection",
    "EnvironmentSelection",
    "GenericRelationship",
    "QuerySelection",
    "SelectionPolicy",
    "StateGuard",
    "VersionState",
    "can_transition",
    "CheckinResult",
    "CheckoutRecord",
    "Workspace",
]
