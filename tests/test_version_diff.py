"""Tests for version derivation and diffs (repro.versions.diff)."""

import pytest

from repro.versions import (
    StateGuard,
    VersionGraph,
    VersionState,
    derive_version,
    diff_versions,
)
from repro.workloads import gate_database, make_interface


@pytest.fixture
def db():
    return gate_database("version-diff")


@pytest.fixture
def graph(db):
    return VersionGraph(name="diffs", guard=StateGuard(db))


class TestDeriveVersion:
    def test_derived_version_copies_data(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        derived = derive_version(graph, base)
        assert derived["Length"] == 10
        assert len(derived["Pins"]) == 3
        assert derived.surrogate != base.surrogate

    def test_derivation_registered(self, db, graph):
        base = make_interface(db)
        graph.add_version(base)
        derived = derive_version(graph, base)
        assert graph.base_of(derived) is base
        assert graph.state_of(derived) == VersionState.IN_DESIGN

    def test_derived_version_is_independent(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Length", 99)
        assert base["Length"] == 10

    def test_derive_from_released_base(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        graph.release(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Length", 11)  # the copy is in design
        assert graph.state_of(base) == VersionState.RELEASED


class TestDiffVersions:
    def test_no_changes_no_diff(self, db, graph):
        base = make_interface(db)
        graph.add_version(base)
        derived = derive_version(graph, base)
        assert diff_versions(base, derived) == []

    def test_attribute_change(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Length", 12)
        entries = diff_versions(base, derived)
        assert len(entries) == 1
        entry = entries[0]
        assert entry.path == "Length" and entry.old == 10 and entry.new == 12

    def test_subclass_growth(self, db, graph):
        base = make_interface(db)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.subclass("Pins").create(InOut="IN")
        entries = diff_versions(base, derived)
        size_entries = [e for e in entries if e.kind == "size"]
        assert len(size_entries) == 1
        entry = size_entries[0]
        assert entry.path == "Pins" and entry.old == 3 and entry.new == 4

    def test_nested_member_change(self, db, graph):
        base = make_interface(db)
        graph.add_version(base)
        derived = derive_version(graph, base)
        pin = derived.subclass("Pins").members()[0]
        pin.set_attribute("PinLocation", (9, 9))
        entries = diff_versions(base, derived)
        assert len(entries) == 1
        assert entries[0].path.startswith("Pins[0].PinLocation")

    def test_diff_is_directional(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Length", 12)
        forward = diff_versions(base, derived)[0]
        backward = diff_versions(derived, base)[0]
        assert forward.old == backward.new and forward.new == backward.old

    def test_multiple_changes_sorted_paths(self, db, graph):
        base = make_interface(db, length=10, width=5)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Width", 6)
        derived.set_attribute("Length", 11)
        paths = [e.path for e in diff_versions(base, derived)]
        assert paths == ["Length", "Width"]

    def test_str_rendering(self, db, graph):
        base = make_interface(db, length=10)
        graph.add_version(base)
        derived = derive_version(graph, base)
        derived.set_attribute("Length", 12)
        assert "10 -> 12" in str(diff_versions(base, derived)[0])


class TestDesignFlow:
    def test_iterate_release_iterate(self, db, graph):
        """The full §6 loop: derive, modify, diff, release, derive again."""
        v1 = make_interface(db, length=10)
        graph.add_version(v1)
        v2 = derive_version(graph, v1)
        v2.set_attribute("Length", 12)
        assert [e.path for e in diff_versions(v1, v2)] == ["Length"]
        graph.release(v2)
        v3 = derive_version(graph, v2)
        v3.subclass("Pins").create(InOut="IN")
        assert graph.history_of(v3) == [v1, v2, v3]
        assert len(diff_versions(v2, v3)) == 1
        assert graph.leaves() == [v3]
