"""Synthetic gate-design workloads.

The paper's evaluation substrate substitute: deterministic, parameterised
generators for the §3/§4 chip-design world, used by the examples and the
benchmark harness.  All structure matches the paper's figures — interfaces
with pins, implementations, composite gates built from interface
components, wires obeying the Figure 1 restriction.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..composition import add_component
from ..ddl.paper import load_gate_schema
from ..engine.database import Database

__all__ = [
    "gate_database",
    "make_interface",
    "make_implementation",
    "make_flipflop",
    "generate_library",
    "generate_composite",
    "generate_component_tree",
]


def gate_database(name: str = "gates", record_events: bool = False) -> Database:
    """A fresh database with the paper's gate schema loaded."""
    db = Database(name, record_events=record_events)
    load_gate_schema(db.catalog)
    return db


def make_interface(
    db: Database, length: int = 10, width: int = 5, n_in: int = 2, n_out: int = 1
) -> "DBObject":
    """A GateInterface with the given expansion and pin counts."""
    iface = db.create_object("GateInterface", Length=length, Width=width)
    pins = iface.subclass("Pins")
    for i in range(n_in):
        pins.create(InOut="IN", PinLocation={"X": 0, "Y": i})
    for i in range(n_out):
        pins.create(InOut="OUT", PinLocation={"X": length, "Y": i})
    return iface


def make_implementation(db: Database, interface, time_behavior: int = 1):
    """A GateImplementation bound to ``interface``."""
    return db.create_object(
        "GateImplementation",
        transmitter=interface,
        TimeBehavior=time_behavior,
        Function=[[True, False], [False, True]],
    )


def make_flipflop(db: Database):
    """Figure 1: the complex object "Flip-Flop" — a Gate built from two
    cross-coupled NAND ElementaryGates with pins wired across nesting
    levels.  Returns (flipflop, subgates)."""
    ff = db.create_object("Gate", Length=40, Width=20, Function=[[True], [False]])
    ext_pins = ff.subclass("Pins")
    set_pin = ext_pins.create(InOut="IN", PinLocation={"X": 0, "Y": 0})
    reset_pin = ext_pins.create(InOut="IN", PinLocation={"X": 0, "Y": 10})
    q_pin = ext_pins.create(InOut="OUT", PinLocation={"X": 40, "Y": 0})
    qbar_pin = ext_pins.create(InOut="OUT", PinLocation={"X": 40, "Y": 10})

    subgates = []
    for index in range(2):
        nand = ff.subclass("SubGates").create(
            Length=10,
            Width=5,
            Function="NAND",
            GatePosition={"X": 15, "Y": index * 10},
        )
        nand.subclass("Pins").create(InOut="IN", PinLocation={"X": 0, "Y": 0})
        nand.subclass("Pins").create(InOut="IN", PinLocation={"X": 0, "Y": 2})
        nand.subclass("Pins").create(InOut="OUT", PinLocation={"X": 10, "Y": 1})
        subgates.append(nand)

    def pins_of(gate, direction):
        return [p for p in gate.subclass("Pins") if p["InOut"] == direction]

    wires = ff.subrel("Wires")
    top_in, bottom_in = pins_of(subgates[0], "IN"), pins_of(subgates[1], "IN")
    top_out, bottom_out = pins_of(subgates[0], "OUT")[0], pins_of(subgates[1], "OUT")[0]
    wires.create({"Pin1": set_pin, "Pin2": top_in[0]})
    wires.create({"Pin1": reset_pin, "Pin2": bottom_in[0]})
    # The cross coupling of an SR latch.
    wires.create({"Pin1": top_out, "Pin2": bottom_in[1]})
    wires.create({"Pin1": bottom_out, "Pin2": top_in[1]})
    wires.create({"Pin1": top_out, "Pin2": q_pin})
    wires.create({"Pin1": bottom_out, "Pin2": qbar_pin})
    return ff, subgates


def generate_library(
    db: Database,
    n_interfaces: int,
    implementations_per_interface: int = 2,
    seed: int = 7,
) -> Tuple[List, List]:
    """A gate library: interfaces plus implementations for each.

    Returns (interfaces, implementations), deterministic for a seed.
    """
    rng = random.Random(seed)
    interfaces = []
    implementations = []
    for i in range(n_interfaces):
        iface = make_interface(
            db,
            length=rng.randrange(10, 100),
            width=rng.randrange(5, 50),
            n_in=rng.randrange(1, 4),
        )
        interfaces.append(iface)
        for j in range(implementations_per_interface):
            implementations.append(
                make_implementation(db, iface, time_behavior=rng.randrange(1, 20))
            )
    return interfaces, implementations


def generate_composite(
    db: Database, component_interfaces, n_components: int, seed: int = 11
):
    """A composite GateImplementation using ``n_components`` components
    drawn from ``component_interfaces`` (with reuse)."""
    rng = random.Random(seed)
    own_if = make_interface(db, length=200, width=100, n_in=4)
    composite = make_implementation(db, own_if)
    for index in range(n_components):
        component = rng.choice(component_interfaces)
        add_component(
            composite,
            "SubGates",
            component,
            GateLocation={"X": index * 10, "Y": (index * 7) % 90},
        )
    return composite


def generate_component_tree(
    db: Database, depth: int, fanout: int = 2
) -> Tuple["DBObject", int]:
    """A composite hierarchy ``depth`` levels deep with ``fanout`` children
    per level.  Returns (top implementation, total components created)."""
    created = 0

    def build(level: int):
        nonlocal created
        iface = make_interface(db, length=10 + level, width=5)
        impl = make_implementation(db, iface)
        created += 1
        if level < depth:
            for index in range(fanout):
                child_iface, _ = build(level + 1)
                add_component(
                    impl, "SubGates", child_iface,
                    GateLocation={"X": index, "Y": level},
                )
        return iface, impl

    top_iface, top_impl = build(0)
    return top_impl, created
