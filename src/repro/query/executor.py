"""Query execution over a database."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core import resolution as _resolution
from ..core.objects import DBObject
from ..engine.database import Database
from ..errors import QueryError, UnknownTypeError
from ..expr import MISSING, EvalContext, truthy
from .parser import QuerySpec, parse_query

__all__ = ["QueryResult", "execute_query", "run_query"]


@dataclass
class QueryResult:
    """The outcome of one query.

    ``columns`` are the projection source texts (``["*"]`` for object
    queries); ``rows`` are value tuples aligned with the columns; for
    ``select *`` queries ``objects`` carries the matching objects and each
    row is the one-element tuple of the object.
    """

    spec: QuerySpec
    columns: List[str]
    rows: List[Tuple[Any, ...]]
    objects: Optional[List[DBObject]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalars(self) -> List[Any]:
        """First-column values — convenient for single-column queries."""
        return [row[0] for row in self.rows]

    def __repr__(self) -> str:
        return f"<QueryResult {self.spec.text!r} rows={len(self.rows)}>"


def _candidates(db: Database, name: str) -> List[DBObject]:
    try:
        return db.class_(name).members()
    except UnknownTypeError:
        pass
    try:
        type_ = db.catalog.type(name)
    except UnknownTypeError:
        raise QueryError(
            f"{name!r} names neither a class nor a type in this database"
        ) from None
    return db.objects_of_type(type_)


def _sort_key(value: Any):
    # MISSING/None order last; mixed types order by type name to stay total.
    if value is MISSING or value is None:
        return (2, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (0, "", value)
    return (1, type(value).__name__, str(value))


def execute_query(db: Database, spec: QuerySpec) -> QueryResult:
    """Run a parsed query against a database."""
    obs = getattr(db, "obs", None)
    if obs is None:
        return _execute(db, spec, None)
    with obs.tracer.span(
        "query.execute", source=spec.source_name, text=spec.text
    ) as span:
        result = _execute(db, spec, obs)
        span.set(rows=len(result.rows))
    return result


def _execute(db: Database, spec: QuerySpec, obs) -> QueryResult:
    matches: List[DBObject] = []
    scanned = 0
    # Resolve each candidate type's plan once up front (not per object):
    # the where/order/projection evaluation then always hits valid plans.
    warmed: set = set()
    for obj in _candidates(db, spec.source_name):
        if obj.deleted:
            continue
        object_type = obj.object_type
        if id(object_type) not in warmed:
            warmed.add(id(object_type))
            _resolution.plan_for(object_type, obs)
        scanned += 1
        if spec.where is not None:
            if not truthy(spec.where.evaluate(EvalContext(obj))):
                continue
        matches.append(obj)

    if obs is not None:
        obs.metrics.counter("query.executed").inc()
        obs.metrics.counter("query.rows_scanned").inc(scanned)
        obs.metrics.counter("query.rows_matched").inc(len(matches))

    if spec.order_by is not None:
        matches.sort(
            key=lambda obj: _sort_key(spec.order_by.evaluate(EvalContext(obj))),
            reverse=spec.descending,
        )

    if spec.limit is not None:
        matches = matches[: spec.limit]

    if spec.projection is None:
        rows = [(obj,) for obj in matches]
        if spec.distinct:
            seen = set()
            unique_rows = []
            unique_objects = []
            for obj in matches:
                if obj.surrogate not in seen:
                    seen.add(obj.surrogate)
                    unique_rows.append((obj,))
                    unique_objects.append(obj)
            return QueryResult(spec, ["*"], unique_rows, unique_objects)
        return QueryResult(spec, ["*"], rows, matches)

    rows = []
    for obj in matches:
        ctx = EvalContext(obj)
        row = tuple(
            None if (value := node.evaluate(ctx)) is MISSING else value
            for _, node in spec.projection
        )
        rows.append(row)
    if spec.distinct:
        seen_rows = set()
        unique = []
        for row in rows:
            try:
                key = row
                if key not in seen_rows:
                    seen_rows.add(key)
                    unique.append(row)
            except TypeError:  # unhashable projection value
                if row not in unique:
                    unique.append(row)
        rows = unique
    return QueryResult(spec, spec.column_names, rows)


def run_query(db: Database, text: str) -> QueryResult:
    """Parse and execute query text in one step."""
    return execute_query(db, parse_query(text))
