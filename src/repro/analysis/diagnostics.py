"""Diagnostic records and the rule registry.

Every finding the static analyzer (or the runtime integrity checker, once
folded through the same emitters) produces is a :class:`Diagnostic` with a
stable rule code.  Codes are partitioned by namespace:

* ``REP0xx`` — runtime integrity invariants (``engine/integrity.py``);
* ``REP1xx`` — schema-graph structure (cycles, dangling references, arity);
* ``REP2xx`` — resolution and permeability (diamonds, holes, shadows);
* ``REP3xx`` — composition (recursive composites, subrel restrictions);
* ``REP4xx`` — transactions and lock ordering;
* ``REP5xx`` — query and index advisories;
* ``REP6xx`` — engine concurrency invariants: the self-lint over the
  repo's *own source* (``analysis/engine_lint.py``) and the static
  lock-order analysis (``analysis/lockorder.py``).  These rules anchor in
  Python source files, not DDL — the same :class:`SourceLocation` carries
  ``path:line`` either way.

Severities: ``error`` predicts a schema-build or runtime failure,
``warning`` flags legal-but-surprising semantics (the engine resolves them
deterministically), ``advice`` is stylistic or performance guidance.  The
differential verifier (:mod:`repro.analysis.verify`) holds the analyzer to
that contract: every error must correspond to an actual failure on a
synthesized instance, and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ERROR",
    "WARNING",
    "ADVICE",
    "SEVERITIES",
    "SourceLocation",
    "Diagnostic",
    "RuleInfo",
    "RULES",
    "register_rule",
    "rule_info",
    "severity_rank",
    "filter_diagnostics",
    "sort_diagnostics",
    "count_by_severity",
]

ERROR = "error"
WARNING = "warning"
ADVICE = "advice"

#: Severities from most to least severe; index is the sort rank.
SEVERITIES: Tuple[str, ...] = (ERROR, WARNING, ADVICE)


def severity_rank(severity: str) -> int:
    """0 for error, 1 for warning, 2 for advice (unknown sorts last)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        return len(SEVERITIES)


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding anchors in DDL source, when known."""

    path: Optional[str] = None
    line: Optional[int] = None

    def render(self) -> str:
        path = self.path or "<schema>"
        return f"{path}:{self.line}" if self.line is not None else path


@dataclass(frozen=True)
class RuleInfo:
    """Registry metadata of one rule code."""

    code: str
    slug: str
    severity: str
    summary: str


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``severity`` may differ from the rule's default (a rule can downgrade a
    variant it knows the engine tolerates).  ``subject`` names the type,
    member or object the finding is about; ``hint`` is an optional fix-it.
    """

    code: str
    severity: str
    message: str
    subject: str = ""
    location: Optional[SourceLocation] = None
    hint: Optional[str] = None

    @property
    def rule(self) -> Optional[RuleInfo]:
        return RULES.get(self.code)

    def render(self) -> str:
        where = (self.location or SourceLocation()).render()
        return f"{where}: {self.severity} {self.code} {self.message}"


#: Code → metadata for every known rule (static and runtime namespaces).
RULES: Dict[str, RuleInfo] = {}


def register_rule(code: str, slug: str, severity: str, summary: str) -> RuleInfo:
    """Register a rule code; codes are unique and stable across releases."""
    if code in RULES:
        raise ValueError(f"rule code {code!r} registered twice")
    if severity not in SEVERITIES:
        raise ValueError(f"rule {code!r}: unknown severity {severity!r}")
    info = RuleInfo(code, slug, severity, summary)
    RULES[code] = info
    return info


def rule_info(code: str) -> RuleInfo:
    try:
        return RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}") from None


def _matches(code: str, patterns: Sequence[str]) -> bool:
    """Prefix matching as in other linters: ``REP2`` selects all REP2xx."""
    return any(code.startswith(pattern) for pattern in patterns)


def filter_diagnostics(
    diagnostics: Iterable[Diagnostic],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Keep codes matching ``select`` (all when empty) minus ``ignore``."""
    kept = []
    for diagnostic in diagnostics:
        if select and not _matches(diagnostic.code, select):
            continue
        if ignore and _matches(diagnostic.code, ignore):
            continue
        kept.append(diagnostic)
    return kept


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: severity, then code, then source line, then subject."""
    return sorted(
        diagnostics,
        key=lambda d: (
            severity_rank(d.severity),
            d.code,
            (d.location.line if d.location and d.location.line is not None else 1 << 30),
            d.subject,
            d.message,
        ),
    )


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {severity: 0 for severity in SEVERITIES}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# the rule catalog (docs/analysis.md mirrors this table)
# ---------------------------------------------------------------------------

# REP0xx — runtime integrity invariants (engine/integrity.py kinds).
register_rule("REP001", "registry-invariant", ERROR,
              "Object registry invariant broken (deleted/foreign/mis-keyed object)")
register_rule("REP002", "containment-invariant", ERROR,
              "Containment invariant broken (parent/container disagreement, shared member)")
register_rule("REP003", "relationship-invariant", ERROR,
              "Relationship invariant broken (deleted participant, missing back-reference)")
register_rule("REP004", "inheritance-invariant", ERROR,
              "Inheritance-link invariant broken (endpoint mismatch, vanished member, object cycle)")
register_rule("REP005", "class-invariant", ERROR,
              "Class-extent invariant broken (untracked/deleted/non-conforming member)")
register_rule("REP006", "constraint-violation", ERROR,
              "A value constraint does not hold on the loaded image")

# REP1xx — schema graph.
register_rule("REP100", "schema-build-failure", ERROR,
              "The schema fails to build for a reason no specific rule predicted")
register_rule("REP101", "inheritance-cycle", ERROR,
              "Type-level inheritance cycle through inheritor-in declarations")
register_rule("REP102", "unknown-reference", ERROR,
              "Reference to a type or domain that is never declared")
register_rule("REP103", "relationship-arity", ERROR,
              "Relationship type with no roles, clashing roles, or no transmitter")
register_rule("REP104", "bad-inheriting-clause", ERROR,
              "Inheritance relationship with an empty or duplicated inheriting clause")
register_rule("REP105", "duplicate-declaration", ERROR,
              "Type, member or domain declared more than once")
register_rule("REP106", "end-name-mismatch", ADVICE,
              "end <name> does not match the declaration it closes")
register_rule("REP107", "reference-kind-mismatch", ERROR,
              "Reference resolves to a declaration of the wrong kind")
register_rule("REP108", "forward-reference", ERROR,
              "Reference to a type declared later in the schema (only inheritor "
              "restrictions may be forward)")

# REP2xx — resolution / permeability.
register_rule("REP201", "permeability-hole", ERROR,
              "inheriting names a member the transmitter type does not have")
register_rule("REP202", "local-shadow", ERROR,
              "Type declares a member locally and also inherits it")
register_rule("REP203", "diamond-ambiguity", WARNING,
              "Member permeable through several inheritance relationships; "
              "declaration order decides")
register_rule("REP204", "diamond-domain-conflict", WARNING,
              "Diamond whose competing transmitters type the member differently")
register_rule("REP205", "inheritor-restriction-bypass", WARNING,
              "inheritor-in declared by a type outside the relationship's "
              "inheritor restriction")
register_rule("REP206", "constraint-unknown-member", WARNING,
              "Constraint references a name not visible at the anchoring type")
register_rule("REP207", "constraint-syntax-error", ERROR,
              "Constraint or where clause does not parse")

# REP3xx — composition.
register_rule("REP301", "composite-recursion", WARNING,
              "Composite type reachable from itself through subclass containment")
register_rule("REP302", "subrel-where-unknown-name", WARNING,
              "Subrel where clause references a name outside its binding scope")

# REP4xx — transactions / locking.
register_rule("REP401", "lock-order-cycle", WARNING,
              "Lock-inheritance and composition lock scopes form a cycle "
              "(potential deadlock between expansion and inherited-read plans)")

# REP5xx — query / index advisories.
register_rule("REP501", "unindexed-sargable-attribute", ADVICE,
              "Workload query filters on an attribute with no value index")
register_rule("REP502", "unknown-query-source", ERROR,
              "Workload query selects from a name that is neither class nor type")
register_rule("REP503", "query-unresolved-name", ADVICE,
              "Workload query references a name the source type cannot resolve")
register_rule("REP504", "constraint-not-compilable", ADVICE,
              "Constraint has dynamic free names, so it cannot compile to a "
              "slot program and evaluates through the interpretive fallback")
register_rule("REP505", "view-ineligible-member", ADVICE,
              "Inherited member cannot materialize into a per-type view "
              "column (container member; queries resolve it per object)")

# REP6xx — engine concurrency invariants (the engine's own source).
register_rule("REP601", "raw-attrs-write-without-epoch", WARNING,
              "Direct obj._attrs[...] mutation whose enclosing function "
              "never bumps _mutation_epoch — memoised readers and value "
              "indexes will serve the stale value")
register_rule("REP602", "event-outside-bus", WARNING,
              "Event constructed outside the event bus — it bypasses the "
              "cause-stack stamping every audit consumer relies on")
register_rule("REP603", "lock-release-not-in-finally", ERROR,
              "Lock acquire/release pair where the release is not in a "
              "finally block — an exception between them leaks the lock "
              "and strands every parked waiter")
register_rule("REP604", "unsnapshotted-shared-iteration", WARNING,
              "Iteration over shared engine state (_locks/_waits_for/"
              "_by_txn) outside the table mutex and without snapshotting "
              "— mutation during iteration raises RuntimeError under "
              "concurrency")
register_rule("REP610", "static-lock-order-cycle", WARNING,
              "Two mutexes are acquired in both orders on different code "
              "paths — a potential ABBA deadlock")
register_rule("REP611", "blocking-call-under-lock", WARNING,
              "Blocking call (sleep/join/wait with no timeout/IO) while "
              "holding a mutex — stalls every thread contending for it")
register_rule("REP612", "reentrant-lock-acquire", ERROR,
              "A non-reentrant mutex may be acquired while already held "
              "on the same path — self-deadlock")


def make(code: str, message: str, *, subject: str = "",
         location: Optional[SourceLocation] = None,
         hint: Optional[str] = None,
         severity: Optional[str] = None) -> Diagnostic:
    """Build a diagnostic for a registered code (severity defaults from it)."""
    info = rule_info(code)
    return Diagnostic(
        code=code,
        severity=severity or info.severity,
        message=message,
        subject=subject,
        location=location,
        hint=hint,
    )
