"""Lock manager with member-scoped locks.

§6 motivates two refinements over plain object locking:

* **lock inheritance** — "Accessing the data of a composite object which
  are inherited from a component requires to prevent the component also
  from being updated.  Thus, the parts of the component which are visible
  in the composite object have to be read-locked …";
* **partial locks** — "only these parts of the standard cells are locked
  in read-mode", so heavily shared standard objects stay usable.

Both need locks scoped to a *subset of members*, not whole objects.  A lock
here is ``(surrogate, mode, scope)`` where ``scope`` is a frozenset of
member names or ``None`` for the whole object.  Two locks conflict when
their modes conflict **and** their scopes overlap (``None`` overlaps
everything).

The manager supports two conflict policies:

* **non-blocking** (the default, ``wait=False``) — a conflicting request
  raises :class:`~repro.errors.LockConflictError` immediately, leaving
  retry/abort policy to the design session: the interactive setting the
  paper assumes, where blocking a designer for hours is worse than telling
  them who holds the lock;
* **blocking** (``wait=True``) — the request parks on the table's
  condition variable until every conflicting holder releases, or until
  ``timeout`` seconds elapse (:class:`~repro.errors.LockTimeoutError`).
  This is the service-tier posture: sessions queue instead of failing.
  Granting never reorders — a woken waiter re-checks against whatever is
  granted at wake time.

The table is thread-safe (one mutex guards every mutation) and, when an
:class:`~repro.obs.Observability` bundle is attached, emits the contention
telemetry the flight recorder and health rules consume: ``locks.*``
counters, the ``locks.wait_seconds`` histogram, a live **waits-for** edge
set (:meth:`LockTable.waits_for`), and ``lock.blocked`` / ``lock.granted``
/ ``lock.timeout`` / ``lock.deadlock`` records on the audit stream.
Blocking requests that would close a waits-for cycle are refused up front
with :class:`~repro.errors.DeadlockError` instead of waiting forever.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.surrogate import Surrogate
from ..errors import DeadlockError, LockConflictError, LockTimeoutError

__all__ = [
    "LockMode",
    "LockEntry",
    "LockTable",
    "scopes_overlap",
    "WAIT_BUCKETS",
]

#: Race-sanitizer guard (:mod:`repro.obs.race`): ``None`` when dark, the
#: active sanitizer while enabled.  The table reports its own state
#: mutations (serialised through the mutex sync key) and models grants
#: and releases as happens-before edges, so code protected by *engine*
#: locks is race-clean to the sanitizer exactly when it is in reality.
TSAN: Any = None

#: Bucket edges (seconds) for the ``locks.wait_seconds`` histogram —
#: 100µs to 5s, the plausible span between "woken on the next release"
#: and "the holder is a design session, give up".
WAIT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class LockMode:
    """Lock modes: shared (read) and exclusive (write)."""

    S = "S"
    X = "X"

    @staticmethod
    def compatible(a: str, b: str) -> bool:
        return a == LockMode.S and b == LockMode.S

    @staticmethod
    def stronger(a: str, b: str) -> str:
        return LockMode.X if LockMode.X in (a, b) else LockMode.S


Scope = Optional[FrozenSet[str]]


def scopes_overlap(a: Scope, b: Scope) -> bool:
    """Whole-object scope (None) overlaps everything; sets must intersect."""
    if a is None or b is None:
        return True
    return bool(a & b)


@dataclass
class LockEntry:
    """One granted lock of one transaction on one object."""

    txn_id: int
    mode: str
    scope: Scope

    def conflicts_with(self, mode: str, scope: Scope) -> bool:
        return not LockMode.compatible(self.mode, mode) and scopes_overlap(
            self.scope, scope
        )


class LockTable:
    """All granted locks, indexed by object surrogate.

    ``obs`` optionally attaches a :class:`repro.obs.Observability` bundle;
    when present, grants, conflicts, waits, timeouts and scope sizes are
    recorded in its metrics registry (``locks.*``) and blocking events are
    stamped onto the audit stream.  ``wait_timeout`` is the default
    timeout (seconds) for blocking requests that don't pass their own;
    ``None`` waits forever.
    """

    def __init__(self, obs=None, wait_timeout: Optional[float] = None) -> None:
        self._locks: Dict[Surrogate, List[LockEntry]] = {}
        self._by_txn: Dict[int, List[Tuple[Surrogate, LockEntry]]] = {}
        #: Cooperative groups: transactions in the same group never
        #: conflict with each other (design teams sharing a checkout,
        #: the "advanced transaction mechanisms" of §6's references).
        self._groups: Dict[int, int] = {}
        #: One mutex + condition for the whole table: waiters park here
        #: and every release wakes them for a re-check.  The raw Lock is
        #: kept alongside the Condition so hot paths enter it directly
        #: (C-level) instead of through Condition.__enter__'s Python-level
        #: delegation; both names guard the same lock and no method
        #: re-enters it.
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        #: Live waits-for edges: blocked txn -> the holders blocking it.
        #: Maintained only while a blocking request is parked; drained on
        #: grant, timeout and deadlock refusal alike.
        self._waits_for: Dict[int, Set[int]] = {}
        self.wait_timeout = wait_timeout
        self.obs = obs

    def set_group(self, txn_id: int, group_id: Optional[int]) -> None:
        """Place a transaction in a cooperative group (None removes it)."""
        with self._mutex:
            if group_id is None:
                self._groups.pop(txn_id, None)
            else:
                self._groups[txn_id] = group_id
            # Group membership relaxes conflicts: parked waiters re-check.
            if self._waits_for:
                self._cond.notify_all()

    def _same_owner(self, a: int, b: int) -> bool:
        if a == b:
            return True
        group_a = self._groups.get(a)
        return group_a is not None and group_a == self._groups.get(b)

    # -- conflict machinery (call with the mutex held) ----------------------------

    def _blockers(
        self,
        entries: List[LockEntry],
        txn_id: int,
        mode: str,
        scope: Scope,
    ) -> List[LockEntry]:
        """Every granted entry the request conflicts with."""
        return [
            entry
            for entry in entries
            if not self._same_owner(entry.txn_id, txn_id)
            and entry.conflicts_with(mode, scope)
        ]

    def _would_deadlock(self, waiter: int, holders: Set[int]) -> bool:
        """Would parking ``waiter`` behind ``holders`` close a cycle?

        Follows the live waits-for edges from each blocking holder; if any
        path leads back to the waiter, granting the wait would deadlock.
        """
        stack = list(holders)
        seen: Set[int] = set()
        while stack:
            txn = stack.pop()
            if txn == waiter:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False

    def _note_conflict(self, mode: str, origin: Optional[str]) -> None:
        if self.obs is not None:
            # The non-blocking manager's equivalent of a lock wait.
            self.obs.metrics.counter("locks.conflicts").inc()
            self.obs.metrics.counter(f"locks.conflicts.{mode}").inc()
            if origin is not None:
                self.obs.metrics.counter(f"locks.conflicts.{origin}").inc()

    def _audit(self, kind: str, subject: Any, **detail: Any) -> None:
        obs = self.obs
        if obs is not None:
            audit = obs.audit
            if audit is not None:
                audit.record(kind, subject, **detail)

    # -- acquisition ---------------------------------------------------------------

    def acquire(
        self,
        txn_id: int,
        surrogate: Surrogate,
        mode: str,
        scope: Scope = None,
        wait: bool = False,
        timeout: Optional[float] = None,
        origin: Optional[str] = None,
    ) -> LockEntry:
        """Grant a lock, or raise — immediately or after waiting.

        A transaction's own locks never conflict; re-requests merge into
        the existing entry (scope union, stronger mode), which also
        implements the S→X upgrade when no other holder blocks it.  The
        conflict check runs against the would-be **merged** entry — an
        upgrade that strengthens the mode must re-justify the transaction's
        *entire* scope, otherwise a reader of a disjoint member could be
        silently overrun (conservative, and safe).

        ``wait=False`` (default) raises :class:`LockConflictError` on
        conflict.  ``wait=True`` parks on the table's condition variable
        until grantable; ``timeout`` (or the table's ``wait_timeout``)
        bounds the wait (:class:`LockTimeoutError` on expiry), and a
        request whose wait would close a waits-for cycle raises
        :class:`DeadlockError` without waiting.  A ``timeout`` of zero
        (or negative) is a **non-blocking probe**: try once, then
        :class:`LockTimeoutError` — it never parks, never registers a
        waits-for edge and is exempt from the deadlock pre-check (a
        probe cannot close a cycle because it never waits).  ``origin``
        tags conflict and wait counters (``locks.conflicts.<origin>``)
        so lock-inheritance and expansion contention are separable in
        metrics.
        """
        san = TSAN
        with self._mutex:
            if san is not None:
                san.write(
                    ("locktable", id(self)), label="locktable",
                    sync=("mutex", id(self)),
                )
            entries = self._locks.setdefault(surrogate, [])
            own = next((e for e in entries if e.txn_id == txn_id), None)
            if own is not None:
                requested_mode = LockMode.stronger(own.mode, mode)
                if own.scope is None or scope is None:
                    requested_scope: Scope = None
                else:
                    requested_scope = frozenset(own.scope | scope)
            else:
                requested_mode = mode
                requested_scope = None if scope is None else frozenset(scope)

            # Inline blocker scan: entries is almost always empty or just
            # this transaction's own lock, so the uncontended acquire must
            # not pay a call + list build (this path prices every locked
            # read in E9).
            blockers: List[LockEntry] = []
            for entry in entries:
                if not self._same_owner(
                    entry.txn_id, txn_id
                ) and entry.conflicts_with(requested_mode, requested_scope):
                    blockers.append(entry)
            if blockers:
                self._note_conflict(requested_mode, origin)
                if not wait:
                    raise self._conflict_error(
                        surrogate, requested_mode, requested_scope, blockers[0]
                    )
                effective = timeout if timeout is not None else self.wait_timeout
                if effective is not None and effective <= 0:
                    # try-once probe: no parking, no waits-for edge, no
                    # deadlock pre-check, no lock.blocked audit — the
                    # request never waits, so none of the parked-waiter
                    # machinery applies.
                    if self.obs is not None:
                        self.obs.metrics.counter("locks.timeouts").inc()
                    self._audit(
                        "lock.timeout", surrogate,
                        txn=txn_id,
                        holders=sorted({e.txn_id for e in blockers}),
                        mode=requested_mode, waited=0.0,
                    )
                    raise self._conflict_error(
                        surrogate, requested_mode, requested_scope,
                        blockers[0], timed_out=0.0,
                    )
                self._wait_for_grant(
                    txn_id, surrogate, requested_mode, requested_scope,
                    blockers, timeout, origin,
                )
                # Woken grantable: the entry list may have been replaced
                # while parked (all locks on the surrogate released).
                entries = self._locks.setdefault(surrogate, [])
                own = next((e for e in entries if e.txn_id == txn_id), None)

            if self.obs is not None:
                self.obs.metrics.counter("locks.acquired").inc()
                self.obs.metrics.counter(f"locks.acquired.{requested_mode}").inc()
                if requested_scope is None:
                    self.obs.metrics.counter("locks.whole_object").inc()
                else:
                    self.obs.metrics.histogram("locks.scope_size").observe(
                        len(requested_scope)
                    )
            if san is not None:
                san.lock_acquired(("lock", id(self), surrogate))
            if own is not None:
                own.mode = requested_mode
                own.scope = requested_scope
                return own
            entry = LockEntry(txn_id, requested_mode, requested_scope)
            entries.append(entry)
            self._by_txn.setdefault(txn_id, []).append((surrogate, entry))
            return entry

    def _conflict_error(
        self,
        surrogate: Surrogate,
        mode: str,
        scope: Scope,
        blocker: LockEntry,
        timed_out: Optional[float] = None,
    ) -> LockConflictError:
        suffix = (
            f"; timed out after {timed_out:.3f}s" if timed_out is not None else ""
        )
        message = (
            f"lock {mode} on {surrogate} (scope "
            f"{sorted(scope) if scope else 'ALL'}) "
            f"conflicts with {blocker.mode} held by transaction "
            f"{blocker.txn_id}{suffix}"
        )
        cls = LockTimeoutError if timed_out is not None else LockConflictError
        return cls(message, holder=blocker.txn_id, surrogate=surrogate)

    def _wait_for_grant(
        self,
        txn_id: int,
        surrogate: Surrogate,
        mode: str,
        scope: Scope,
        blockers: List[LockEntry],
        timeout: Optional[float],
        origin: Optional[str],
    ) -> None:
        """Park until no granted entry conflicts (mutex held throughout —
        :meth:`threading.Condition.wait` releases it while parked).

        Raises :class:`DeadlockError` up front when the new waits-for
        edges would close a cycle, :class:`LockTimeoutError` on expiry.
        On every outcome the waiter's edges are drained.
        """
        holders = {entry.txn_id for entry in blockers}
        if self._would_deadlock(txn_id, holders):
            if self.obs is not None:
                self.obs.metrics.counter("locks.deadlocks").inc()
            self._audit(
                "lock.deadlock", surrogate,
                txn=txn_id, holders=sorted(holders), mode=mode,
            )
            raise DeadlockError(
                f"granting {mode} on {surrogate} to transaction {txn_id} "
                f"would close a waits-for cycle through "
                f"{sorted(holders)}",
                holder=blockers[0].txn_id,
                surrogate=surrogate,
            )
        if timeout is None:
            timeout = self.wait_timeout
        obs = self.obs
        if obs is not None:
            obs.metrics.counter("locks.waits").inc()
            if origin is not None:
                obs.metrics.counter(f"locks.waits.{origin}").inc()
            obs.metrics.gauge("locks.waiting").inc()
        self._audit(
            "lock.blocked", surrogate,
            txn=txn_id, holders=sorted(holders), mode=mode,
            timeout=timeout,
        )
        started = perf_counter()
        deadline = None if timeout is None else started + timeout
        self._waits_for[txn_id] = holders
        try:
            while True:
                remaining = None
                if deadline is not None:
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        waited = perf_counter() - started
                        if obs is not None:
                            obs.metrics.counter("locks.timeouts").inc()
                            obs.metrics.histogram(
                                "locks.wait_seconds", WAIT_BUCKETS
                            ).observe(waited)
                        self._audit(
                            "lock.timeout", surrogate,
                            txn=txn_id, holders=sorted(holders),
                            mode=mode, waited=waited,
                        )
                        raise self._conflict_error(
                            surrogate, mode, scope, blockers[0],
                            timed_out=waited,
                        )
                self._cond.wait(remaining)
                entries = self._locks.get(surrogate, [])
                blockers = self._blockers(entries, txn_id, mode, scope)
                if not blockers:
                    break
                holders = {entry.txn_id for entry in blockers}
                self._waits_for[txn_id] = holders
                if self._would_deadlock(txn_id, holders):
                    if obs is not None:
                        obs.metrics.counter("locks.deadlocks").inc()
                    self._audit(
                        "lock.deadlock", surrogate,
                        txn=txn_id, holders=sorted(holders), mode=mode,
                    )
                    raise DeadlockError(
                        f"transaction {txn_id} waiting for {mode} on "
                        f"{surrogate} entered a waits-for cycle through "
                        f"{sorted(holders)}",
                        holder=blockers[0].txn_id,
                        surrogate=surrogate,
                    )
        finally:
            self._waits_for.pop(txn_id, None)
            if obs is not None:
                obs.metrics.gauge("locks.waiting").dec()
        waited = perf_counter() - started
        if obs is not None:
            obs.metrics.histogram(
                "locks.wait_seconds", WAIT_BUCKETS
            ).observe(waited)
            obs.metrics.counter("locks.grants_after_wait").inc()
        self._audit(
            "lock.granted", surrogate, txn=txn_id, mode=mode, waited=waited
        )

    # -- release -------------------------------------------------------------------

    def release_all(self, txn_id: int) -> int:
        """Drop every lock of a transaction; returns how many were held."""
        san = TSAN
        with self._mutex:
            if san is not None:
                san.write(
                    ("locktable", id(self)), label="locktable",
                    sync=("mutex", id(self)),
                )
            held = self._by_txn.pop(txn_id, [])
            if san is not None:
                for surrogate, _entry in held:
                    san.lock_released(("lock", id(self), surrogate))
            if self.obs is not None and held:
                self.obs.metrics.counter("locks.released").inc(len(held))
            for surrogate, entry in held:
                entries = self._locks.get(surrogate)
                if entries is not None:
                    try:
                        entries.remove(entry)
                    except ValueError:  # pragma: no cover - defensive
                        pass
                    if not entries:
                        del self._locks[surrogate]
            # Waiters always register their edges under the mutex before
            # parking, so an empty ``_waits_for`` means nobody to wake.
            if held and self._waits_for:
                self._cond.notify_all()
            return len(held)

    # -- inspection ----------------------------------------------------------------

    def holders(self, surrogate: Surrogate) -> List[LockEntry]:
        """Copy of the entries currently granted on one object."""
        with self._mutex:
            return list(self._locks.get(surrogate, []))

    def held_by(self, txn_id: int) -> List[Tuple[Surrogate, LockEntry]]:
        with self._mutex:
            return list(self._by_txn.get(txn_id, []))

    def lock_count(self) -> int:
        with self._mutex:
            return sum(len(entries) for entries in self._locks.values())

    def is_locked(self, surrogate: Surrogate) -> bool:
        with self._mutex:
            return bool(self._locks.get(surrogate))

    def waits_for(self) -> Set[Tuple[int, int]]:
        """The live waits-for edge set: ``(waiter, holder)`` pairs.

        Nonempty exactly while blocking requests are parked; drains as
        they are granted, time out or are refused as deadlocks.
        """
        with self._mutex:
            return {
                (waiter, holder)
                for waiter, holders in self._waits_for.items()
                for holder in holders
            }

    def waiting_count(self) -> int:
        """How many blocking requests are currently parked."""
        with self._mutex:
            return len(self._waits_for)

    def contention_snapshot(self) -> Dict[str, Any]:
        """A point-in-time view of the table for ``repro top``."""
        with self._mutex:
            return {
                "locked_objects": len(self._locks),
                "granted": sum(len(e) for e in self._locks.values()),
                "holding_transactions": len(self._by_txn),
                "waiting": len(self._waits_for),
                "waits_for": sorted(
                    (waiter, holder)
                    for waiter, holders in self._waits_for.items()
                    for holder in holders
                ),
            }
