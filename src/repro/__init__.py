"""repro — complex and composite objects for CAD/CAM databases.

A from-scratch implementation of the object model of

    W. Wilkes, P. Klahold, G. Schlageter:
    *Complex and Composite Objects in CAD/CAM Databases*,
    FernUniversität Hagen / ICDE 1989,

whose central mechanism is the **inheritance relationship**: a typed,
attributed relationship through which an inheritor object inherits selected
attributes of a transmitter object *together with their values*.  One
mechanism models interfaces, interface hierarchies and component
relationships of composite objects.

Quickstart::

    from repro import Database
    from repro.ddl.paper import load_gate_schema

    db = Database("gates")
    load_gate_schema(db.catalog)

    nand_if = db.create_object("GateInterface", Length=10, Width=5)
    nand_if.subclass("Pins").create(InOut="IN", PinLocation=(0, 0))
    nand_v1 = db.create_object("GateImplementation", transmitter=nand_if)
    assert nand_v1["Length"] == 10          # value inheritance
    nand_if.set_attribute("Length", 12)     # transmitter update ...
    assert nand_v1["Length"] == 12          # ... visible immediately

Subpackages: :mod:`repro.core` (the data model), :mod:`repro.expr`
(constraint language), :mod:`repro.ddl` (the paper's schema syntax),
:mod:`repro.engine` (catalog/database/persistence), :mod:`repro.composition`
(interfaces, composites, configurations), :mod:`repro.versions`,
:mod:`repro.txn`, :mod:`repro.consistency`, :mod:`repro.workloads`.
"""

from . import errors
from .core import (
    ANY,
    BOOLEAN,
    CHAR,
    INTEGER,
    IO,
    POINT,
    REAL,
    STRING,
    AttributeSpec,
    DBObject,
    Domain,
    EnumDomain,
    InheritanceLink,
    InheritanceRelationshipType,
    ListOf,
    MatrixOf,
    ObjectType,
    ParticipantSpec,
    RecordDomain,
    RecordValue,
    RelationshipObject,
    RelationshipType,
    SetOf,
    SubclassSpec,
    SubrelSpec,
    Surrogate,
    SurrogateGenerator,
    bind,
    new_object,
    new_relationship,
)
from .engine import Database, load, save

__version__ = "1.0.0"

__all__ = [
    "errors",
    "ANY",
    "BOOLEAN",
    "CHAR",
    "INTEGER",
    "IO",
    "POINT",
    "REAL",
    "STRING",
    "AttributeSpec",
    "DBObject",
    "Domain",
    "EnumDomain",
    "InheritanceLink",
    "InheritanceRelationshipType",
    "ListOf",
    "MatrixOf",
    "ObjectType",
    "ParticipantSpec",
    "RecordDomain",
    "RecordValue",
    "RelationshipObject",
    "RelationshipType",
    "SetOf",
    "SubclassSpec",
    "SubrelSpec",
    "Surrogate",
    "SurrogateGenerator",
    "bind",
    "new_object",
    "new_relationship",
    "Database",
    "load",
    "save",
    "__version__",
]
