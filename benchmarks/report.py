#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from a pytest-benchmark JSON export.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json \
        --obs-json=obs.json
    python benchmarks/report.py bench.json [obs.json] > EXPERIMENTS.md

The report groups results by experiment (benchmark module), renders a
mean/ops table per group, and carries the experiment commentary that maps
measurements back to the paper's claims.  When an observability export
(``--obs-json``, see ``benchmarks/obs_hook.py``) is passed as the second
argument, its metric snapshots — propagation fan-out, lock waits, cache
hit rates — are appended so BENCH_*.json captures more than wall-clock.
"""

from __future__ import annotations

import json
import sys
from collections import defaultdict
from typing import Dict, List

#: Experiment metadata: module stem -> (title, paper anchor, expected shape).
EXPERIMENTS = {
    "bench_fig1_complex_objects": (
        "E1 — Figure 1: complex objects (Gate / Flip-Flop)",
        "Figure 1, §3",
        "Construction, traversal, deep constraint checking and cascade "
        "deletion all grow linearly with the number of subobjects "
        "(compare the 10/50/200-subgate rows).",
    ),
    "bench_fig2_interface_propagation": (
        "E2 — Figure 2: interface → implementation propagation",
        "Figure 2, §4.2",
        "With value inheritance, an interface update costs the same at "
        "1, 10 and 100 implementations (readers delegate); the copy "
        "baseline's update cost grows with the fan-out, and it still "
        "needs a staleness scan the inheritance regime gets for free. "
        "The price is one delegation hop on inherited reads "
        "(inherited vs. local read rows).",
    ),
    "bench_fig3_composition": (
        "E3 — Figure 3: building composites",
        "Figure 3, §4.2",
        "Incorporating a component is O(1) in the component's size "
        "(3/30/120-pin rows are flat): the data is linked, not moved. "
        "Reading all component data grows with the number of slots.",
    ),
    "bench_fig4_expansion": (
        "E4 — Figure 4: expansion of composite hierarchies",
        "Figure 4, §4.2/§6",
        "Expansion cost tracks the number of objects materialised — "
        "exponential in depth for a fixed fan-out tree; depth-limited "
        "expansion cuts it correspondingly.",
    ),
    "bench_fig5_steel_constraints": (
        "E5 — Figure 5 / §5: steel-construction constraints",
        "Figure 5, §5",
        "Deep constraint checking grows linearly with the number of "
        "screwings; one ScrewingType evaluation (two counts, a nested "
        "quantifier, an aggregate) is the unit cost.  The structure-level "
        "where restriction grows with the number of bores joined.",
    ),
    "bench_e6_copy_vs_view_vs_inherit": (
        "E6 — §2 ablation: copy vs. view vs. inheritance composition",
        "§2",
        "Copy incorporation grows with component size; view and "
        "inheritance stay flat.  After a component update the copy reads "
        "stale data (fast but wrong); view and inheritance read fresh "
        "values through one indirection.  Inheritance additionally "
        "exposes only the permeable subset — the paper's argument, "
        "reproduced.",
    ),
    "bench_e7_permeability": (
        "E7 — §4.2 ablation: permeability and hierarchy depth",
        "§4.2",
        "Read cost is independent of how *wide* the inheriting list is "
        "and linear in hierarchy *depth* (one hop per level).  The "
        "materialising-cache ablation flattens deep-chain reads to a "
        "dict lookup but moves the cost to update-time invalidation; "
        "uncached root updates stay O(1) at every depth.",
    ),
    "bench_e8_version_selection": (
        "E8 — §6 ablation: version-selection policies",
        "§6",
        "Top-down query selection scans all candidates (grows with the "
        "version count); bottom-up default and environment selection "
        "stay near-flat (the residual growth is the candidate-"
        "eligibility scan).  Re-resolution adds an unbind+bind on top.",
    ),
    "bench_e9_lock_inheritance": (
        "E9 — §6 ablation: lock inheritance and expansion locking",
        "§6",
        "A locked read of a component slot costs one extra scoped lock "
        "per transmitter level over a plain read; expansion locking "
        "grows with the hierarchy size.  The correctness gain: composite "
        "readers and component writers conflict although they touch "
        "different objects (asserted in the suite).",
    ),
    "bench_e10_consistency_overhead": (
        "E10 — ablation: consistency machinery on the update path",
        "§4.1",
        "Adaptation tracking adds a bounded per-update cost that grows "
        "with the inheritor fan-out (the records are per affected link); "
        "a trigger adds a near-constant dispatch on top; event recording "
        "is cheapest.  The update path without any machinery is the "
        "baseline row.",
    ),
    "bench_e11_persistence": (
        "E11 — ablation: persistence scale",
        "engine substrate",
        "Dump and load are linear in the number of objects "
        "(10/50/200-interface libraries); loaded databases preserve the "
        "live value-inheritance read path (asserted).",
    ),
    "bench_e12_query": (
        "E12 — ablation: query-language execution",
        "§6 (top-down selection queries)",
        "Where-filtering and ordering are linear in the extent size; an "
        "aggregate predicate (count over a subclass) costs a per-object "
        "collection scan on top of the plain attribute predicate; parsing "
        "is a constant prefix.",
    ),
    "bench_e13_observability": (
        "E13 — ablation: observability overhead",
        "instrumentation layer (repro.obs)",
        "With observe=False the *_observe_off rows match their E2 "
        "counterparts within noise (one attribute load + branch per "
        "site).  With observe=True an update additionally walks its "
        "propagation fan-out — linear in the inheritor count — and an "
        "inherited read pays one counter increment per delegation hop.",
    ),
    "bench_e14_resolution": (
        "E14 — resolution engine: compiled plans vs. interpretive walk",
        "§4.1 (member resolution)",
        "Steady-state inherited reads are O(1) in chain depth: the "
        "memoised holder is revalidated by two integer compares (schema "
        "epoch + the inheritor's propagated binding epoch), so the "
        "plan_read rows are flat across depths 4/8/16 and beat the "
        "interpretive walk by well over the 3× acceptance target at "
        "depth ≥ 8.  The cold compiled walk (plan_walk_cold) is linear "
        "with a cheaper per-hop constant than the interpretive re-scan.  "
        "Epoch-cache warm reads are O(1); an update revalidates lazily "
        "at the next read.  Plan compilation is a one-off per type and "
        "schema epoch; visible_member_names amortises to a tuple load.",
    ),
    "bench_e15_indexes": (
        "E15 — indexed query engine: value indexes vs. full scans",
        "§6 (selection queries over large extents)",
        "Selective equality is answered from the hash index in time "
        "proportional to the matching bucket — flat across 10k/50k and "
        "two orders of magnitude under the full scan at 50k (≥10× is the "
        "acceptance floor).  Range + top-k bisects the sorted index and "
        "heap-selects the tail: it grows with the span, not the extent, "
        "and beats the scan well past the 5× floor.  The write-path tax "
        "(update_with_indexes) is a few microseconds per touched index — "
        "event-driven maintenance, no rebuilds.",
    ),
    "bench_e16_provenance": (
        "E16 — causal provenance: audit overhead on the Figure-2 workload",
        "observability layer (repro.obs.provenance)",
        "With observe off the update_dark rows match E13's dark rows "
        "within noise — the audit guards are one attribute load and a "
        "branch.  With observe on, attaching the audit log adds ~70 ns "
        "per reached inheritor over the PR-1 baseline (update_audit_off) "
        "— the tap batches every (link, inheritor, depth) arrival into "
        "one propagation.fanout record per update, one list append each "
        "— plus a fixed ~1.5 µs per mutation (two ring appends) that "
        "amortises with fan-out: ~10% total at the Figure-2 fan-out.  "
        "explain_value is a pure interpretive walk (no observability "
        "needed); cone reconstruction is linear in the ring.",
    ),
    "bench_e17_lint": (
        "E17 — static analysis: lint cost vs. the failures it prevents",
        "static analyzer (repro.analysis)",
        "Linting a paper-sized schema — parse, model lowering, every "
        "REP1xx–REP4xx rule — costs low milliseconds, far below one "
        "failed load_schema round-trip plus debugging.  Re-linting an "
        "already-compiled catalog skips the parse and is several times "
        "cheaper, so post-migration re-checks are cheap.  Rule cost "
        "grows near-linearly with declaration count (the graph rules "
        "are Tarjan SCCs and per-edge scans, nothing quadratic).  The "
        "differential verifier — build, synthesize, bind, probe every "
        "member against the interpretive oracles — lands at about one "
        "plain lint (the lint itself pays a build in its REP100 net), "
        "cheap enough to gate CI on the *proof*, not just the claim.",
    ),
    "bench_e18_observatory": (
        "E18 — the observatory's own tax: profiler and slow-log overhead",
        "perf observatory (repro.obs.bench/profiler/slowlog)",
        "The zero-cost-when-disabled contract holds for the PR-6 "
        "surfaces: with observability off, the slowlog guards are one "
        "attribute load and a branch (update_slowlog_dark matches E13's "
        "dark row within noise); attached-but-quiet adds two "
        "perf_counter reads per measured propagation "
        "(update_slowlog_quiet vs. update_slowlog_detached, equal within "
        "noise here), and a zero-budget firing log pays one ring append "
        "plus a counter per update on top.  The 1 kHz sampling "
        "profiler's steady-state tax on the deep-chain read loop is "
        "near zero by min/median (repro bench measures 1.08 vs 1.09 ms "
        "min on the same batch) — the *mean* gap above is real but is "
        "the sampling pauses themselves plus scheduler outliers on a "
        "containerized runner (~1000 brief GIL handoffs per second land "
        "in some rounds and not others); lower --hz proportionally "
        "shrinks it.",
    ),
    "bench_e19_storage": (
        "E19 — slotted storage engine: compiled slot programs vs. tree walk",
        "engine substrate (repro.core.slots / repro.expr.compile)",
        "Attributes live in per-type column stores; predicates and "
        "constraints compile once per (expression, type, schema epoch) "
        "into generated batch scans that read slots positionally with "
        "raw comparisons, falling back to the tree walk on any type "
        "surprise.  At 50k objects the compiled unindexed equality and "
        "range scans and the fused two-phase constraint sweep each beat "
        "the tree-walking oracle by over the 10× acceptance floor "
        "(measured ~11×/~12×/~18× on this run); the oracle rows grow "
        "linearly with the extent while compiled rows keep a ~10× "
        "smaller constant.  Equivalence — identical rows, violations "
        "and error messages — is pinned by the hypothesis oracles in "
        "tests/test_storage.py.",
    ),
    "bench_e20_views": (
        "E20 — materialized inherited-relation views: flattened per-type extents",
        "§4.2 permeability as Litwin's stored-and-inherited relations",
        "Inherited attributes flatten into per-type view columns aligned "
        "with the storage rows, so the generated view scan reads them "
        "with the same positional index as stored slots — no per-object "
        "resolution, no hashing.  At 50k implementations the unindexed "
        "inherited equality and range scans beat the tree-walk oracle by "
        "~12× each (≥7× is the in-test floor) and the PR-7 live-compiled "
        "path — whose inherited reads still resolve per object — by "
        "~3-4×.  The write side is priced by the maintenance rows: a "
        "transmitter update refreshes its fan-out's view cells off the "
        "event stream at ~1.5-2 µs per cell, so the per-write tax scales "
        "with the fan-out (~3-4 µs at fan-out 1, ~80 µs at fan-out 50) — "
        "the classic materialized-view trade, profitable when reads "
        "outnumber transmitter writes.  Equivalence against "
        "run_query(views=False) — rows, order, errors — is pinned by the "
        "hypothesis oracle in tests/test_views.py.",
    ),
    "bench_e21_contention": (
        "E21 — flight-recorder tax and the contention observatory",
        "service-tier observability (repro.obs.recorder / repro.txn.locks)",
        "The flight recorder is pull-based — one tick walks the registry, "
        "summarises histogram percentiles and appends to the ring in "
        "~13 µs, the price the sampling thread pays per interval, while "
        "the engine's update path costs the same with an empty and a "
        "capacity-full ring (update_recorder_idle vs. "
        "update_recorder_full_ring; the pytest variant pins them within "
        "a 3× min-of-7 noise bound and update_dark is the "
        "observability-off floor, ~4-5× cheaper than carrying metrics "
        "at all).  contended_grant prices one full blocking-lock round — "
        "K reader threads park behind an exclusive holder, waits-for "
        "edges register, the holder releases, every waiter is granted "
        "and the wait histogram absorbs K observations — at "
        "thread-lifecycle cost (~2.7 ms for K=4), with the uncontended "
        "acquire held at parity with the non-blocking seed "
        "(locked_read_plain in E9).  The pytest variant additionally "
        "walks the lock-wait-p95 health rule through ok → degraded → ok "
        "around the contention burst, pinning the windowed-delta "
        "semantics of repro.obs.health end to end.",
    ),
}

HEADER = """# EXPERIMENTS — paper vs. measured

The paper (Wilkes/Klahold/Schlageter, ICDE 1989) is a conceptual-model
paper: it published **no implementation and no measurements**, and its five
figures are model diagrams.  The reproduction turns each figure into an
executable scenario (pinned by integration tests under
`tests/integration/`) and quantifies the paper's qualitative design
arguments with the benchmarks below (E6–E9 are ablations of claims made in
§2, §4.2 and §6).  Absolute numbers are from one laptop-class run of

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json

and will vary by machine; the **shapes** described under each table are the
reproduction targets, and all of them hold on this run.

| Exp | Paper artefact | Scenario | Status |
|-----|----------------|----------|--------|
| E1 | Figure 1 | Gate/Flip-Flop complex objects | reproduced (structure pinned by tests, costs linear) |
| E2 | Figure 2 | interface ↔ implementations | reproduced (O(1) propagation vs. O(N) copy fan-out) |
| E3 | Figure 3 | component relationship | reproduced (size-independent incorporation) |
| E4 | Figure 4 | both roles + expansion | reproduced (expansion tracks materialised objects) |
| E5 | Figure 5 / §5 | steel construction | reproduced (constraints evaluate, violations detected) |
| E6 | §2 argument | copy vs. view vs. inheritance | reproduced (trade-offs as argued) |
| E7 | §4.2 argument | permeability / hierarchy depth | reproduced (+ cache ablation) |
| E8 | §6 versions | three selection policies | reproduced (query O(N), default/environment flat) |
| E9 | §6 transactions | lock inheritance | reproduced (bounded overhead, conflicts caught) |
| E10 | §4.1 consistency | adaptation/trigger overhead | measured (bounded per-update cost) |
| E11 | engine substrate | persistence scale | measured (linear, inheritance live after reload) |
| E12 | §6 selection queries | query execution | measured (linear filters, O(1)-ish parse) |
| E13 | instrumentation layer | observability overhead | measured (near-zero off, bounded on) |
| E14 | §4.1 member resolution | compiled plans + epoch memo | measured (O(1) steady-state reads, ≥3× vs. interpretive) |
| E15 | §6 selection queries | attribute/type indexes + planner | measured (≥10× selective equality, ≥5× range+top-k at 50k) |
| E16 | observability layer | causal provenance / audit overhead | measured (~10% audit tax at Figure-2 fan-out, dark path unchanged) |
| E17 | static analyzer | lint cost vs. prevented failures | measured (ms-scale lint, near-linear scaling, verify ≈ one lint) |
| E18 | perf observatory | profiler + slow-log overhead | measured (≈0 disabled; profiler tax ≈0 by min/median on deep-chain reads) |
| E19 | engine substrate | slotted storage + compiled scans | measured (≥10× eq/range scans and constraint sweep at 50k vs. tree walk) |
| E20 | §4.2 permeability (Litwin SIRs) | materialized per-type views | measured (~12× inherited-eq scan at 50k vs. tree walk, maintenance priced) |
| E21 | service-tier observability | flight recorder + contention observatory | measured (tick ~13 µs, update parity empty vs. full ring, contended grants + health walk) |

The same suites are driven by the unified stdlib harness (`repro bench`,
`src/repro/obs/bench.py`): every run emits a `BENCH_<seq>.json` snapshot
(`repro.bench/1`) at the repo root, and `repro bench --compare` gates on
noise-confirmed regressions against the previous snapshot — see
`docs/perf.md` for the trajectory workflow.
"""


def format_time(seconds: float) -> str:
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def _snapshot_stats(snap: dict) -> Dict[str, object]:
    """Headline figures of one ``repro.metrics/1`` snapshot (inline so the
    report stays runnable without ``repro`` on the path)."""
    counters = snap.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    fanout = snap.get("histograms", {}).get("propagation.fanout") or {}
    mean_fanout = fanout.get("mean")
    return {
        "updates": counters.get("propagation.updates", 0),
        "fan-out total": counters.get("propagation.fanout_total", 0),
        "mean fan-out": round(mean_fanout, 3) if mean_fanout is not None else None,
        "inherited reads": counters.get("reads.inherited", 0),
        "lock acquisitions": counters.get("locks.acquired", 0),
        "lock waits (conflicts)": counters.get("locks.conflicts", 0),
        "cache hit rate": (
            round(hits / (hits + misses), 3) if hits + misses else None
        ),
    }


def print_observability(obs_path: str) -> None:
    """Render the ``--obs-json`` export as a metrics section."""
    with open(obs_path) as f:
        data = json.load(f)
    runs = data.get("runs", [])
    print("## Observability metrics\n")
    print(
        "*Metric snapshots collected from observed benchmark databases "
        "(`repro.obs`, merged by `benchmarks/obs_hook.py`); the "
        "`repro.metrics/1` schema is documented in "
        "`docs/observability.md`.*\n"
    )
    if not runs:
        print("No observed benches registered snapshots in this run.\n")
        return
    keys = list(_snapshot_stats({}))
    print("| run | " + " | ".join(keys) + " |")
    print("|-----|" + "|".join("---" for _ in keys) + "|")
    for snap in runs:
        stats = _snapshot_stats(snap)
        cells = " | ".join(str(stats[key]) for key in keys)
        print(f"| `{snap.get('label', snap.get('database', '?'))}` | {cells} |")
    totals = data.get("totals", {})
    if totals:
        stats = _snapshot_stats({"counters": totals})
        cells = " | ".join(str(stats[key]) for key in keys)
        print(f"| **total** | {cells} |")
    print()


def main(path: str, obs_path: str = None) -> None:
    with open(path) as f:
        data = json.load(f)

    groups: Dict[str, List[dict]] = defaultdict(list)
    for bench in data["benchmarks"]:
        module = bench["fullname"].split("::")[0]
        stem = module.rsplit("/", 1)[-1].removesuffix(".py")
        groups[stem].append(bench)

    print(HEADER)
    machine = data.get("machine_info", {})
    print(
        f"Run environment: Python {machine.get('python_version', '?')} on "
        f"{machine.get('machine', '?')} ({machine.get('system', '?')}).\n"
    )

    for stem, (title, anchor, shape) in EXPERIMENTS.items():
        benches = groups.get(stem)
        if not benches:
            continue
        print(f"## {title}\n")
        print(f"*Paper anchor: {anchor}.*\n")
        print("| benchmark | mean | ops/s | rounds |")
        print("|-----------|------|-------|--------|")
        for bench in sorted(benches, key=lambda b: b["name"]):
            stats = bench["stats"]
            name = bench["name"].removeprefix("test_")
            print(
                f"| `{name}` | {format_time(stats['mean'])} | "
                f"{stats['ops']:.0f} | {stats['rounds']} |"
            )
        print(f"\n**Measured shape.** {shape}\n")

    if obs_path is not None:
        print_observability(obs_path)


if __name__ == "__main__":
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    main(*sys.argv[1:])
