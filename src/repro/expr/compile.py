"""Compilation of constraint expressions to slot-program closures.

The tree-walking ``Node.evaluate`` interpreter pays, per object, a fresh
:class:`~repro.expr.context.EvalContext`, a binding-chain probe per name
and a ``get_member`` protocol call per member access.  For an unindexed
scan or a constraint sweep that cost dominates.

This module compiles an expression **once per (expression, type, schema
epoch)** into a plain Python function over live objects:

* member names that the type's :class:`~repro.core.resolution.ResolutionPlan`
  binds to a plain stored attribute become a direct **slot read** —
  ``column[obj._row]`` against the type's :class:`~repro.core.slots.TypeStore`
  column, with the spec default on an UNSET cell;
* ``surrogate`` becomes an attribute load;
* names that resolve through inheritance relationships, containers,
  participant roles, or dynamic binding fall back to a tiny closure around
  the interpretive member protocol (still compiled, just not slot-fast);
* aggregates and quantifiers evaluate their subtree with the ordinary
  tree walk (they carry binder scopes the slot program cannot see);
* operators are generated as source text and ``exec``-compiled, reusing
  the interpreter's own helpers (``truthy``/``_equal``/``_numeric``…) so
  MISSING propagation, string concatenation, division-by-zero errors and
  comparison ``TypeError`` wrapping are **bit-for-bit identical** to
  ``Node.evaluate``.  The interpreter stays available as the testing
  oracle.

Contract: compiled functions assume a *live* object of the compiled type
(callers filter deleted objects first) and **bindings-free** evaluation —
exactly the shape of query predicates and type-anchored integrity
constraints.  Binding-carrying evaluations keep using the interpreter.

The cache is keyed by ``(id(node), id(type))`` (strong references retained)
and validated against the schema epoch (``catalog.schema_epoch`` proxies
the same counter): a DDL change drops every compiled program and the next
use recompiles against the refreshed plan and store layout.

:func:`compile_info` reports why an expression is not fully slot-compiled;
the ``dynamic-name`` reason kind feeds the REP504 analyzer advisory.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core import resolution as _resolution
from ..core.slots import UNSET, store_for
from ..errors import ExprEvaluationError, UnknownAttributeError
from .ast import (
    Aggregate,
    Binary,
    Literal,
    Name,
    Node,
    Path,
    Quantified,
    Unary,
    _equal,
    _numeric,
    truthy,
)
from .context import MISSING, EvalContext, as_collection, resolve_member

__all__ = [
    "CompiledExpr",
    "CompileInfo",
    "compile_expression",
    "compile_predicate",
    "compile_info",
    "compiled_for",
    "invalidate_cache",
]


# ---------------------------------------------------------------------------
# Runtime helpers shared by every generated program.  Each replicates one
# operator branch of ``Binary.evaluate`` / ``Unary.evaluate`` exactly,
# including error messages.
# ---------------------------------------------------------------------------


def _path(value: Any, segments: Tuple[str, ...]) -> Any:
    for segment in segments:
        value = resolve_member(value, segment)
        if value is MISSING:
            return MISSING
    return value


def _in(left: Any, right: Any) -> bool:
    return any(_equal(left, element) for element in as_collection(right))


def _make_cmp(op: str, fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], bool]:
    def cmp(left: Any, right: Any) -> bool:
        if left is MISSING or right is MISSING:
            return False
        try:
            return fn(left, right)
        except TypeError as exc:
            raise ExprEvaluationError(
                f"cannot compare {left!r} {op} {right!r}"
            ) from exc

    return cmp


_lt = _make_cmp("<", lambda a, b: a < b)
_le = _make_cmp("<=", lambda a, b: a <= b)
_gt = _make_cmp(">", lambda a, b: a > b)
_ge = _make_cmp(">=", lambda a, b: a >= b)


def _add(left: Any, right: Any) -> Any:
    if isinstance(left, str) and isinstance(right, str):
        return left + right
    return _numeric(left, "+") + _numeric(right, "+")


def _sub(left: Any, right: Any) -> Any:
    return _numeric(left, "-") - _numeric(right, "-")


def _mul(left: Any, right: Any) -> Any:
    return _numeric(left, "*") * _numeric(right, "*")


def _div(left: Any, right: Any) -> Any:
    left = _numeric(left, "/")
    right = _numeric(right, "/")
    if right == 0:
        raise ExprEvaluationError("division by zero")
    return left / right


def _mod(left: Any, right: Any) -> Any:
    left = _numeric(left, "%")
    right = _numeric(right, "%")
    if right == 0:
        raise ExprEvaluationError("modulo by zero")
    return left % right


def _neg(value: Any) -> Any:
    return -_numeric(value, "-")


_BASE_ENV: Dict[str, Any] = {
    "UNSET": UNSET,
    "MISSING": MISSING,
    "truthy": truthy,
    "_equal": _equal,
    "_path": _path,
    "_in": _in,
    "_lt": _lt,
    "_le": _le,
    "_gt": _gt,
    "_ge": _ge,
    "_add": _add,
    "_sub": _sub,
    "_mul": _mul,
    "_div": _div,
    "_mod": _mod,
    "_neg": _neg,
}

_CMP_HELPER = {"<": "_lt", "<=": "_le", ">": "_gt", ">=": "_ge"}
_ARITH_HELPER = {"+": "_add", "-": "_sub", "*": "_mul", "/": "_div", "%": "_mod"}


class CompileInfo:
    """Why (and how far) an expression compiled to a slot program.

    ``fast`` is true when every name resolved to a direct slot or
    surrogate read and no subtree fell back to interpretation.
    ``reasons`` is a tuple of ``(kind, detail)`` pairs; kinds:

    ``dynamic-name``
        a free name with no static member binding — it resolves
        dynamically (or as its own literal spelling) per object.  This is
        the REP504 advisory trigger.
    ``inherited`` / ``container`` / ``participant`` / ``fallback``
        the name is a member, but binds through the interpretive member
        protocol (inheritance chain, subclass/subrel container,
        relationship role).
    ``aggregate`` / ``quantifier`` / ``path`` / ``opaque``
        the subtree evaluates with the tree-walking interpreter.
    """

    __slots__ = ("fast", "reasons")

    def __init__(self, reasons: Tuple[Tuple[str, str], ...]) -> None:
        self.reasons = reasons
        self.fast = not reasons

    def kinds(self) -> Tuple[str, ...]:
        """Distinct reason kinds, in first-appearance order."""
        seen: List[str] = []
        for kind, _ in self.reasons:
            if kind not in seen:
                seen.append(kind)
        return tuple(seen)

    def details(self, kind: str) -> Tuple[str, ...]:
        """The detail strings of every reason of ``kind``."""
        return tuple(detail for k, detail in self.reasons if k == kind)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<CompileInfo fast={self.fast} reasons={len(self.reasons)}>"


class CompiledExpr:
    """One compiled program: expression form, predicate form, batch scan."""

    __slots__ = ("expression", "predicate", "scan", "info", "source")

    def __init__(
        self,
        expression: Callable[[Any], Any],
        predicate: Callable[[Any], bool],
        scan: Callable[[Any], Optional[Tuple[int, List[Any]]]],
        info: CompileInfo,
        source: str,
    ) -> None:
        #: ``fn(obj) -> value`` — the ``node.evaluate(EvalContext(obj))``
        #: equivalent (may yield MISSING from path traversal).
        self.expression = expression
        #: ``fn(obj) -> bool`` — ``truthy(node.evaluate(...))``.
        self.predicate = predicate
        #: ``fn(objs) -> (scanned, matched) | None`` — the whole filter
        #: loop generated around the predicate expression: skips deleted
        #: objects, counts the rest, collects matches.  Returns ``None``
        #: when it cannot finish — an object of another type (the slot
        #: columns would be foreign) or a naked TypeError from a raw
        #: comparison; the caller then falls back to the per-object
        #: ``predicate``, which reproduces interpreter semantics exactly.
        self.scan = scan
        self.info = info
        #: Generated source, kept for diagnostics and the slowlog.
        self.source = source


class _Codegen:
    """Generates the source of one (expression, type) program."""

    def __init__(self, type_: Any, obs: Any = None) -> None:
        self.type = type_
        self.plan = _resolution.plan_for(type_, obs)
        self.store = store_for(type_, obs)
        self.env: Dict[str, Any] = dict(_BASE_ENV)
        self.reasons: List[Tuple[str, str]] = []
        self._n = 0
        #: When true, comparisons over never-MISSING operands emit the
        #: raw operator instead of the wrapping helper.  A raw compare can
        #: raise a naked TypeError, so this variant is only used inside
        #: the batch scan, whose generated loop catches TypeError and
        #: reports "rerun me per object" — the per-object program then
        #: reproduces the interpreter's exact ExprEvaluationError.
        self.fast_cmp = False

    # -- small utilities -----------------------------------------------------

    def _const(self, prefix: str, value: Any) -> str:
        name = f"{prefix}{self._n}"
        self._n += 1
        self.env[name] = value
        return name

    def _temp(self) -> str:
        name = f"t{self._n}"
        self._n += 1
        return name

    def _interp(self, node: Node, kind: str, detail: str) -> str:
        """Whole-subtree fallback: evaluate with the tree walk."""
        self.reasons.append((kind, detail))

        def run(obj: Any, _node: Node = node) -> Any:
            return _node.evaluate(EvalContext(obj))

        return f"{self._const('w', run)}(obj)"

    def _member_fallback(self, name: str) -> str:
        """Name accessor through the member protocol (= ctx.lookup)."""

        def acc(obj: Any, _name: str = name) -> Any:
            try:
                return obj.get_member(_name)
            except (KeyError, UnknownAttributeError):
                # Unresolvable names evaluate as their own spelling —
                # the enum-label convention (unresolved_as_literal).
                return _name

        return f"{self._const('n', acc)}(obj)"

    # -- node emitters -------------------------------------------------------
    # Each returns ``(source_expr, is_bool, can_be_missing)``.

    def emit(self, node: Node) -> Tuple[str, bool, bool]:
        if isinstance(node, Literal):
            value = node.value
            return self._const("k", value), isinstance(value, bool), False
        if isinstance(node, Name):
            return self._emit_name(node.identifier)
        if isinstance(node, Path):
            return self._emit_path(node)
        if isinstance(node, Unary):
            return self._emit_unary(node)
        if isinstance(node, Binary):
            return self._emit_binary(node)
        if isinstance(node, Quantified):
            src = self._interp(
                node, "quantifier", f"quantifier {node.unparse()} evaluates interpretively"
            )
            return src, True, False
        if isinstance(node, Aggregate):
            src = self._interp(
                node,
                "aggregate",
                f"aggregate {node.func}(…) carries binder scope; evaluates interpretively",
            )
            return src, node.func == "exists", False
        src = self._interp(
            node, "opaque", f"unknown node {type(node).__name__} evaluates interpretively"
        )
        return src, False, False

    def _emit_name(self, identifier: str) -> Tuple[str, bool, bool]:
        entry = self.plan.entries.get(identifier)
        participants = getattr(self.type, "participants", None)
        if participants and identifier in participants:
            # Relationship roles shadow every member; resolved per object.
            self.reasons.append(
                ("participant", f"name {identifier!r} is a relationship role")
            )
            return self._member_fallback(identifier), False, False
        if entry is None:
            if getattr(self.type, "allow_dynamic", False):
                detail = (
                    f"free name {identifier!r} binds dynamically on "
                    f"{self.type.name!r} (allow_dynamic)"
                )
            else:
                detail = (
                    f"free name {identifier!r} is not a member of "
                    f"{self.type.name!r}; it evaluates as a literal label"
                )
            self.reasons.append(("dynamic-name", detail))
            return self._member_fallback(identifier), False, False
        if entry.kind == "surrogate":
            return "obj.surrogate", False, False
        if (
            entry.kind == "attribute"
            and not entry.rels
            and entry.spec is not None
            and not entry.check_subclass
            and not entry.check_subrel
            and entry.slot is not None
        ):
            # The fast path: a plain stored attribute — one slot read.
            column = self._const("c", self.store.columns[entry.slot])
            default = self._const("d", entry.default)
            temp = self._temp()
            src = f"({default} if ({temp} := {column}[row]) is UNSET else {temp})"
            return src, False, False
        if entry.rels:
            self.reasons.append(
                ("inherited", f"member {identifier!r} resolves through "
                              f"inheritance relationships at runtime")
            )
        elif entry.check_subclass or entry.check_subrel or entry.kind != "attribute":
            self.reasons.append(
                ("container", f"member {identifier!r} is a {entry.kind} "
                              f"container resolved per object")
            )
        else:
            self.reasons.append(
                ("fallback", f"member {identifier!r} needs the interpretive "
                             f"member protocol")
            )
        return self._member_fallback(identifier), False, False

    def _emit_path(self, node: Path) -> Tuple[str, bool, bool]:
        base, _, _ = self.emit(node.base)
        segments = self._const("p", tuple(node.segments))
        self.reasons.append(
            ("path", f"path {node.unparse()} traverses the member protocol")
        )
        return f"_path({base}, {segments})", False, True

    def _emit_unary(self, node: Unary) -> Tuple[str, bool, bool]:
        if node.op == "-":
            src, _, _ = self.emit(node.operand)
            return f"_neg({src})", False, False
        if node.op == "not":
            src, is_bool, _ = self.emit(node.operand)
            inner = src if is_bool else f"truthy({src})"
            return f"(not {inner})", True, False
        return (
            self._interp(
                node, "opaque", f"unknown unary operator {node.op!r}"
            ),
            False,
            False,
        )

    def _emit_binary(self, node: Binary) -> Tuple[str, bool, bool]:
        op = node.op
        if op in ("and", "or"):
            left, lbool, _ = self.emit(node.left)
            right, rbool, _ = self.emit(node.right)
            lsrc = left if lbool else f"truthy({left})"
            rsrc = right if rbool else f"truthy({right})"
            return f"({lsrc} {op} {rsrc})", True, False
        left, _, lmiss = self.emit(node.left)
        right, _, rmiss = self.emit(node.right)
        if op == "=":
            if lmiss or rmiss:
                return f"_equal({left}, {right})", True, False
            return f"({left} == {right})", True, False
        if op == "!=":
            if lmiss or rmiss:
                return f"(not _equal({left}, {right}))", True, False
            return f"(not ({left} == {right}))", True, False
        if op == "in":
            return f"_in({left}, {right})", True, False
        if op == "not in":
            return f"(not _in({left}, {right}))", True, False
        helper = _CMP_HELPER.get(op)
        if helper is not None:
            if self.fast_cmp and not lmiss and not rmiss:
                return f"({left} {op} {right})", True, False
            return f"{helper}({left}, {right})", True, False
        helper = _ARITH_HELPER.get(op)
        if helper is not None:
            return f"{helper}({left}, {right})", False, False
        return (
            self._interp(node, "opaque", f"unknown operator {op!r}"),
            False,
            False,
        )


def _build(node: Node, type_: Any, obs: Any = None) -> CompiledExpr:
    gen = _Codegen(type_, obs)
    expr, is_bool, _ = gen.emit(node)
    pred = expr if is_bool else f"truthy({expr})"
    info = CompileInfo(tuple(gen.reasons))
    # Second emission for the batch scan: raw comparisons (fast_cmp).  The
    # scan catches the naked TypeError they may raise and answers None —
    # the caller then reruns per object through the wrapping helpers, so
    # error behavior stays bit-for-bit the interpreter's.
    gen.fast_cmp = True
    fast, fast_bool, _ = gen.emit(node)
    fast_pred = fast if fast_bool else f"truthy({fast})"
    source = (
        f"def _expr(obj):\n    row = obj._row\n    return {expr}\n"
        f"def _pred(obj):\n    row = obj._row\n    return {pred}\n"
        "def _scan(objs):\n"
        "    try:\n"
        "        total = len(objs)\n"
        "    except TypeError:\n"
        "        return None\n"
        "    matched = []\n"
        "    append = matched.append\n"
        "    dropped = 0\n"
        "    try:\n"
        "        for obj in objs:\n"
        "            if obj._deleted:\n"
        "                dropped += 1\n"
        "                continue\n"
        "            if obj.object_type is not _scan_type:\n"
        "                return None\n"
        "            row = obj._row\n"
        f"            if {fast_pred}:\n"
        "                append(obj)\n"
        "    except TypeError:\n"
        "        return None\n"
        "    return (total - dropped, matched)\n"
    )
    env = gen.env
    env["_scan_type"] = type_
    exec(compile(source, f"<compiled:{type_.name}>", "exec"), env)
    return CompiledExpr(env["_expr"], env["_pred"], env["_scan"], info, source)


# ---------------------------------------------------------------------------
# The per-epoch program cache.
# ---------------------------------------------------------------------------

_cache: Dict[Tuple[int, int], Tuple[Node, Any, CompiledExpr]] = {}
_cache_epoch: int = -1


def compiled_for(node: Node, type_: Any, obs: Any = None) -> CompiledExpr:
    """The compiled program of ``node`` anchored at ``type_``.

    Compiled once per schema epoch; a DDL change invalidates every cached
    program (the epoch is the same counter ``catalog.schema_epoch``
    exposes).  Strong references to the node and type are retained so the
    identity key stays valid.
    """
    global _cache_epoch
    epoch = _resolution._SCHEMA_EPOCH
    if epoch != _cache_epoch:
        _cache.clear()
        _cache_epoch = epoch
    key = (id(node), id(type_))
    hit = _cache.get(key)
    if hit is not None and hit[0] is node and hit[1] is type_:
        return hit[2]
    compiled = _build(node, type_, obs)
    _cache[key] = (node, type_, compiled)
    return compiled


def compile_expression(
    node: Node, type_: Any, obs: Any = None
) -> Callable[[Any], Any]:
    """``fn(obj) -> value`` equivalent to ``node.evaluate(EvalContext(obj))``."""
    return compiled_for(node, type_, obs).expression


def compile_predicate(
    node: Node, type_: Any, obs: Any = None
) -> Callable[[Any], bool]:
    """``fn(obj) -> bool`` equivalent to ``truthy(node.evaluate(...))``."""
    return compiled_for(node, type_, obs).predicate


def compile_info(node: Node, type_: Any, obs: Any = None) -> CompileInfo:
    """Compilability report of ``node`` at ``type_`` (see :class:`CompileInfo`)."""
    return compiled_for(node, type_, obs).info


def invalidate_cache() -> None:
    """Drop every compiled program (tests and diagnostics)."""
    _cache.clear()


def cache_stats() -> Dict[str, int]:
    """Observable counters of the program cache."""
    return {"expr.compiled": len(_cache), "expr.cache_epoch": _cache_epoch}
