"""Tests for cooperative transaction groups (repro.txn.groups)."""

import pytest

from repro.errors import LockConflictError, TransactionError
from repro.txn import TransactionGroup, TransactionManager
from repro.workloads import gate_database, make_interface


@pytest.fixture
def db():
    return gate_database("groups")


@pytest.fixture
def tm(db):
    return TransactionManager(db)


class TestGroupSharing:
    def test_members_share_locks(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm, "team")
        alice = team.begin(user="alice")
        bob = team.begin(user="bob")
        alice.write(part)
        bob.read(part)  # no conflict inside the group
        bob.write(part)  # not even on write
        alice.commit()
        bob.commit()

    def test_outsiders_still_conflict(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm)
        alice = team.begin(user="alice")
        alice.write(part)
        outsider = tm.begin(user="eve")
        with pytest.raises(LockConflictError):
            outsider.read(part)

    def test_two_groups_conflict(self, db, tm):
        part = make_interface(db)
        team_a = TransactionGroup(tm, "a")
        team_b = TransactionGroup(tm, "b")
        a = team_a.begin()
        b = team_b.begin()
        a.write(part)
        with pytest.raises(LockConflictError):
            b.read(part)

    def test_join_existing_transaction(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm)
        alice = team.begin()
        loner = tm.begin()
        team.join(loner)
        alice.write(part)
        loner.read(part)

    def test_join_with_held_locks_rejected(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm)
        loner = tm.begin()
        loner.read(part)
        with pytest.raises(TransactionError):
            team.join(loner)


class TestGroupLifecycle:
    def test_commit_all(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm)
        alice = team.begin()
        alice.set(part, "Length", 42)
        team.commit_all()
        assert part["Length"] == 42
        assert team.ended
        assert not tm.lock_table.is_locked(part.surrogate)

    def test_abort_all(self, db, tm):
        part = make_interface(db, length=10)
        team = TransactionGroup(tm)
        alice = team.begin()
        alice.set(part, "Length", 99)
        team.abort_all()
        assert part["Length"] == 10

    def test_end_requires_completed_members(self, db, tm):
        team = TransactionGroup(tm)
        team.begin()
        with pytest.raises(TransactionError):
            team.end()

    def test_end_releases_persistent_checkouts(self, db, tm):
        part = make_interface(db)
        team = TransactionGroup(tm)
        designer = team.begin(user="alice", persistent=True)
        designer.write(part)
        designer.commit()  # locks survive commit (checkout)
        assert tm.lock_table.is_locked(part.surrogate)
        team.end()  # the group is the checkout unit
        assert not tm.lock_table.is_locked(part.surrogate)

    def test_ended_group_rejects_new_members(self, db, tm):
        team = TransactionGroup(tm)
        team.commit_all()
        with pytest.raises(TransactionError):
            team.begin()
        with pytest.raises(TransactionError):
            team.join(tm.begin())

    def test_end_is_idempotent(self, db, tm):
        team = TransactionGroup(tm)
        team.commit_all()
        team.end()
        assert team.ended

    def test_group_ids_unique(self, tm):
        assert TransactionGroup(tm).group_id != TransactionGroup(tm).group_id
