"""Queries and navigation.

Two styles are supported:

* predicate selection — :meth:`Database.select` with an expression in the
  paper's constraint language (``"Length > 10 and Function = AND"``) or a
  Python callable;
* navigation — walking the object graph: subobjects, participants,
  inheritance links, the complex-object tree.

The configuration-level traversals (component closure, where-used,
bill of materials) build on these and live in
:mod:`repro.composition.configuration`.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Union

from ..core.objects import DBObject, InheritanceLink, RelationshipObject
from ..errors import QueryError
from ..expr import EvalContext, parse_expression, truthy

__all__ = [
    "evaluate_predicate",
    "walk_subobjects",
    "walk_tree",
    "relationships_of",
    "inheritors_of",
    "transmitters_of",
    "root_of",
]

Predicate = Callable[[DBObject], bool]


def evaluate_predicate(where: Union[str, Predicate]) -> Predicate:
    """Compile a where-condition into a Python predicate.

    Strings are parsed once with :mod:`repro.expr`; evaluation errors
    surface as :class:`~repro.errors.QueryError`.
    """
    if callable(where):
        return where
    if isinstance(where, str):
        node = parse_expression(where)

        def predicate(obj: DBObject) -> bool:
            return truthy(node.evaluate(EvalContext(obj)))

        return predicate
    raise QueryError(f"cannot interpret {where!r} as a selection condition")


def walk_subobjects(obj: DBObject) -> Iterator[DBObject]:
    """Yield every direct subobject (all local subclasses)."""
    for name in obj.subclass_names():
        for member in obj.subclass(name):
            yield member


def walk_tree(obj: DBObject, include_relationships: bool = False) -> Iterator[DBObject]:
    """Depth-first traversal of the complex-object tree rooted at ``obj``.

    Yields ``obj`` itself first, then subobjects recursively; with
    ``include_relationships=True`` local relationship objects are yielded
    too (after the subobjects of each level).
    """
    yield obj
    for member in walk_subobjects(obj):
        yield from walk_tree(member, include_relationships=include_relationships)
    if include_relationships:
        for name in obj.subrel_names():
            for rel in obj.subrel(name):
                yield rel


def relationships_of(obj: DBObject) -> List[RelationshipObject]:
    """Relationship objects this object participates in (excluding
    inheritance links, which :func:`inheritors_of` / :func:`transmitters_of`
    expose)."""
    return [
        rel
        for rel in obj._participating
        if not isinstance(rel, InheritanceLink)
    ]


def inheritors_of(obj: DBObject) -> List[DBObject]:
    """Objects that inherit values from ``obj`` (direct inheritors)."""
    return [link.inheritor for link in obj.inheritor_links]


def transmitters_of(obj: DBObject) -> List[DBObject]:
    """Objects ``obj`` inherits values from (its bound transmitters)."""
    return [link.transmitter for link in obj.inheritance_links]


def root_of(obj: DBObject) -> DBObject:
    """The outermost complex object containing ``obj`` (possibly itself)."""
    current = obj
    while current.parent is not None:
        current = current.parent
    return current
