"""Adaptation tracking on inheritance relationships (§2, §4.1).

*"If an update of the transmitter object occurs, the inheritor object
possibly has to be adapted since some local data do not fit the inherited
data any more.  In most cases this adaptation has to be done manually by a
user.  To inform the user about changes of the transmitter object the
attributes of the relationship can be used."*

The :class:`AdaptationTracker` implements exactly that: it listens on the
database's event bus; whenever a permeable member of a transmitter changes,
an :class:`AdaptationRecord` is appended for every affected inheritance
link.  The workflow is manual-by-default, as the paper prescribes — a
designer inspects :meth:`AdaptationTracker.pending`, adapts the inheritor,
and acknowledges the record.  Semi-automatic correction hooks are built on
top with :mod:`repro.consistency.triggers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.objects import DBObject, InheritanceLink
from ..core.surrogate import Surrogate

__all__ = ["AdaptationRecord", "AdaptationTracker"]


@dataclass
class AdaptationRecord:
    """One transmitter change a link's inheritor may have to adapt to."""

    link: InheritanceLink
    member: str
    kind: str  # 'attribute_updated' | 'subobject_added' | 'subobject_removed'
    old: Any = None
    new: Any = None
    seq: int = 0
    acknowledged: bool = False

    def describe(self) -> str:
        inheritor = self.link.inheritor
        return (
            f"{self.kind} of {self.member!r} on {self.link.transmitter!r} "
            f"affects {inheritor!r} (via {self.link.rel_type.name})"
        )


class AdaptationTracker:
    """Marks inheritance links whose inheritors may need adaptation."""

    def __init__(self, database):
        self.database = database
        self._records: Dict[Surrogate, List[AdaptationRecord]] = {}
        self._seq = 0
        bus = database.events
        self._subscriptions = [
            bus.subscribe("attribute_updated", self._on_attribute_updated),
            bus.subscribe("subobject_added", self._on_subobject_changed),
            bus.subscribe("subobject_removed", self._on_subobject_changed),
        ]
        database.consistency = self

    # -- event handling -----------------------------------------------------------

    def _on_attribute_updated(self, event) -> None:
        self._mark(event.subject, event.attribute, "attribute_updated",
                   old=event.old, new=event.new)

    def _on_subobject_changed(self, event) -> None:
        self._mark(event.subject, event.subclass, event.kind, new=event.member)

    def _mark(self, subject: DBObject, member: str, kind: str, old=None, new=None) -> None:
        """Record the change for every link it is visible through.

        The changed object may be the transmitter itself (attribute update)
        or a complex transmitter whose subclass content changed; in both
        cases ``member`` is the member name at ``subject``'s level.  Links
        further *up* the containment tree see the change under the name of
        the subclass the path passes through.
        """
        current: Optional[DBObject] = subject
        visible_member = member
        while current is not None:
            for link in current.inheritor_links:
                if link.rel_type.is_permeable(visible_member):
                    self._append(link, visible_member, kind, old, new)
            parent = current.parent
            if parent is None:
                break
            container = current._container
            if container is None:
                break
            visible_member = container.name
            kind = "subobject_updated"
            current = parent

    def _append(self, link: InheritanceLink, member: str, kind: str, old, new) -> None:
        self._seq += 1
        record = AdaptationRecord(
            link=link, member=member, kind=kind, old=old, new=new, seq=self._seq
        )
        self._records.setdefault(link.surrogate, []).append(record)

    # -- inspection -----------------------------------------------------------------

    def needs_adaptation(self, target) -> bool:
        """True when a link (or any link of an inheritor object) has
        unacknowledged records."""
        return bool(self.pending(target))

    def pending(self, target) -> List[AdaptationRecord]:
        """Unacknowledged records for a link or an inheritor object."""
        links: List[InheritanceLink]
        if isinstance(target, InheritanceLink):
            links = [target]
        else:
            links = list(target.inheritance_links)
        found: List[AdaptationRecord] = []
        for link in links:
            found.extend(
                record
                for record in self._records.get(link.surrogate, [])
                if not record.acknowledged
            )
        found.sort(key=lambda record: record.seq)
        return found

    def all_pending(self) -> List[AdaptationRecord]:
        """Every unacknowledged record in the database."""
        found = [
            record
            for records in self._records.values()
            for record in records
            if not record.acknowledged
        ]
        found.sort(key=lambda record: record.seq)
        return found

    def inheritors_needing_adaptation(self) -> List[DBObject]:
        """Distinct inheritors with pending records (the user's worklist)."""
        seen: Dict[Surrogate, DBObject] = {}
        for record in self.all_pending():
            inheritor = record.link.inheritor
            seen.setdefault(inheritor.surrogate, inheritor)
        return list(seen.values())

    # -- acknowledgement ---------------------------------------------------------------

    def acknowledge(self, target, up_to_seq: Optional[int] = None) -> int:
        """Mark pending records as adapted; returns how many were closed."""
        count = 0
        for record in self.pending(target):
            if up_to_seq is not None and record.seq > up_to_seq:
                continue
            record.acknowledged = True
            count += 1
        return count

    def clear(self) -> None:
        self._records.clear()

    def detach(self) -> None:
        """Unsubscribe from the event bus."""
        for subscription in self._subscriptions:
            self.database.events.unsubscribe(subscription)
        self._subscriptions = []
