"""Configurations of composite objects (§2, item 1).

*"Which components does a composite object have, which components do its
components have, etc.?  These questions must be asked with particular
consideration of configuration control which is concerned with the problem
of providing all components of an object."*

The component graph is derived from the inheritance links of component
subobjects: composite → subobject → (link) → component, and the component —
typically an interface — belongs to a composite of its own level via its
implementations.  For configuration purposes we follow: composite →
component subobjects → their transmitters → *their* composites' component
subobjects, i.e. the design-level uses-hierarchy.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Set

from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from .composite import component_subobjects
from .interfaces import implementations_of

__all__ = [
    "ConfigurationNode",
    "configuration",
    "bill_of_materials",
    "where_used",
    "missing_components",
    "provides_all_components",
]


class ConfigurationNode:
    """One node of a configuration tree.

    ``subobject`` is the component subobject inside the parent composite
    (None at the root); ``component`` is the transmitter object the
    subobject inherits from (None at the root and for unbound subobjects);
    ``realisation`` is the object whose own components were expanded at the
    next level.
    """

    def __init__(
        self,
        realisation: DBObject,
        subobject: Optional[DBObject] = None,
        component: Optional[DBObject] = None,
    ):
        self.realisation = realisation
        self.subobject = subobject
        self.component = component
        self.children: List["ConfigurationNode"] = []

    def leaves(self) -> List["ConfigurationNode"]:
        if not self.children:
            return [self]
        collected: List[ConfigurationNode] = []
        for child in self.children:
            collected.extend(child.leaves())
        return collected

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def __repr__(self) -> str:
        return (
            f"<ConfigurationNode {self.realisation!r} "
            f"children={len(self.children)}>"
        )


def _realisation_of(component: DBObject) -> DBObject:
    """The object whose structure realises ``component``.

    If the component (an interface) has implementations, the configuration
    descends into the first one whose own components exist; otherwise the
    component itself is the realisation (a leaf or a directly-used object).
    """
    for implementation in implementations_of(component):
        if implementation.parent is None and component_subobjects(implementation):
            return implementation
    return component


def configuration(
    composite: DBObject, max_depth: Optional[int] = None
) -> ConfigurationNode:
    """The configuration tree of a composite object.

    Each child answers "which components does it have"; recursion answers
    the "which components do its components have" of §2.  Shared components
    appear once per use; cycles are cut (they cannot arise through
    inheritance links, but realisation hopping is guarded anyway).
    """
    root = ConfigurationNode(composite)
    _descend(root, composite, set(), max_depth)
    return root


def _descend(
    node: ConfigurationNode,
    realisation: DBObject,
    active: Set[Surrogate],
    remaining: Optional[int],
) -> None:
    if remaining is not None and remaining <= 0:
        return
    if realisation.surrogate in active:
        return
    active = active | {realisation.surrogate}
    for subobject in component_subobjects(realisation):
        component = subobject.inheritance_links[0].transmitter
        child_realisation = _realisation_of(component)
        child = ConfigurationNode(child_realisation, subobject, component)
        node.children.append(child)
        _descend(
            child,
            child_realisation,
            active,
            None if remaining is None else remaining - 1,
        )


def bill_of_materials(composite: DBObject) -> Counter:
    """Leaf components of the configuration, counted per object type name."""
    tree = configuration(composite)
    counts: Counter = Counter()
    for leaf in tree.leaves():
        if leaf.component is not None:
            counts[leaf.component.object_type.name] += 1
    return counts


def where_used(component: DBObject) -> List[DBObject]:
    """Composites that use ``component`` (directly) as a component.

    A use is an inheritor link whose inheritor is a subobject of some
    complex object; the enclosing complex objects are returned (each once).
    """
    composites: List[DBObject] = []
    seen: Set[Surrogate] = set()
    for link in component.inheritor_links:
        owner = link.inheritor.parent
        if owner is not None and owner.surrogate not in seen:
            seen.add(owner.surrogate)
            composites.append(owner)
    return composites


def missing_components(composite: DBObject) -> List[DBObject]:
    """Subobjects of component subclasses that are *not* bound to anything.

    Configuration control's core question: are all components provided?
    A subobject whose element type declares inheritance relationships but
    which has no bound link is an unresolved component slot.
    """
    missing: List[DBObject] = []
    for name in composite.subclass_names():
        container = composite.subclass(name)
        if not container.element_type.inheritor_in:
            continue
        for member in container:
            if not member.inheritance_links:
                missing.append(member)
    return missing


def provides_all_components(composite: DBObject) -> bool:
    """True when every component slot of the whole configuration is bound."""
    if missing_components(composite):
        return False
    for subobject in component_subobjects(composite):
        realisation = _realisation_of(subobject.inheritance_links[0].transmitter)
        if realisation is not composite and not provides_all_components(realisation):
            return False
    return True
