"""Attribute domains.

Section 3: *"Attribute values belong to a particular domain.  Domains may be
simple (integer, string, etc.) or structured (using constructors as record,
list-of, set-of, etc.)."*

The domain system provides:

* the simple domains :data:`INTEGER`, :data:`REAL`, :data:`STRING`,
  :data:`BOOLEAN` and :data:`CHAR`;
* :class:`EnumDomain` for definitions like ``domain I/O = (IN, OUT)``;
* the constructors :class:`RecordDomain` (``record``), :class:`ListOf`
  (``list-of``), :class:`SetOf` (``set-of``) and :class:`MatrixOf`
  (``matrix-of``);
* :data:`POINT`, the ``Point = (X, Y: integer)`` record the paper uses
  throughout.

Every domain validates and *normalises* candidate values through
:meth:`Domain.validate`; structured values are normalised to immutable,
hashable representations (:class:`RecordValue`, tuples, frozensets) so that
``set-of record(...)`` compositions work and inherited values cannot be
mutated behind the transmitter's back.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from ..errors import DomainError

__all__ = [
    "Domain",
    "SimpleDomain",
    "IntegerDomain",
    "RealDomain",
    "StringDomain",
    "BooleanDomain",
    "CharDomain",
    "EnumDomain",
    "RecordDomain",
    "RecordValue",
    "ListOf",
    "SetOf",
    "MatrixOf",
    "AnyDomain",
    "SurrogateDomain",
    "INTEGER",
    "REAL",
    "STRING",
    "BOOLEAN",
    "CHAR",
    "ANY",
    "POINT",
    "IO",
]


class Domain:
    """Base class of all domains.

    Subclasses implement :meth:`validate`, which either returns the
    normalised value or raises :class:`~repro.errors.DomainError`.
    """

    name: str = "domain"

    def validate(self, value: Any) -> Any:
        """Return the normalised form of ``value`` or raise DomainError."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """True when ``value`` belongs to the domain."""
        try:
            self.validate(value)
        except DomainError:
            return False
        return True

    def describe(self) -> str:
        """Human-readable description used in error messages and catalogs."""
        return self.name

    def __repr__(self) -> str:
        return f"<domain {self.describe()}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Domain) and self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.describe())

    def _reject(self, value: Any, reason: str = "") -> "DomainError":
        detail = f" ({reason})" if reason else ""
        return DomainError(
            f"value {value!r} does not belong to domain {self.describe()}{detail}"
        )


class SimpleDomain(Domain):
    """Common base for the scalar domains."""


class IntegerDomain(SimpleDomain):
    """Whole numbers.  bool is rejected — the paper separates the domains."""

    name = "integer"

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise self._reject(value)
        return value


class RealDomain(SimpleDomain):
    """Floating-point numbers; integers are accepted and widened."""

    name = "real"

    def validate(self, value: Any) -> float:
        if isinstance(value, bool):
            raise self._reject(value)
        if isinstance(value, (int, float)):
            return float(value)
        raise self._reject(value)


class StringDomain(SimpleDomain):
    """Character strings of any length."""

    name = "string"

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise self._reject(value)
        return value


class BooleanDomain(SimpleDomain):
    """Truth values."""

    name = "boolean"

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise self._reject(value)
        return value


class CharDomain(SimpleDomain):
    """Strings, as the paper uses ``char`` for description attributes.

    The paper's steel-construction schema declares ``Designer: char`` and
    ``Description: char`` for evidently multi-character content, so this
    domain accepts any string (it is an alias of :class:`StringDomain`
    kept distinct for catalog fidelity).
    """

    name = "char"

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise self._reject(value)
        return value


class AnyDomain(Domain):
    """The untyped domain — accepts every value unchanged.

    Used for relationship participants declared as plain ``object`` and as
    the default for dynamically created attributes.
    """

    name = "any"

    def validate(self, value: Any) -> Any:
        return value


class SurrogateDomain(Domain):
    """Domain of the automatic ``surrogate`` attribute."""

    name = "surrogate"

    def validate(self, value: Any) -> Any:
        from .surrogate import Surrogate

        if not isinstance(value, Surrogate):
            raise self._reject(value)
        return value


class EnumDomain(Domain):
    """Enumeration domain, e.g. ``domain I/O = (IN, OUT)``.

    Values are stored as their label strings; labels are case-sensitive.
    """

    def __init__(self, name: str, labels: Sequence[str]) -> None:
        if not labels:
            raise DomainError(f"enum domain {name!r} needs at least one label")
        seen = set()
        for label in labels:
            if not isinstance(label, str) or not label:
                raise DomainError(f"enum label {label!r} must be a non-empty string")
            if label in seen:
                raise DomainError(f"duplicate enum label {label!r} in {name!r}")
            seen.add(label)
        self.name = name
        self.labels: Tuple[str, ...] = tuple(labels)

    def validate(self, value: Any) -> str:
        if isinstance(value, str) and value in self.labels:
            return value
        raise self._reject(value, f"labels are {', '.join(self.labels)}")

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.labels)})"


class RecordValue(Mapping[str, Any]):
    """Immutable, hashable record value produced by :class:`RecordDomain`.

    Fields are readable both as mapping items (``point['X']``) and as
    attributes (``point.X``).
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, Any]) -> None:
        object.__setattr__(self, "_fields", dict(fields))

    def __getitem__(self, key: str) -> Any:
        return self._fields[key]

    def __getattr__(self, key: str) -> Any:
        try:
            return self._fields[key]
        except KeyError:
            raise AttributeError(key) from None

    def __setattr__(self, key: str, value: Any) -> None:
        raise AttributeError("RecordValue is immutable")

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RecordValue):
            return self._fields == other._fields
        if isinstance(other, Mapping):
            return dict(self._fields) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fields.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"RecordValue({body})"

    def replace(self, **changes: Any) -> "RecordValue":
        """Return a copy with the given fields replaced."""
        unknown = set(changes) - set(self._fields)
        if unknown:
            raise KeyError(f"unknown record fields: {sorted(unknown)}")
        merged = dict(self._fields)
        merged.update(changes)
        return RecordValue(merged)


class RecordDomain(Domain):
    """The ``record`` constructor: a fixed set of named, typed fields.

    >>> POINT.validate({"X": 1, "Y": 2}).X
    1
    """

    def __init__(self, name: str, fields: Mapping[str, Domain]) -> None:
        if not fields:
            raise DomainError(f"record domain {name!r} needs at least one field")
        self.name = name
        self.fields: Dict[str, Domain] = dict(fields)

    def validate(self, value: Any) -> RecordValue:
        if isinstance(value, RecordValue):
            candidate: Mapping[str, Any] = value
        elif isinstance(value, Mapping):
            candidate = value
        elif isinstance(value, tuple) and len(value) == len(self.fields):
            candidate = dict(zip(self.fields, value))
        else:
            raise self._reject(value, "expected a mapping or positional tuple")
        extra = set(candidate) - set(self.fields)
        if extra:
            raise self._reject(value, f"unknown fields {sorted(extra)}")
        missing = set(self.fields) - set(candidate)
        if missing:
            raise self._reject(value, f"missing fields {sorted(missing)}")
        normalised = {
            field: domain.validate(candidate[field])
            for field, domain in self.fields.items()
        }
        return RecordValue(normalised)

    def describe(self) -> str:
        inner = ", ".join(f"{k}: {d.describe()}" for k, d in self.fields.items())
        return f"{self.name}record({inner})" if self.name == "" else (
            f"{self.name}(record: {inner})"
        )


class ListOf(Domain):
    """The ``list-of`` constructor: an ordered sequence of element values."""

    def __init__(self, element: Domain) -> None:
        self.element = element
        self.name = f"list-of {element.describe()}"

    def validate(self, value: Any) -> Tuple[Any, ...]:
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise self._reject(value, "expected an iterable of elements")
        return tuple(self.element.validate(item) for item in value)

    def describe(self) -> str:
        return self.name


class SetOf(Domain):
    """The ``set-of`` constructor: an unordered collection, duplicates merged.

    Elements must normalise to hashable values, which every built-in domain
    guarantees (records normalise to :class:`RecordValue`).
    """

    def __init__(self, element: Domain) -> None:
        self.element = element
        self.name = f"set-of {element.describe()}"

    def validate(self, value: Any) -> frozenset:
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise self._reject(value, "expected an iterable of elements")
        return frozenset(self.element.validate(item) for item in value)

    def describe(self) -> str:
        return self.name


class MatrixOf(Domain):
    """The ``matrix-of`` constructor: a rectangular grid of element values.

    The paper declares gate functions as ``Function: matrix-of boolean``
    (truth tables).  Values normalise to a tuple of equal-length row tuples;
    the empty matrix is permitted.
    """

    def __init__(self, element: Domain) -> None:
        self.element = element
        self.name = f"matrix-of {element.describe()}"

    def validate(self, value: Any) -> Tuple[Tuple[Any, ...], ...]:
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise self._reject(value, "expected an iterable of rows")
        rows = []
        width: Optional[int] = None
        for row in value:
            if isinstance(row, (str, bytes)) or not isinstance(row, Iterable):
                raise self._reject(value, "each row must be an iterable")
            normalised = tuple(self.element.validate(item) for item in row)
            if width is None:
                width = len(normalised)
            elif len(normalised) != width:
                raise self._reject(value, "rows must have equal length")
            rows.append(normalised)
        return tuple(rows)

    def describe(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Shared singleton instances and the paper's stock domains
# ---------------------------------------------------------------------------

INTEGER = IntegerDomain()
REAL = RealDomain()
STRING = StringDomain()
BOOLEAN = BooleanDomain()
CHAR = CharDomain()
ANY = AnyDomain()

#: ``domain Point = (X, Y: integer)`` — used for pin locations and placements.
POINT = RecordDomain("Point", {"X": INTEGER, "Y": INTEGER})

#: ``domain I/O = (IN, OUT)`` — direction of a pin.
IO = EnumDomain("I/O", ["IN", "OUT"])
