"""Property-based oracle tests for the compiled resolution plans.

The compiled dispatch (`DBObject.get_member` through
:class:`repro.core.resolution.ResolutionPlan`) must be *bit-for-bit*
equivalent to the original interpretive walk, which survives as
:func:`repro.core.resolution.naive_get_member`.  The properties here build
randomized schemas — diamonds, permeability subsets, defaults, dynamic
types — and randomized object graphs with rebinding and deletion, then
compare every member read on both resolvers, including the exception type
and message.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import resolution
from repro.core.attributes import AttributeSpec
from repro.core.domains import ANY
from repro.core.inheritance import InheritanceRelationshipType
from repro.core.objects import DBObject, bind, new_object
from repro.core.objtype import ObjectType
from repro.errors import (
    InheritanceError,
    ObjectDeletedError,
    SchemaError,
    UnknownAttributeError,
)

MEMBER_POOL = ("alpha", "beta", "gamma", "delta")
PROBE_NAMES = MEMBER_POOL + ("surrogate", "nosuchmember")

_counter = [0]


def _uname(prefix):
    _counter[0] += 1
    return f"{prefix}_{_counter[0]}"


def assert_resolvers_agree(obj: DBObject, name: str) -> None:
    """Plan-based get_member must match the interpretive oracle exactly."""
    try:
        expected = resolution.naive_get_member(obj, name)
    except Exception as exc:  # noqa: BLE001 - we re-assert the exact type
        with pytest.raises(type(exc)) as caught:
            obj.get_member(name)
        assert str(caught.value) == str(exc)
        return
    assert obj.get_member(name) == expected
    assert obj.is_member_inherited(name) == resolution.naive_is_member_inherited(
        obj, name
    )


def check_object(obj: DBObject) -> None:
    for name in PROBE_NAMES:
        assert_resolvers_agree(obj, name)
    if not obj.deleted:
        # visible_member_names comes straight off the plan; re-derive the
        # canonical order the interpretive version produced.
        names = ["surrogate"]
        names.extend(obj.object_type.effective_attributes())
        names.extend(obj.object_type.effective_subclasses())
        names.extend(obj.object_type.effective_subrels())
        seen = set()
        expected = tuple(n for n in names if not (n in seen or seen.add(n)))
        assert obj.visible_member_names() == expected


# ---------------------------------------------------------------------------
# randomized schemas + object graphs
# ---------------------------------------------------------------------------

member_subsets = st.sets(st.sampled_from(MEMBER_POOL), min_size=1, max_size=4)


@st.composite
def schema_actions(draw):
    """A recipe: transmitter attrs, two permeability subsets, object script."""
    transmitter_members = sorted(draw(member_subsets))
    # Which of the transmitter's members carry defaults.
    defaulted = sorted(
        draw(st.sets(st.sampled_from(transmitter_members), max_size=4))
    )
    perm_a = sorted(draw(st.sets(st.sampled_from(transmitter_members), min_size=1)))
    perm_b = sorted(draw(st.sets(st.sampled_from(transmitter_members), min_size=1)))
    values = draw(
        st.lists(st.integers(min_value=0, max_value=99), min_size=8, max_size=8)
    )
    # Script bits: bind via A?, bind via B?, set locals?, rebind?, delete?
    script = draw(st.tuples(*(st.booleans() for _ in range(6))))
    allow_dynamic = draw(st.booleans())
    return (transmitter_members, defaulted, perm_a, perm_b, values, script,
            allow_dynamic)


@settings(max_examples=60, deadline=None)
@given(recipe=schema_actions())
def test_plan_matches_oracle_over_random_schemas(recipe):
    (transmitter_members, defaulted, perm_a, perm_b, values, script,
     allow_dynamic) = recipe
    bind_a, bind_b, set_locals, do_rebind, do_delete, declare_b_first = script

    attrs = {}
    for index, member in enumerate(transmitter_members):
        if member in defaulted:
            attrs[member] = AttributeSpec(member, ANY, default=index * 1000)
        else:
            attrs[member] = ANY
    transmitter_type = ObjectType(_uname("Trans"), attributes=attrs)
    rel_a = InheritanceRelationshipType(
        _uname("RelA"), transmitter_type=transmitter_type, inheriting=perm_a
    )
    rel_b = InheritanceRelationshipType(
        _uname("RelB"), transmitter_type=transmitter_type, inheriting=perm_b
    )
    inheritor_type = ObjectType(_uname("Inh"))
    if allow_dynamic:
        inheritor_type.allow_dynamic = True
    # Declaration order is the diamond-disambiguation order; exercise both.
    order = (rel_b, rel_a) if declare_b_first else (rel_a, rel_b)
    for rel in order:
        inheritor_type.declare_inheritor_in(rel)

    t1 = new_object(transmitter_type)
    t2 = new_object(transmitter_type)
    for index, member in enumerate(transmitter_members):
        t1.set_attribute(member, values[index % len(values)])
        if index % 2 == 0:
            t2.set_attribute(member, values[(index + 3) % len(values)])
    inh = new_object(inheritor_type)

    if set_locals and not (bind_a or bind_b):
        # Unbound inheritors may hold local values for inheritable members
        # (classical generalization).
        for index, member in enumerate(sorted(set(perm_a) | set(perm_b))):
            inh._attrs[member] = values[(index + 5) % len(values)]
    if bind_a:
        bind(inh, t1, rel_a)
    if bind_b:
        bind(inh, t2, rel_b)

    for obj in (inh, t1, t2):
        check_object(obj)

    if do_rebind and bind_a:
        inh.link_for(rel_a).unbind()
        bind(inh, t2, rel_a)
        for obj in (inh, t1, t2):
            check_object(obj)

    if do_delete:
        t1.delete(unbind_inheritors=True)
        for obj in (inh, t1, t2):
            check_object(obj)


@settings(max_examples=40, deadline=None)
@given(
    depth=st.integers(min_value=2, max_value=6),
    probe=st.sampled_from(MEMBER_POOL),
    set_at=st.integers(min_value=0, max_value=6),
)
def test_plan_matches_oracle_on_deep_chains(depth, probe, set_at):
    """k-level transmitter chains: the iterative walk equals the recursion."""
    base_type = ObjectType(
        _uname("ChainBase"), attributes={name: ANY for name in MEMBER_POOL}
    )
    top = new_object(base_type)
    for index, name in enumerate(MEMBER_POOL):
        top.set_attribute(name, index * 7)
    previous_type, previous = base_type, top
    for level in range(depth):
        rel = InheritanceRelationshipType(
            _uname(f"ChainRel{level}"),
            transmitter_type=previous_type,
            inheriting=list(MEMBER_POOL),
        )
        level_type = ObjectType(_uname(f"ChainLevel{level}"))
        level_type.declare_inheritor_in(rel)
        node = new_object(level_type)
        bind(node, previous, rel)
        previous_type, previous = level_type, node
    if set_at <= depth:
        top.set_attribute(probe, 12345)
    for name in PROBE_NAMES:
        assert_resolvers_agree(previous, name)
    assert previous.get_member(probe) == top.get_member(probe)


# ---------------------------------------------------------------------------
# deterministic corners
# ---------------------------------------------------------------------------

def _diamond():
    t_type = ObjectType(_uname("DTrans"), attributes={"alpha": ANY, "beta": ANY})
    rel_a = InheritanceRelationshipType(
        _uname("DRelA"), transmitter_type=t_type, inheriting=["alpha", "beta"]
    )
    rel_b = InheritanceRelationshipType(
        _uname("DRelB"), transmitter_type=t_type, inheriting=["alpha"]
    )
    i_type = ObjectType(_uname("DInh"))
    i_type.declare_inheritor_in(rel_a)
    i_type.declare_inheritor_in(rel_b)
    return t_type, rel_a, rel_b, i_type


def test_diamond_resolves_in_declaration_order():
    t_type, rel_a, rel_b, i_type = _diamond()
    t1, t2 = new_object(t_type), new_object(t_type)
    t1.set_attribute("alpha", "via-a")
    t2.set_attribute("alpha", "via-b")
    inh = new_object(i_type)
    bind(inh, t2, rel_b)
    assert inh.get_member("alpha") == "via-b"
    bind(inh, t1, rel_a)
    # rel_a was declared first: it wins once bound, regardless of bind order.
    assert inh.get_member("alpha") == "via-a"
    assert_resolvers_agree(inh, "alpha")


def test_schema_evolution_recompiles_plan():
    t_type = ObjectType(_uname("ETrans"), attributes={"alpha": ANY})
    i_type = ObjectType(_uname("EInh"))
    inh = new_object(i_type)
    with pytest.raises(UnknownAttributeError):
        inh.get_member("alpha")  # compiles a plan without `alpha`
    epoch_before = resolution.schema_epoch()
    rel = InheritanceRelationshipType(
        _uname("ERel"), transmitter_type=t_type, inheriting=["alpha"]
    )
    i_type.declare_inheritor_in(rel)
    assert resolution.schema_epoch() > epoch_before
    transmitter = new_object(t_type)
    transmitter.set_attribute("alpha", 11)
    bind(inh, transmitter, rel)
    assert inh.get_member("alpha") == 11  # stale plan was recompiled
    assert "alpha" in inh.visible_member_names()


def test_bound_inheritor_rejects_local_update_with_seed_message():
    t_type, rel_a, _rel_b, i_type = _diamond()
    transmitter, inh = new_object(t_type), new_object(i_type)
    bind(inh, transmitter, rel_a)
    with pytest.raises(InheritanceError) as err:
        inh.set_attribute("alpha", 1)
    assert "must not be updated in the inheritor" in str(err.value)


def test_deleted_transmitter_raises_through_the_chain():
    t_type, rel_a, _rel_b, i_type = _diamond()
    transmitter, inh = new_object(t_type), new_object(i_type)
    transmitter.set_attribute("alpha", 5)
    bind(inh, transmitter, rel_a)
    transmitter._deleted = True  # simulate mid-walk deletion
    with pytest.raises(ObjectDeletedError):
        inh.get_member("alpha")
    assert_resolvers_agree(inh, "alpha")
    transmitter._deleted = False


def test_dynamic_attributes_resolve_and_raise_like_seed():
    dyn_type = ObjectType(_uname("Dyn"))
    dyn_type.allow_dynamic = True
    obj = new_object(dyn_type)
    with pytest.raises(UnknownAttributeError) as err:
        obj.get_member("freeform")
    assert "dynamic attribute" in str(err.value)
    obj.set_attribute("freeform", 3)
    assert obj.get_member("freeform") == 3
    assert_resolvers_agree(obj, "freeform")


def test_subclass_member_is_not_an_attribute_error_preserved():
    element = ObjectType(_uname("Elem"))
    owner_type = ObjectType(_uname("Owner"), subclasses={"parts": element})
    owner = new_object(owner_type)
    with pytest.raises(SchemaError) as err:
        owner.set_attribute("parts", 1)
    assert "is a subclass, not an attribute" in str(err.value)


def test_plan_is_reused_until_schema_changes():
    t_type = ObjectType(_uname("RTrans"), attributes={"alpha": ANY})
    obj = new_object(t_type)
    obj.get_member("alpha")
    plan = t_type._plan
    assert plan is not None
    obj.get_member("alpha")
    assert t_type._plan is plan  # O(1) validation, no recompile
    ObjectType(_uname("Unrelated"))  # any type definition bumps the epoch
    obj.get_member("alpha")
    assert t_type._plan is not plan


def test_plan_permeable_sets_match_rel_declarations():
    _t_type, rel_a, rel_b, i_type = _diamond()
    plan = resolution.plan_for(i_type)
    assert plan.permeable_sets[rel_a.name] == frozenset(["alpha", "beta"])
    assert plan.permeable_sets[rel_b.name] == frozenset(["alpha"])
    assert plan.inherited_names == frozenset(["alpha", "beta"])
