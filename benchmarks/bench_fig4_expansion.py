"""E4 — Figure 4: composite expansion over growing hierarchies.

Expansion (§6) materialises a composite with its components.  Expected
shape: cost linear in the number of objects the expansion touches, i.e.
exponential in depth for a fixed fanout tree — and depth-limited expansion
cuts it correspondingly.
"""

import pytest

from repro.composition import configuration, expand, provides_all_components
from repro.workloads import gate_database, generate_component_tree

DEPTHS = [1, 3, 5]


class TestExpansion:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_expand_full(self, benchmark, depth):
        db = gate_database("fig4-bench")
        top, created = generate_component_tree(db, depth=depth, fanout=2)
        expansion = benchmark(expand, top)
        assert len(expansion.objects) > created

    def test_expand_depth_limited(self, benchmark):
        db = gate_database("fig4-bench")
        top, _ = generate_component_tree(db, depth=5, fanout=2)
        shallow = benchmark(expand, top, 1)
        assert len(shallow.objects) < len(expand(top).objects)


class TestConfigurationTraversal:
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_configuration_tree(self, benchmark, depth):
        db = gate_database("fig4-bench")
        top, created = generate_component_tree(db, depth=depth, fanout=2)
        tree = benchmark(configuration, top)
        assert tree.size() == created

    @pytest.mark.parametrize("depth", [1, 3])
    def test_provides_all_components(self, benchmark, depth):
        db = gate_database("fig4-bench")
        top, _ = generate_component_tree(db, depth=depth, fanout=2)
        assert benchmark(provides_all_components, top)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    depth = 2 if suite.quick else 3

    @suite.case(f"expand_full[{depth}]")
    def expand_case():
        db = gate_database("fig4-bench")
        top, _ = generate_component_tree(db, depth=depth, fanout=2)
        return lambda: expand(top)

    @suite.case(f"configuration_tree[{depth}]")
    def config_case():
        db = gate_database("fig4-bench")
        top, _ = generate_component_tree(db, depth=depth, fanout=2)
        return lambda: configuration(top)
