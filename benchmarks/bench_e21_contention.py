"""E21 — flight-recorder tax and the contention observatory under load.

The service tier (next PR) will keep a recorder ticking and the health
rules evaluating on every live database, so this experiment prices the
new surfaces and proves the contention telemetry works under real
threads:

* **recorder tick** — one :meth:`~repro.obs.recorder.FlightRecorder.tick`
  over a registry populated by the Figure-2 update workload: a full
  registry walk plus histogram percentile summaries, the cost the daemon
  thread pays per interval;
* **dark path** — the recorder is pull-based and subscribes to nothing,
  so engine updates must cost the same whether the ring is empty or full.
  ``update_recorder_idle`` vs ``update_recorder_full_ring`` measures the
  same propagation loop on an observed database with zero buffered
  samples and with the ring at capacity; the pytest variant asserts the
  full-ring path stays within noise of the idle one (min-of-k, generous
  3x bound), and ``update_dark`` is the observability-off floor;
* **contended grant** — one full blocking-lock round: K reader threads
  park behind an exclusive holder (waits-for edges registered, blocked
  events audited), the holder releases, every waiter is granted and the
  wait histogram absorbs K observations.  The pytest variant additionally
  walks a health rule through ok → degraded → ok around the contention
  burst.
"""

import threading
import time

from repro.engine import Database
from repro.obs.health import DEGRADED, OK, HealthMonitor, percentile_rule
from repro.txn import LockMode, LockTable
from repro.workloads import gate_database, make_implementation, make_interface

FANOUT = 10
WAITERS = 4
HOLD = 0.08  # long enough that wait p95 crosses the 50ms health threshold


def _workload_db(observe, name="e21-bench"):
    """The Figure-2 update topology: one interface, FANOUT inheritors."""
    db = gate_database(name)
    if observe:
        db.enable_observability(tracing=False, audit=False)
    iface = make_interface(db)
    for _ in range(FANOUT):
        make_implementation(db, iface)
    return db, iface


def _exercised_recorder(ticks=0):
    """An observed db after one update pass, with ``ticks`` samples taken."""
    db, iface = _workload_db(observe=True)
    for i in range(50):
        iface.set_attribute("Length", 10 + i % 50)
    recorder = db.obs.recorder
    for i in range(ticks):
        recorder.tick(now=float(i))
    return db, iface, recorder


def run_contention_round(table, surrogate, waiters=WAITERS, hold=HOLD):
    """One blocking-lock round; returns the waits-for edges seen parked.

    Txn 0 holds X; ``waiters`` reader threads park behind it; after
    ``hold`` seconds the holder releases and every waiter is granted.
    """
    table.acquire(0, surrogate, LockMode.X, origin="write")
    threads = [
        threading.Thread(
            target=table.acquire,
            args=(txn, surrogate, LockMode.S),
            kwargs={"wait": True, "timeout": 30.0, "origin": "read"},
        )
        for txn in range(1, waiters + 1)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + 10.0
    while table.waiting_count() < waiters and time.monotonic() < deadline:
        time.sleep(0.001)
    edges = table.waits_for()
    time.sleep(hold)
    table.release_all(0)
    for thread in threads:
        thread.join(timeout=30.0)
    for txn in range(1, waiters + 1):
        table.release_all(txn)
    return edges


def _min_of(fn, rounds=7):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestRecorderTax:
    def test_tick_cost(self, benchmark):
        """One tick = registry walk + percentile summaries + ring append."""
        _db, _iface, recorder = _exercised_recorder()
        benchmark(recorder.tick)
        assert recorder.ticks > 0

    def test_full_ring_update_within_noise_of_idle(self):
        """The dark-path contract: a full ring must not tax updates.

        The recorder adds no hot-path code, so the same propagation batch
        on the same observed database must cost about the same with 0 and
        with ``capacity`` buffered samples.  Min-of-7 with a generous 3x
        bound: this guards against accidentally wiring the recorder into
        the update path, not against scheduler noise.
        """
        def batch(iface, counter):
            def run():
                for _ in range(200):
                    iface.set_attribute("Length", 10 + next(counter) % 50)
            return run

        _db, iface, _recorder = _exercised_recorder(ticks=0)
        idle = _min_of(batch(iface, iter(range(10**9))))
        db2, iface2, recorder2 = _exercised_recorder(ticks=0)
        for i in range(recorder2.capacity):
            recorder2.tick(now=float(i))
        assert len(recorder2) == recorder2.capacity
        full = _min_of(batch(iface2, iter(range(10**9))))
        assert full < idle * 3.0 + 1e-4

    def test_update_dark_floor(self, benchmark):
        """Observability off: the recorder cannot even be reached."""
        db, iface = _workload_db(observe=False)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))
        assert db.obs is None

    def test_update_recorder_idle(self, benchmark):
        """Observed update with the ring empty: the recorder's floor."""
        _db, iface, _recorder = _exercised_recorder(ticks=0)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))

    def test_update_recorder_full_ring(self, benchmark):
        """Observed update with the ring at capacity: must match idle."""
        _db, iface, recorder = _exercised_recorder(ticks=0)
        for i in range(recorder.capacity):
            recorder.tick(now=float(i))
        assert len(recorder) == recorder.capacity
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))


class TestContentionObservatory:
    def test_contention_round_populates_observatory(self):
        db = Database("e21-contention", observe=True)
        table = LockTable(obs=db.obs)
        edges = run_contention_round(
            table, db.surrogates.fresh(), waiters=WAITERS, hold=HOLD
        )
        # Edges were live while parked and drained with the grants.
        assert edges == {(txn, 0) for txn in range(1, WAITERS + 1)}
        assert table.waits_for() == set()
        metrics = db.obs.metrics
        assert metrics.counter("locks.waits.read").value == WAITERS
        assert metrics.counter("locks.grants_after_wait").value == WAITERS
        histogram = metrics.histogram("locks.wait_seconds")
        assert histogram.count == WAITERS
        assert histogram.percentile(95) >= HOLD * 0.5

    def test_contended_grant(self, benchmark):
        """One full blocking round: spawn, park, release, grant, join."""
        db = Database("e21-grant", observe=True)
        table = LockTable(obs=db.obs)
        surrogates = db.surrogates

        benchmark(
            lambda: run_contention_round(
                table, surrogates.fresh(), waiters=WAITERS, hold=0.002
            )
        )
        assert db.obs.metrics.counter("locks.grants_after_wait").value > 0

    def test_health_walks_ok_degraded_ok(self):
        db = Database("e21-health", observe=True)
        table = LockTable(obs=db.obs)
        recorder = db.obs.recorder
        monitor = HealthMonitor(
            recorder,
            [percentile_rule("lock-wait-p95", "locks.wait_seconds", 0.05)],
        )
        recorder.tick(now=0.0)
        recorder.tick(now=1.0)
        assert monitor.evaluate().status == OK

        run_contention_round(table, db.surrogates.fresh())
        recorder.tick(now=2.0)
        report = monitor.evaluate()
        assert report.status == DEGRADED
        assert "locks.wait_seconds" in report.results[0].reason

        for i in range(6):  # quiet window: the rule clears
            recorder.tick(now=3.0 + i)
        assert monitor.evaluate().status == OK


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    waiters = 2 if suite.quick else WAITERS

    @suite.case("recorder_tick")
    def tick_case():
        _db, _iface, recorder = _exercised_recorder()
        return recorder.tick

    @suite.case("update_dark")
    def dark_case():
        _db, iface = _workload_db(observe=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("update_recorder_idle")
    def idle_case():
        _db, iface, _recorder = _exercised_recorder(ticks=0)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("update_recorder_full_ring")
    def full_ring_case():
        _db, iface, recorder = _exercised_recorder(ticks=0)
        for i in range(recorder.capacity):
            recorder.tick(now=float(i))
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case(f"contended_grant[{waiters}]")
    def contention_case():
        db = Database("e21-harness", observe=True)
        table = LockTable(obs=db.obs)
        surrogates = db.surrogates

        def timed():
            # One full round: spawn, park, release, grant, join.  Thread
            # lifecycle is part of the price of a contended grant.
            run_contention_round(
                table, surrogates.fresh(), waiters=waiters, hold=0.002
            )

        return timed
