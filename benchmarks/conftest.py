"""Shared benchmark fixtures and scale parameters.

Every benchmark regenerates one experiment of DESIGN.md's index (E1–E9).
Scales are kept laptop-friendly; the *shapes* (who wins, how costs grow)
are what EXPERIMENTS.md records, not absolute numbers.
"""

import pytest

from repro.workloads import gate_database, steel_database


@pytest.fixture
def db():
    return gate_database("bench")


@pytest.fixture
def steel_db():
    return steel_database("bench-steel")
