"""Objects, complex objects, relationship objects and value inheritance.

This module implements the instance level of the model:

* :class:`DBObject` — an object with surrogate identity, typed attributes,
  local subclasses of subobjects and local relationship subclasses (§3
  "Complex objects"), plus the inheritor/transmitter roles of §4;
* :class:`LocalSubclass` / :class:`LocalRelClass` — the per-complex-object
  containers for subobjects and local relationships;
* :class:`RelationshipObject` — relationship instances with named
  participants;
* :class:`InheritanceLink` — the relationship object representing one
  bound inheritance relationship, through which **values** flow from the
  transmitter to the inheritor (§4.1);
* :func:`bind` — establishing a link, with all the checks the paper's
  semantics imply (typing, single transmitter per relationship type, no
  local shadowing of inherited data, no object-level cycles).

Value-inheritance semantics implemented here:

* inherited members resolve **live** against the transmitter, so a
  transmitter update is "transmitted into the implementations" immediately;
* inherited data "must not be updated within a single implementation" —
  writes to permeable members of a bound inheritor raise
  :class:`~repro.errors.InheritanceError`;
* an unbound inheritor "only inherits the attribute structure of the
  transmitter type" — it may hold local values for those members, which is
  exactly classical generalization (§4.1's special case).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from ..errors import (
    ConstraintViolation,
    InheritanceError,
    ObjectDeletedError,
    SchemaError,
    UnknownAttributeError,
)
from ..expr import EvalContext, truthy
from . import resolution as _resolution
from .constraints import check_all
from .inheritance import INHERITOR_ROLE, TRANSMITTER_ROLE, InheritanceRelationshipType
from .objtype import ObjectType, SubclassSpec, SubrelSpec, TypeBase
from .reltype import RelationshipType
from .slots import UNSET, AttrsView, store_for
from .surrogate import Surrogate, SurrogateGenerator

__all__ = [
    "DBObject",
    "RelationshipObject",
    "InheritanceLink",
    "LocalSubclass",
    "LocalRelClass",
    "bind",
    "new_object",
    "new_relationship",
]

#: Surrogate source for objects created outside any database (unit tests,
#: scratch modelling).  Databases use their own generator.
_FALLBACK_SURROGATES = SurrogateGenerator("local")


def _fresh_surrogate(database) -> Surrogate:
    generator = getattr(database, "surrogates", None)
    if generator is not None:
        return generator.fresh()
    return _FALLBACK_SURROGATES.fresh()


class DBObject:
    """An object of the model: identity, attributes, subobjects, inheritance.

    Instances are normally created through a
    :class:`~repro.engine.database.Database` (global classes) or through a
    :class:`LocalSubclass` (subobjects of a complex object); direct
    construction via :func:`new_object` is supported for standalone use.
    """

    def __init__(
        self,
        object_type: TypeBase,
        surrogate: Surrogate,
        database=None,
        parent: Optional["DBObject"] = None,
    ):
        if not isinstance(object_type, TypeBase):
            raise SchemaError(f"{object_type!r} is not a type")
        self.object_type = object_type
        self.surrogate = surrogate
        self.database = database
        self.parent = parent
        #: Local attribute values live in the type's slotted column store
        #: (see repro.core.slots): the object holds a row index, one cell
        #: per declared attribute.  Dynamic attributes and post-deletion
        #: spills go to the lazily allocated overflow dict.  ``_attrs``
        #: remains available as a raw mapping view (property below).
        store = object_type._store
        if store is None or store.epoch != _resolution._SCHEMA_EPOCH:
            store = store_for(object_type, getattr(database, "obs", None))
        self._store = store
        self._row = store.alloc()
        self._overflow: Optional[Dict[str, Any]] = None
        #: Raw mapping view over local storage (slots + overflow) — the
        #: compatibility surface for code that used to poke the
        #: per-instance dict directly (transaction undo, version revert,
        #: merge apply, persistence restore).  Pure storage semantics: no
        #: validation, no events, no epoch bumps.  A plain attribute, not
        #: a property: the view is stateless and raw writes are hot.
        self._attrs = AttrsView(self)
        self._subclasses: Dict[str, LocalSubclass] = {}
        self._subrels: Dict[str, LocalRelClass] = {}
        #: rel-type name -> InheritanceLink where self is the inheritor.
        self._links_as_inheritor: Dict[str, "InheritanceLink"] = {}
        #: Links where self is the transmitter.
        self._links_as_transmitter: List["InheritanceLink"] = []
        #: Relationship objects this object participates in (any role).
        self._participating: Set["RelationshipObject"] = set()
        #: The container this object lives in, when it is a subobject.
        self._container: Optional[LocalSubclass] = None
        self._deleted = False
        #: Epoch counters (see repro.core.resolution): consumers snapshot
        #: these to validate cached resolutions in O(1) instead of
        #: subscribing to events.  The binding epoch moves when this
        #: object's *resolution topology* changes — its own bind/unbind or
        #: any upstream binding change (bumps propagate down the inheritor
        #: subtree, so one integer compare covers the whole chain).  The
        #: mutation epoch moves on attribute writes and container content
        #: changes of this object only.
        self._binding_epoch = 0
        self._mutation_epoch = 0
        #: member name -> (schema_epoch, binding_epoch, holder, entry, hops,
        #: column): the memoised end of the delegation chain for that
        #: member, valid while both epochs match (values are always read
        #: live).  ``column`` is the holder's slot array for the member (or
        #: None when it has no declared slot) — the steady-state read is
        #: one list index off it.
        self._member_memo: Dict[str, Any] = {}
        if database is not None and hasattr(database, "_adopt"):
            database._adopt(self)
        for name, spec in object_type.effective_subclasses().items():
            self._subclasses[name] = LocalSubclass(self, spec)
        for name, spec in object_type.effective_subrels().items():
            self._subrels[name] = LocalRelClass(self, spec)

    # -- basic state ----------------------------------------------------------

    @property
    def deleted(self) -> bool:
        """True once the object (or its enclosing complex object) was deleted."""
        return self._deleted

    def _ensure_alive(self) -> None:
        if self._deleted:
            raise ObjectDeletedError(f"{self!r} was deleted")

    # -- local storage ----------------------------------------------------------

    def _local_value(self, name: str, default: Any = None) -> Any:
        """The locally stored value of ``name`` (no inheritance), or
        ``default`` — the slot-layer fast path behind ``_attrs.get``."""
        row = self._row
        if row >= 0:
            store = self._store
            if store.epoch != _resolution._SCHEMA_EPOCH:
                store.refresh(_resolution.plan_for(self.object_type))
            slot = store.slot_of.get(name)
            if slot is not None:
                value = store.columns[slot][row]
                return default if value is UNSET else value
        overflow = self._overflow
        if overflow is None:
            return default
        return overflow.get(name, default)

    def _has_local_value(self, name: str) -> bool:
        """True when ``name`` has a locally stored value (``name in _attrs``)."""
        return self._local_value(name, UNSET) is not UNSET

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DBObject):
            return self.surrogate == other.surrogate
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.surrogate)

    def __repr__(self) -> str:
        flags = " deleted" if self._deleted else ""
        return f"<{self.object_type.name} {self.surrogate}{flags}>"

    def _emit(self, kind: str, **data: Any) -> None:
        bus = getattr(self.database, "events", None)
        if bus is not None:
            bus.emit(kind, subject=self, **data)

    # -- inheritance plumbing ---------------------------------------------------

    @property
    def inheritance_links(self) -> Tuple["InheritanceLink", ...]:
        """Links in which this object is the inheritor, in binding order."""
        return tuple(self._links_as_inheritor.values())

    @property
    def inheritor_links(self) -> Tuple["InheritanceLink", ...]:
        """Links in which this object is the transmitter."""
        return tuple(self._links_as_transmitter)

    def transmitter_of(self, rel_type: InheritanceRelationshipType) -> Optional["DBObject"]:
        """The transmitter this object is bound to via ``rel_type``, if any."""
        link = self._links_as_inheritor.get(rel_type.name)
        return link.transmitter if link is not None else None

    def link_for(self, rel_type: InheritanceRelationshipType) -> Optional["InheritanceLink"]:
        """The inheritance link for ``rel_type``, if bound."""
        return self._links_as_inheritor.get(rel_type.name)

    def _plan(self) -> "_resolution.ResolutionPlan":
        """The valid resolution plan of this object's type (compile lazily)."""
        object_type = self.object_type
        plan = object_type._plan
        if plan is not None and plan.schema_epoch == _resolution._SCHEMA_EPOCH:
            return plan
        return _resolution.compile_plan(
            object_type, getattr(self.database, "obs", None)
        )

    def _binding_link_for_member(self, name: str) -> Optional["InheritanceLink"]:
        """The first bound link through which ``name`` is inherited.

        Resolution follows the declaration order of ``inheritor-in`` on the
        object's type (baked into the plan entry), which disambiguates
        diamond situations.
        """
        entry = self._plan().entries.get(name)
        if entry is None or not entry.rels:
            return None
        links = self._links_as_inheritor
        for rel_name in entry.rels:
            link = links.get(rel_name)
            if link is not None:
                return link
        return None

    def is_member_inherited(self, name: str) -> bool:
        """True when ``name`` currently resolves through a bound transmitter."""
        return self._binding_link_for_member(name) is not None

    def _bump_binding_epoch(self) -> None:
        """Move the resolution-topology epoch of this object *and* every
        transitive inheritor below it.

        Binding changes are rare and reads are hot, so the cost of a
        topology change is paid here, walking the downstream subtree once —
        in exchange, any consumer holding a memoised resolution validates
        it with a single integer compare against the inheritor's own epoch
        (no per-hop chain walk, no event subscription).
        """
        stack: List["DBObject"] = [self]
        seen: set = set()
        while stack:
            node = stack.pop()
            node_id = id(node)
            if node_id in seen:
                continue
            seen.add(node_id)
            node._binding_epoch += 1
            for link in node._links_as_transmitter:
                stack.append(link.inheritor)

    # -- member resolution ------------------------------------------------------

    def get_member(self, name: str) -> Any:
        """Resolve member ``name`` — the object protocol the whole library uses.

        Order: the automatic ``surrogate``; inherited (bound) members, which
        shadow everything local by construction; local attribute values;
        local subclass / subrel containers (as lists); declared attributes
        without a value (their default, else ``None``).  Unknown names raise
        :class:`~repro.errors.UnknownAttributeError`.

        Dispatch goes through the type's compiled
        :class:`~repro.core.resolution.ResolutionPlan`: plan validity is one
        integer compare against the schema epoch, and bound delegation
        chains are walked iteratively instead of rescanning ``inheritor-in``
        per level.  The end of the chain — the *holder* that actually
        supplies the value — is memoised per member and revalidated with two
        integer compares (schema epoch + this object's binding epoch, which
        moves on any upstream topology change), so a steady-state inherited
        read costs O(1) regardless of chain depth.  Values are always read
        live off the holder; only the topology is memoised.
        """
        if self._deleted:
            raise ObjectDeletedError(f"{self!r} was deleted")
        schema_epoch = _resolution._SCHEMA_EPOCH
        memo = self._member_memo.get(name)
        if (
            memo is not None
            and memo[0] == schema_epoch
            and memo[1] == self._binding_epoch
        ):
            holder = memo[2]
            hops = memo[4]
            if hops:
                if holder._deleted:
                    raise ObjectDeletedError(f"{holder!r} was deleted")
                obs = getattr(self.database, "obs", None)
                if obs is not None:
                    # One count per delegation hop: a read through a
                    # k-level interface hierarchy contributes k.
                    obs.metrics.counter("reads.inherited").inc(hops)
                    obs.metrics.counter("resolution.fast_hits").inc()
            column = memo[5]
            if column is not None:
                # The steady-state read: one list index into the holder's
                # slot array (columns are stable within a schema epoch).
                value = column[holder._row]
                if value is not UNSET:
                    return value
            else:
                overflow = holder._overflow
                if overflow is not None and name in overflow:
                    return overflow[name]
            return self._member_from_holder(holder, memo[3], name)
        object_type = self.object_type
        plan = object_type._plan
        if plan is None or plan.schema_epoch != schema_epoch:
            plan = _resolution.compile_plan(
                object_type, getattr(self.database, "obs", None)
            )
        entry = plan.entries.get(name)
        current = self
        hops = 0
        if entry is not None:
            if entry.kind == "surrogate":
                return self.surrogate
            rels = entry.rels
            if rels:
                links = current._links_as_inheritor
                link = None
                for rel_name in rels:
                    link = links.get(rel_name)
                    if link is not None:
                        break
                if link is not None:
                    # Walk the bound chain iteratively; each hop costs a
                    # plan lookup (validated by epoch) and a dict probe
                    # instead of a full interpretive re-scan.
                    while link is not None:
                        current = link.transmitter
                        hops += 1
                        if type(current).get_member is not DBObject.get_member:
                            # Subclasses with their own protocol (relationship
                            # participants) take over from here; their answer
                            # is not epoch-tracked, so don't memoise it.
                            obs = getattr(self.database, "obs", None)
                            if obs is not None:
                                obs.metrics.counter("reads.inherited").inc(hops)
                                obs.metrics.counter("resolution.fast_hits").inc()
                            return current.get_member(name)
                        if current._deleted:
                            raise ObjectDeletedError(f"{current!r} was deleted")
                        current_type = current.object_type
                        cplan = current_type._plan
                        if cplan is None or cplan.schema_epoch != schema_epoch:
                            cplan = _resolution.compile_plan(
                                current_type, getattr(current.database, "obs", None)
                            )
                        entry = cplan.entries.get(name)
                        link = None
                        if entry is not None and entry.rels:
                            links = current._links_as_inheritor
                            for rel_name in entry.rels:
                                link = links.get(rel_name)
                                if link is not None:
                                    break
                    obs = getattr(self.database, "obs", None)
                    if obs is not None:
                        obs.metrics.counter("reads.inherited").inc(hops)
                        obs.metrics.counter("resolution.fast_hits").inc()
            # The resolution (not the value) is memoised: a chain of plain
            # objects ending at `current` stays valid until the schema or
            # this object's binding topology moves.  The holder's slot
            # array is memoised with it, so steady-state reads index it
            # directly.
            store = current._store
            if store.epoch != schema_epoch:
                store.refresh(
                    _resolution.plan_for(
                        current.object_type, getattr(current.database, "obs", None)
                    )
                )
            slot = entry.slot if entry is not None else None
            column = store.columns[slot] if slot is not None else None
            self._member_memo[name] = (
                schema_epoch, self._binding_epoch, current, entry, hops, column,
            )
            if column is not None:
                value = column[current._row]
                if value is not UNSET:
                    return value
            else:
                overflow = current._overflow
                if overflow is not None and name in overflow:
                    return overflow[name]
            return self._member_from_holder(current, entry, name)
        overflow = current._overflow
        if overflow is not None and name in overflow:
            return overflow[name]
        return self._member_from_holder(current, entry, name)

    @staticmethod
    def _member_from_holder(
        holder: "DBObject",
        entry: Optional["_resolution.MemberEntry"],
        name: str,
    ) -> Any:
        """Local resolution on the chain's holder, after its ``_attrs`` miss:
        containers as lists, declared defaults, then the seed's errors."""
        if entry is not None:
            container = holder._subclasses.get(name)
            if container is not None:
                return container.members()
            rel_container = holder._subrels.get(name)
            if rel_container is not None:
                return rel_container.members()
            if entry.spec is not None:
                return entry.default
        holder_type = holder.object_type
        if getattr(holder_type, "allow_dynamic", False):
            raise UnknownAttributeError(
                f"{holder!r} has no value for dynamic attribute {name!r}"
            )
        raise UnknownAttributeError(
            f"type {holder_type.name!r} has no member {name!r}"
        )

    def __getitem__(self, name: str) -> Any:
        return self.get_member(name)

    def get(self, name: str, default: Any = None) -> Any:
        """Like :meth:`get_member` but returning ``default`` for unknown names."""
        try:
            return self.get_member(name)
        except UnknownAttributeError:
            return default

    # -- attribute updates --------------------------------------------------------

    def set_attribute(self, name: str, value: Any) -> Any:
        """Set a local attribute value, enforcing inheritance read-only rules.

        Raises
        ------
        InheritanceError
            When ``name`` is inherited through a *bound* link — "the
            inherited data must not be updated in the inheritor" (§2).
        UnknownAttributeError
            When the type declares no such attribute (unless the type
            allows dynamic attributes).
        DomainError
            When the value does not fit the attribute's domain.
        """
        self._ensure_alive()
        entry = self._plan().entries.get(name)
        if entry is not None and entry.rels:
            links = self._links_as_inheritor
            for rel_name in entry.rels:
                link = links.get(rel_name)
                if link is not None:
                    raise InheritanceError(
                        f"{name!r} of {self!r} is inherited from "
                        f"{link.transmitter!r} via {link.rel_type.name!r} and "
                        f"must not be updated in the inheritor; update the "
                        f"transmitter instead"
                    )
        spec = entry.spec if entry is not None else None
        if spec is None:
            if self.object_type.member_kind(name) is not None:
                raise SchemaError(
                    f"member {name!r} of {self.object_type.name!r} is a "
                    f"subclass, not an attribute"
                )
            if not getattr(self.object_type, "allow_dynamic", False):
                raise UnknownAttributeError(
                    f"type {self.object_type.name!r} has no attribute {name!r}"
                )
            normalised = value
        else:
            normalised = spec.validate(value)
        store = self._store
        if store.epoch != _resolution._SCHEMA_EPOCH:
            store.refresh(
                _resolution.plan_for(
                    self.object_type, getattr(self.database, "obs", None)
                )
            )
        slot = entry.slot if entry is not None else store.slot_of.get(name)
        if slot is not None:
            column = store.columns[slot]
            prior = column[self._row]
            old = None if prior is UNSET else prior
            column[self._row] = normalised
        else:
            overflow = self._overflow
            if overflow is None:
                overflow = self._overflow = {}
            old = overflow.get(name)
            overflow[name] = normalised
        self._mutation_epoch += 1
        self._emit("attribute_updated", attribute=name, old=old, new=normalised)
        return normalised

    def set(self, name: str, value: Any) -> Any:
        """Alias of :meth:`set_attribute`."""
        return self.set_attribute(name, value)

    def update(self, **values: Any) -> None:
        """Set several attributes."""
        for name, value in values.items():
            self.set_attribute(name, value)

    def local_attributes(self) -> Dict[str, Any]:
        """Copy of the locally stored attribute values (no inherited data)."""
        return AttrsView(self).to_dict()

    # -- containers --------------------------------------------------------------

    def subclass(self, name: str) -> "LocalSubclass":
        """The local subclass container ``name`` (own or inherited-structure)."""
        self._ensure_alive()
        try:
            return self._subclasses[name]
        except KeyError:
            raise UnknownAttributeError(
                f"type {self.object_type.name!r} has no subclass {name!r}"
            ) from None

    def subrel(self, name: str) -> "LocalRelClass":
        """The local relationship subclass container ``name``."""
        self._ensure_alive()
        try:
            return self._subrels[name]
        except KeyError:
            raise UnknownAttributeError(
                f"type {self.object_type.name!r} has no subrel {name!r}"
            ) from None

    def subclass_names(self) -> Tuple[str, ...]:
        return tuple(self._subclasses)

    def subrel_names(self) -> Tuple[str, ...]:
        return tuple(self._subrels)

    # -- constraint checking -------------------------------------------------------

    def check_constraints(self, deep: bool = False) -> None:
        """Check the object's own type constraints and subrel restrictions.

        Constraints of transmitter types are *not* re-checked here: they
        hold on the transmitter's data, which is exactly what this object
        sees through the link.

        With ``deep=True`` the check recurses into subobjects and local
        relationships.
        """
        self._ensure_alive()
        check_all(self.object_type.constraints, self)
        for container in self._subrels.values():
            for rel in container:
                container.check_restriction(rel)
        if deep:
            for container in self._subclasses.values():
                for member in container:
                    member.check_constraints(deep=True)
            for rel_container in self._subrels.values():
                for rel in rel_container:
                    rel.check_constraints(deep=True)

    # -- deletion ---------------------------------------------------------------

    def delete(self, unbind_inheritors: bool = False) -> None:
        """Delete the object and everything that depends on it.

        Subobjects and local relationships are deleted with their complex
        object (§3).  Relationships this object participates in are deleted
        for referential integrity.  If other objects inherit from this one,
        deletion is refused unless ``unbind_inheritors=True``, in which case
        each inheritor keeps its structure but loses the inherited values
        (it becomes an unbound inheritor).
        """
        if self._deleted:
            return
        if self._links_as_transmitter and not unbind_inheritors:
            inheritors = [link.inheritor for link in self._links_as_transmitter]
            raise InheritanceError(
                f"{self!r} transmits data to {len(inheritors)} inheritor(s) "
                f"(e.g. {inheritors[0]!r}); pass unbind_inheritors=True to "
                f"sever the links"
            )
        for link in list(self._links_as_transmitter):
            link.unbind()
        for link in list(self._links_as_inheritor.values()):
            link.unbind()
        for rel in list(self._participating):
            rel.delete(unbind_inheritors=unbind_inheritors)
        for container in self._subrels.values():
            for rel in list(container):
                rel.delete(unbind_inheritors=unbind_inheritors)
        for container in self._subclasses.values():
            for member in list(container):
                member.delete(unbind_inheritors=unbind_inheritors)
        if self._container is not None:
            self._container._discard(self)
            self._container = None
        self._deleted = True
        # Defensive: any cached resolution whose chain includes this object
        # must fail epoch validation, whatever path led here.  (All links
        # were just unbound, so the propagating bump normally covers only
        # this object.)
        self._bump_binding_epoch()
        self._mutation_epoch += 1
        self._emit("object_deleted")
        database = self.database
        if database is not None and hasattr(database, "_forget_object"):
            database._forget_object(self)
        # Release the slot row: live cells spill into the overflow dict so
        # the deleted object keeps reporting its last local values (dict
        # semantics), while the row is recycled for new objects.
        row = self._row
        if row >= 0:
            spilled = self._store.spill_row(row)
            self._row = -1
            if spilled:
                overflow = self._overflow
                if overflow:
                    spilled.update(overflow)
                self._overflow = spilled

    # -- introspection ------------------------------------------------------------

    def visible_member_names(self) -> Tuple[str, ...]:
        """Every member name resolvable on this object (type level)."""
        return self._plan().member_names


class LocalSubclass:
    """A local object subclass of one complex object (§3).

    Subobjects created or added here are owned by the complex object and
    deleted with it.  While the owner inherits this member through a bound
    link, the local container is frozen — the visible content is the
    transmitter's.
    """

    def __init__(self, owner: DBObject, spec: SubclassSpec) -> None:
        self.owner = owner
        self.spec = spec
        self._members: Dict[Surrogate, DBObject] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def element_type(self) -> ObjectType:
        return self.spec.element_type

    def _ensure_writable(self) -> None:
        self.owner._ensure_alive()
        link = self.owner._binding_link_for_member(self.name)
        if link is not None:
            raise InheritanceError(
                f"subclass {self.name!r} of {self.owner!r} is inherited from "
                f"{link.transmitter!r}; its content cannot be changed locally"
            )

    def create(self, **attrs: Any) -> DBObject:
        """Create a new subobject of the element type inside this subclass."""
        self._ensure_writable()
        member = new_object(
            self.element_type,
            database=self.owner.database,
            parent=self.owner,
            **attrs,
        )
        member._container = self
        self._members[member.surrogate] = member
        self.owner._mutation_epoch += 1
        self.owner._emit("subobject_added", subclass=self.name, member=member)
        return member

    def add(self, member: DBObject) -> DBObject:
        """Adopt an existing parentless object as a subobject."""
        self._ensure_writable()
        member._ensure_alive()
        if member.parent is not None or member._container is not None:
            raise SchemaError(f"{member!r} already belongs to a complex object")
        if not member.object_type.conforms_to(self.element_type):
            raise SchemaError(
                f"subclass {self.name!r} holds {self.element_type.name!r} "
                f"objects; got {member.object_type.name!r}"
            )
        member.parent = self.owner
        member._container = self
        self._members[member.surrogate] = member
        self.owner._mutation_epoch += 1
        self.owner._emit("subobject_added", subclass=self.name, member=member)
        return member

    def remove(self, member: DBObject) -> None:
        """Delete a subobject (subobjects cannot outlive their owner)."""
        self._ensure_writable()
        if member.surrogate not in self._members:
            raise SchemaError(f"{member!r} is not a member of {self.name!r}")
        member.delete()

    def _discard(self, member: DBObject) -> None:
        self._members.pop(member.surrogate, None)
        self.owner._mutation_epoch += 1
        self.owner._emit("subobject_removed", subclass=self.name, member=member)

    def members(self) -> List[DBObject]:
        """Snapshot list of current members."""
        return list(self._members.values())

    def __iter__(self) -> Iterator[DBObject]:
        return iter(list(self._members.values()))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: object) -> bool:
        return isinstance(member, DBObject) and member.surrogate in self._members

    def __repr__(self) -> str:
        return f"<LocalSubclass {self.owner.object_type.name}.{self.name} n={len(self)}>"


class LocalRelClass:
    """A local relationship subclass of one complex object (§3).

    Relationship objects created here link subobjects of the complex object
    (possibly across nesting levels) or the complex object's own parts; the
    spec's ``where`` clause restricts admissible participants and is checked
    at creation time and by :meth:`DBObject.check_constraints`.
    """

    def __init__(self, owner: DBObject, spec: SubrelSpec) -> None:
        self.owner = owner
        self.spec = spec
        self._members: Dict[Surrogate, "RelationshipObject"] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def rel_type(self) -> RelationshipType:
        return self.spec.rel_type

    def _ensure_writable(self) -> None:
        self.owner._ensure_alive()
        link = self.owner._binding_link_for_member(self.name)
        if link is not None:
            raise InheritanceError(
                f"subrel {self.name!r} of {self.owner!r} is inherited from "
                f"{link.transmitter!r}; its content cannot be changed locally"
            )

    def create(self, participants: Mapping[str, Any], **attrs: Any) -> "RelationshipObject":
        """Create a relationship object relating the given participants."""
        self._ensure_writable()
        rel = new_relationship(
            self.rel_type,
            participants,
            database=self.owner.database,
            parent=self.owner,
            **attrs,
        )
        try:
            self.check_restriction(rel)
        except ConstraintViolation:
            # Rejected by the where clause: fully retract the half-created
            # relationship (participants' back-references, registry).
            rel.parent = None
            rel.delete()
            raise
        rel._container_rel = self
        self._members[rel.surrogate] = rel
        self.owner._mutation_epoch += 1
        self.owner._emit("relationship_created", subrel=self.name, relationship=rel)
        return rel

    def check_restriction(self, rel: "RelationshipObject") -> None:
        """Check the subrel's ``where`` clause for one relationship object."""
        where = self.spec.where
        if where is None:
            return
        bindings = {name: rel for name in self.spec.binding_names()}
        # Participant roles are visible by their bare names too — the §5
        # restriction "for x in Bores: x in Girders.Bores or …" refers to
        # the Screwing relationship's Bores participants directly.
        for role in rel.rel_type.participants:
            bindings.setdefault(role, rel.get_member(role))
        ctx = EvalContext(self.owner, bindings)
        if not truthy(where.evaluate(ctx)):
            raise ConstraintViolation(
                f"relationship {rel!r} violates the restriction of subrel "
                f"{self.name!r}: {self.spec.where_source}",
                constraint=self.spec.where_source,
                subject=rel,
            )

    def _discard(self, rel: "RelationshipObject") -> None:
        self._members.pop(rel.surrogate, None)
        self.owner._mutation_epoch += 1
        self.owner._emit("relationship_removed", subrel=self.name, relationship=rel)

    def members(self) -> List["RelationshipObject"]:
        return list(self._members.values())

    def __iter__(self) -> Iterator["RelationshipObject"]:
        return iter(list(self._members.values()))

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, rel: object) -> bool:
        return isinstance(rel, RelationshipObject) and rel.surrogate in self._members

    def __repr__(self) -> str:
        return f"<LocalRelClass {self.owner.object_type.name}.{self.name} n={len(self)}>"


class RelationshipObject(DBObject):
    """A relationship instance: named participants plus full object features.

    Participants are fixed at creation (the *static assignment* the paper
    presumes for simplicity in §6; generic relationships with deferred
    selection live in :mod:`repro.versions.selection`).
    """

    def __init__(
        self,
        rel_type: RelationshipType,
        participants: Mapping[str, Any],
        surrogate: Surrogate,
        database=None,
        parent: Optional[DBObject] = None,
    ):
        if not isinstance(rel_type, RelationshipType):
            raise SchemaError(f"{rel_type!r} is not a relationship type")
        super().__init__(rel_type, surrogate, database=database, parent=parent)
        self.rel_type = rel_type
        self._participants: Dict[str, Any] = rel_type.validate_participants(participants)
        self._container_rel: Optional[LocalRelClass] = None
        for value in self._participants.values():
            for participant in value if isinstance(value, tuple) else (value,):
                participant._participating.add(self)

    def participant(self, role: str) -> Any:
        """The object (or tuple of objects for set-valued roles) in ``role``."""
        self._ensure_alive()
        try:
            return self._participants[role]
        except KeyError:
            raise SchemaError(
                f"relationship type {self.rel_type.name!r} has no role {role!r}"
            ) from None

    def participant_objects(self) -> List[DBObject]:
        """Flat list of all participant objects."""
        objects: List[DBObject] = []
        for value in self._participants.values():
            if isinstance(value, tuple):
                objects.extend(value)
            else:
                objects.append(value)
        return objects

    def get_member(self, name: str) -> Any:
        if not self._deleted and name in self._participants:
            value = self._participants[name]
            return list(value) if isinstance(value, tuple) else value
        return super().get_member(name)

    def delete(self, unbind_inheritors: bool = False) -> None:
        if self._deleted:
            return
        for participant in self.participant_objects():
            participant._participating.discard(self)
        container = self._container_rel
        super().delete(unbind_inheritors=unbind_inheritors)
        if container is not None:
            container._discard(self)
            self._container_rel = None

    def __repr__(self) -> str:
        flags = " deleted" if self._deleted else ""
        roles = ", ".join(self._participants)
        return f"<{self.rel_type.name} {self.surrogate} ({roles}){flags}>"


class InheritanceLink(RelationshipObject):
    """One bound inheritance relationship (§4.1).

    The link is itself a relationship object: it may carry attributes (the
    consistency subsystem stores adaptation flags here), subclasses and
    constraints.  Its two fixed roles are ``transmitter`` and ``inheritor``.
    """

    def __init__(
        self,
        rel_type: InheritanceRelationshipType,
        transmitter: DBObject,
        inheritor: DBObject,
        surrogate: Surrogate,
        database=None,
    ):
        super().__init__(
            rel_type,
            {TRANSMITTER_ROLE: transmitter, INHERITOR_ROLE: inheritor},
            surrogate,
            database=database,
        )

    @property
    def transmitter(self) -> DBObject:
        return self._participants[TRANSMITTER_ROLE]

    @property
    def inheritor(self) -> DBObject:
        return self._participants[INHERITOR_ROLE]

    def is_permeable(self, member: str) -> bool:
        return self.rel_type.is_permeable(member)

    def unbind(self) -> None:
        """Sever the link: the inheritor keeps structure, loses the values."""
        if self._deleted:
            return
        transmitter = self.transmitter
        inheritor = self.inheritor
        if self in transmitter._links_as_transmitter:
            transmitter._links_as_transmitter.remove(self)
        inheritor._links_as_inheritor.pop(self.rel_type.name, None)
        # The inheritor's resolution topology changed: bump it and its
        # whole downstream subtree.  The transmitter only *lost* an
        # inheritor — its own resolution is untouched, so a local bump
        # (conservative memo refresh) suffices.
        inheritor._bump_binding_epoch()
        transmitter._binding_epoch += 1
        self.delete()
        inheritor._emit(
            "inheritor_unbound", rel_type=self.rel_type, transmitter=transmitter
        )

    def delete(self, unbind_inheritors: bool = False) -> None:
        # Deleting the link object is unbinding; route through unbind so the
        # endpoints' registries stay consistent no matter the entry point.
        if self._deleted:
            return
        transmitter = self.transmitter
        inheritor = self.inheritor
        if self in transmitter._links_as_transmitter:
            transmitter._links_as_transmitter.remove(self)
        if inheritor._links_as_inheritor.get(self.rel_type.name) is self:
            inheritor._links_as_inheritor.pop(self.rel_type.name)
        inheritor._bump_binding_epoch()
        transmitter._binding_epoch += 1
        super().delete(unbind_inheritors=unbind_inheritors)


def _check_no_local_shadow(
    inheritor: DBObject, rel_type: InheritanceRelationshipType
) -> None:
    for member in rel_type.inheriting:
        if inheritor._has_local_value(member):
            raise InheritanceError(
                f"{inheritor!r} holds a local value for {member!r}; it cannot "
                f"be bound through {rel_type.name!r} which inherits that "
                f"member (identity of values would be violated)"
            )
        container = inheritor._subclasses.get(member)
        if container is not None and len(container) > 0:
            raise InheritanceError(
                f"{inheritor!r} has local subobjects in {member!r}; it cannot "
                f"be bound through {rel_type.name!r}"
            )
        rel_container = inheritor._subrels.get(member)
        if rel_container is not None and len(rel_container) > 0:
            raise InheritanceError(
                f"{inheritor!r} has local relationships in {member!r}; it "
                f"cannot be bound through {rel_type.name!r}"
            )


def _check_no_object_cycle(inheritor: DBObject, transmitter: DBObject) -> None:
    visited: Set[Surrogate] = set()
    stack = [transmitter]
    while stack:
        current = stack.pop()
        if current.surrogate == inheritor.surrogate:
            raise InheritanceError(
                f"binding {inheritor!r} to {transmitter!r} would create an "
                f"inheritance cycle at the object level"
            )
        if current.surrogate in visited:
            continue
        visited.add(current.surrogate)
        stack.extend(link.transmitter for link in current._links_as_inheritor.values())


def bind(
    inheritor: DBObject,
    transmitter: DBObject,
    rel_type: InheritanceRelationshipType,
    declare: bool = False,
    **link_attrs: Any,
) -> InheritanceLink:
    """Bind ``inheritor`` to ``transmitter`` through ``rel_type``.

    After binding, the members listed in the relationship's ``inheriting``
    clause resolve live against the transmitter and are read-only in the
    inheritor.

    Parameters
    ----------
    declare:
        When true and the inheritor's type has not declared
        ``inheritor-in: rel_type`` yet, the declaration is added first
        (convenience for programmatic schemas; the paper requires the
        explicit declaration, which remains the default behaviour).
    link_attrs:
        Attribute values for the link object itself.

    Raises
    ------
    InheritanceError
        For type mismatches, double binding, local shadowing of inherited
        members or object-level cycles.
    """
    if not isinstance(rel_type, InheritanceRelationshipType):
        raise InheritanceError(f"{rel_type!r} is not an inheritance relationship type")
    inheritor._ensure_alive()
    transmitter._ensure_alive()
    if rel_type not in inheritor.object_type.inheritor_in:
        # The inheritor-in declaration is the schema-level authorization to
        # participate (§4.1).  An `inheritor: object-of-type T` restriction
        # is honoured for undeclared types; a type that explicitly declared
        # inheritor-in is authorized even if it is not a subtype of T — the
        # paper's §5 WeightCarrying_Structure binds its anonymous Girders
        # subclass elements through AllOf_GirderIf exactly this way.
        if not declare:
            raise InheritanceError(
                f"type {inheritor.object_type.name!r} is not declared "
                f"inheritor-in {rel_type.name!r}"
            )
        if not rel_type.accepts_inheritor(inheritor.object_type):
            raise InheritanceError(
                f"{rel_type.name!r} restricts inheritors to type "
                f"{rel_type.inheritor_type.name!r}; got "
                f"{inheritor.object_type.name!r}"
            )
        inheritor.object_type.declare_inheritor_in(rel_type)
    if not transmitter.object_type.conforms_to(rel_type.transmitter_type):
        raise InheritanceError(
            f"{rel_type.name!r} requires a transmitter of type "
            f"{rel_type.transmitter_type.name!r}; got "
            f"{transmitter.object_type.name!r}"
        )
    if rel_type.name in inheritor._links_as_inheritor:
        raise InheritanceError(
            f"{inheritor!r} is already bound through {rel_type.name!r}; "
            f"unbind first"
        )
    _check_no_local_shadow(inheritor, rel_type)
    _check_no_object_cycle(inheritor, transmitter)
    obs = getattr(inheritor.database or transmitter.database, "obs", None)
    if obs is None:
        return _make_link(inheritor, transmitter, rel_type, link_attrs)
    with obs.tracer.span(
        "inheritance.bind",
        rel_type=rel_type.name,
        transmitter=str(transmitter.surrogate),
    ):
        return _make_link(inheritor, transmitter, rel_type, link_attrs)


def _make_link(
    inheritor: DBObject,
    transmitter: DBObject,
    rel_type: InheritanceRelationshipType,
    link_attrs: Dict[str, Any],
) -> InheritanceLink:
    link = InheritanceLink(
        rel_type,
        transmitter,
        inheritor,
        _fresh_surrogate(inheritor.database or transmitter.database),
        database=inheritor.database or transmitter.database,
    )
    for name, value in link_attrs.items():
        link.set_attribute(name, value)
    inheritor._links_as_inheritor[rel_type.name] = link
    transmitter._links_as_transmitter.append(link)
    inheritor._bump_binding_epoch()
    transmitter._binding_epoch += 1
    inheritor._emit(
        "inheritor_bound", rel_type=rel_type, transmitter=transmitter, link=link
    )
    return link


def new_object(
    object_type: TypeBase,
    database=None,
    parent: Optional[DBObject] = None,
    transmitter: Optional[DBObject] = None,
    via: Optional[InheritanceRelationshipType] = None,
    **attrs: Any,
) -> DBObject:
    """Create a new object of ``object_type``.

    ``transmitter`` (with optional ``via`` naming the inheritance
    relationship when the type declares several) binds the fresh object
    immediately — the paper's "if an object of the inheritor type is
    created, it can be specified to which object of the transmitter type it
    is to be related".
    """
    obj = DBObject(object_type, _fresh_surrogate(database), database=database, parent=parent)
    try:
        if transmitter is not None:
            rel_type = via
            if rel_type is None:
                declared = object_type.inheritor_in
                if len(declared) != 1:
                    raise InheritanceError(
                        f"type {object_type.name!r} declares "
                        f"{len(declared)} inheritance relationships; pass via=..."
                    )
                rel_type = declared[0]
            bind(obj, transmitter, rel_type)
        elif via is not None:
            raise InheritanceError("via= given without transmitter=")
        for name, value in attrs.items():
            obj.set_attribute(name, value)
    except Exception:
        # Retract the half-created object so nothing dangling stays in the
        # registry or on the transmitter.
        obj.delete()
        raise
    return obj


def new_relationship(
    rel_type: RelationshipType,
    participants: Mapping[str, Any],
    database=None,
    parent: Optional[DBObject] = None,
    **attrs: Any,
) -> RelationshipObject:
    """Create a free-standing relationship object of ``rel_type``."""
    rel = RelationshipObject(
        rel_type,
        participants,
        _fresh_surrogate(database),
        database=database,
        parent=parent,
    )
    try:
        for name, value in attrs.items():
            rel.set_attribute(name, value)
    except Exception:
        rel.parent = None
        rel.delete()
        raise
    return rel
