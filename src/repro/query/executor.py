"""Query execution over a database.

Execution is planner-driven since the indexed-query-engine change: the
``from`` source and ``where`` AST go to :mod:`repro.query.planner`, which
picks an access path (full scan, equality index, range index) and hands
back candidate objects in scan order.  The full ``where`` is always
re-applied here, so the planner can only reduce the number of objects
touched, never change results.  The chosen :class:`~repro.query.planner.QueryPlan`
— with estimated vs actual row counts — rides on the result as
``QueryResult.plan`` (``run_query(..., explain=True)``; CLI
``repro query --explain``).

``order by … limit k`` uses a bounded heap (``heapq.nsmallest`` /
``nlargest``, documented as equivalent to sorting then slicing, including
stability) instead of sorting all matches.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from time import perf_counter
from typing import Any, List, Optional, Tuple

from ..core import resolution as _resolution
from ..core.objects import DBObject
from ..engine.database import Database
from ..expr import MISSING, EvalContext, truthy
from ..expr.compile import compile_expression, compile_predicate, compiled_for
from .parser import QuerySpec, parse_query
from .planner import QueryPlan, plan_source, resolve_source

__all__ = ["QueryResult", "execute_query", "run_query"]

#: When false, where/order/projection expressions evaluate with the
#: tree-walking interpreter instead of compiled slot programs — the
#: compiled engine's oracle mode, used by equivalence tests and the E19
#: benchmark baseline.  Per-call override via ``execute_query(...,
#: compiled=...)``.
USE_COMPILED = True

#: When false, full-scan predicates are never routed to materialized
#: per-type views (:mod:`repro.query.views`) — the live-resolution path
#: is the views engine's differential oracle, used by the equivalence
#: tests and the E20 benchmark baseline.  Per-call override via
#: ``execute_query(..., views=...)``.
USE_VIEWS = True


@dataclass
class QueryResult:
    """The outcome of one query.

    ``columns`` are the projection source texts (``["*"]`` for object
    queries); ``rows`` are value tuples aligned with the columns; for
    ``select *`` queries ``objects`` carries the matching objects and each
    row is the one-element tuple of the object.  ``plan`` records the
    access path the planner chose.
    """

    spec: QuerySpec
    columns: List[str]
    rows: List[Tuple[Any, ...]]
    objects: Optional[List[DBObject]] = None
    plan: Optional[QueryPlan] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def scalars(self) -> List[Any]:
        """First-column values — convenient for single-column queries."""
        return [row[0] for row in self.rows]

    def explain(self) -> str:
        """The plan's EXPLAIN rendering."""
        return self.plan.describe() if self.plan is not None else "plan: (none)"

    def __repr__(self) -> str:
        return f"<QueryResult {self.spec.text!r} rows={len(self.rows)}>"


def _sort_key(value: Any):
    # MISSING/None order last; mixed types order by type name to stay total.
    if value is MISSING or value is None:
        return (2, "", "")
    if isinstance(value, bool):
        return (1, "bool", value)
    if isinstance(value, (int, float)):
        return (0, "", value)
    return (1, type(value).__name__, str(value))


def execute_query(
    db: Database,
    spec: QuerySpec,
    compiled: Optional[bool] = None,
    views: Optional[bool] = None,
) -> QueryResult:
    """Run a parsed query against a database."""
    obs = getattr(db, "obs", None)
    if obs is None:
        return _execute(db, spec, None, compiled, views)
    # Clock the query only when a slow log is attached; within-budget
    # queries pay two perf_counter reads and one compare, nothing else.
    slowlog = obs.slowlog
    started = perf_counter() if slowlog is not None else 0.0
    with obs.tracer.span(
        "query.execute", source=spec.source_name, text=spec.text
    ) as span:
        result = _execute(db, spec, obs, compiled, views)
        span.set(rows=len(result.rows))
        if result.plan is not None:
            span.set(access=result.plan.access_path)
    if slowlog is not None:
        duration = perf_counter() - started
        if slowlog.exceeded("query", duration):
            plan = result.plan
            slowlog.note(
                "query",
                duration,
                subject=spec.text,
                explain=plan.describe() if plan is not None else None,
                rows=len(result.rows),
                candidates=plan.candidates if plan is not None else None,
            )
    return result


def _distinct_rows(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    """Order-preserving dedupe: set-based for hashable rows, linear only
    for (and against) the unhashable ones.

    A hashable row can equal an unhashable one (``frozenset() == set()``),
    so hashable rows are also checked against the kept unhashable pool,
    and unhashable rows against everything kept so far.
    """
    try:
        # Bulk fast path: when every row hashes, dict.fromkeys dedupes
        # order-preservingly in one C-level pass (one hash per row).
        return list(dict.fromkeys(rows))
    except TypeError:
        pass
    seen: set = set()
    unhashable: List[Tuple[Any, ...]] = []
    unique: List[Tuple[Any, ...]] = []
    for row in rows:
        try:
            duplicate = row in seen
            if not duplicate and unhashable:
                duplicate = any(row == other for other in unhashable)
            if not duplicate:
                seen.add(row)
                unique.append(row)
        except TypeError:  # unhashable projection value
            if row not in unique:
                unique.append(row)
                unhashable.append(row)
    return unique


def _execute(
    db: Database,
    spec: QuerySpec,
    obs,
    compiled: Optional[bool] = None,
    views: Optional[bool] = None,
) -> QueryResult:
    use_compiled = USE_COMPILED if compiled is None else compiled
    use_views = USE_VIEWS if views is None else views
    source = resolve_source(db, spec.source_name)
    plan, candidates = plan_source(db, source, spec.where, text=spec.text)

    matches: List[DBObject] = []
    scanned = 0
    where = spec.where
    batched = False
    if use_compiled and where is not None and candidates:
        outcome = None
        if use_views and plan.access_path == "full-scan":
            # View routing: predicates over inherited members run against
            # the type's materialized view columns (plan shows "view").
            # Index paths keep precedence — sub-linear beats faster-scan.
            outcome = db.views.try_scan(where, candidates, plan, obs)
        if outcome is None:
            # Batched scan: the whole filter loop is generated next to the
            # predicate (CompiledExpr.scan), so the steady per-object cost
            # is one identity compare plus the inlined slot reads — no
            # closure call.  The scan bails out (None) on the first object
            # of another type; mixed extents rerun below with per-type
            # dispatch.
            outcome = compiled_for(where, candidates[0].object_type, obs).scan(
                candidates
            )
        if outcome is not None:
            scanned, matches = outcome
            batched = True
    if batched:
        pass
    elif use_compiled:
        # Per-type dispatch: one compiled slot program per concrete type,
        # applied over runs of candidates (heterogeneous extents, or no
        # where clause at all).
        pred = None
        pred_type = None
        preds: dict = {}
        for obj in candidates:
            if obj.deleted:
                continue
            scanned += 1
            if where is not None:
                object_type = obj.object_type
                if object_type is not pred_type:
                    pred_type = object_type
                    pred = preds.get(id(object_type))
                    if pred is None:
                        pred = preds[id(object_type)] = compile_predicate(
                            where, object_type, obs
                        )
                if not pred(obj):
                    continue
            matches.append(obj)
    else:
        # Oracle mode: the interpretive walk.  Resolve each candidate
        # type's plan once up front (not per object): the where/order/
        # projection evaluation then always hits valid plans.
        warmed: set = set()
        for obj in candidates:
            if obj.deleted:
                continue
            object_type = obj.object_type
            if id(object_type) not in warmed:
                warmed.add(id(object_type))
                _resolution.plan_for(object_type, obs)
            scanned += 1
            if where is not None:
                if not truthy(where.evaluate(EvalContext(obj))):
                    continue
            matches.append(obj)
    plan.candidates = scanned

    if obs is not None:
        obs.metrics.counter("query.executed").inc()
        obs.metrics.counter("query.rows_scanned").inc(scanned)
        obs.metrics.counter("query.rows_matched").inc(len(matches))
        if plan.access_path == "full-scan":
            obs.metrics.counter("query.plan.full_scan").inc()
        elif plan.access_path == "view":
            obs.metrics.counter("query.plan.view_scan").inc()
        else:
            obs.metrics.counter("query.plan.index_scan").inc()

    if spec.order_by is not None:
        order_node = spec.order_by
        if use_compiled:
            order_fns: dict = {}

            def order_key(obj: DBObject):
                fn = order_fns.get(id(obj.object_type))
                if fn is None:
                    fn = order_fns[id(obj.object_type)] = compile_expression(
                        order_node, obj.object_type, obs
                    )
                return _sort_key(fn(obj))
        else:
            def order_key(obj: DBObject):
                return _sort_key(order_node.evaluate(EvalContext(obj)))

        if spec.limit is not None and spec.limit < len(matches):
            # Bounded-heap top-k: nsmallest/nlargest are documented as
            # equivalent to sorted(...)[:k] (asc) / sorted(..., reverse=True)[:k]
            # (desc), stability included.
            pick = heapq.nlargest if spec.descending else heapq.nsmallest
            matches = pick(spec.limit, matches, key=order_key)
            plan.order = f"top-{spec.limit} heap"
        else:
            matches.sort(key=order_key, reverse=spec.descending)
            plan.order = "sort"
        if spec.descending:
            plan.order += " desc"

    if spec.limit is not None:
        matches = matches[: spec.limit]

    if spec.projection is None:
        plan.rows = len(matches)
        if spec.distinct:
            seen = set()
            unique_rows = []
            unique_objects = []
            for obj in matches:
                if obj.surrogate not in seen:
                    seen.add(obj.surrogate)
                    unique_rows.append((obj,))
                    unique_objects.append(obj)
            plan.rows = len(unique_rows)
            return QueryResult(spec, ["*"], unique_rows, unique_objects, plan)
        rows = [(obj,) for obj in matches]
        return QueryResult(spec, ["*"], rows, matches, plan)

    rows = []
    if use_compiled:
        proj_fns: dict = {}
        for obj in matches:
            fns = proj_fns.get(id(obj.object_type))
            if fns is None:
                fns = proj_fns[id(obj.object_type)] = tuple(
                    compile_expression(node, obj.object_type, obs)
                    for _, node in spec.projection
                )
            rows.append(
                tuple(
                    None if (value := fn(obj)) is MISSING else value
                    for fn in fns
                )
            )
    else:
        for obj in matches:
            ctx = EvalContext(obj)
            row = tuple(
                None if (value := node.evaluate(ctx)) is MISSING else value
                for _, node in spec.projection
            )
            rows.append(row)
    if spec.distinct:
        rows = _distinct_rows(rows)
    plan.rows = len(rows)
    return QueryResult(spec, spec.column_names, rows, plan=plan)


def run_query(
    db: Database,
    text: str,
    explain: bool = False,
    compiled: Optional[bool] = None,
    views: Optional[bool] = None,
) -> QueryResult:
    """Parse and execute query text in one step.

    The plan is always attached as ``result.plan``; ``explain=True`` is
    the spelled-out request for it (the CLI's ``--explain`` uses this) —
    execution still happens, so the plan carries actual row counts next
    to the estimates.  ``compiled=False`` forces the tree-walking oracle;
    ``views=False`` keeps inherited-member predicates on the live
    resolution path (the materialized-view oracle).
    """
    result = execute_query(db, parse_query(text), compiled, views)
    if explain and result.plan is None:  # pragma: no cover - defensive
        result.plan = QueryPlan(
            source_name=result.spec.source_name,
            source_kind="class",
            source_size=len(result.rows),
            text=text,
        )
    return result
