"""E8 — §6 ablation: generic-relationship selection policies.

Selection cost over growing version sets: the top-down query scans all
candidates (O(N)); bottom-up default and environment lookup are O(1) plus
the candidate-eligibility scan.  Re-resolution (unbind + select + bind) is
the assembly-time price of staying on the newest version.
"""

import pytest

from repro.versions import (
    DefaultSelection,
    EnvironmentRegistry,
    EnvironmentSelection,
    GenericRelationship,
    QuerySelection,
    VersionGraph,
)
from repro.workloads import gate_database, make_interface

VERSION_COUNTS = [10, 100, 400]


def graph_with_versions(db, n):
    anchor = make_interface(db)
    graph = VersionGraph(design_object=anchor)
    versions = []
    for i in range(n):
        version = make_interface(db, length=i + 1)
        graph.add_version(version)
        versions.append(version)
    return anchor, graph, versions


def fresh_slot(db):
    return db.create_object("GateImplementation")


class TestSelectionPolicies:
    @pytest.mark.parametrize("n_versions", VERSION_COUNTS)
    def test_query_selection(self, benchmark, n_versions):
        db = gate_database("e8-bench")
        _, graph, versions = graph_with_versions(db, n_versions)
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        policy = QuerySelection(f"Length = {n_versions}")

        def setup():
            return (GenericRelationship(fresh_slot(db), rel, graph),), {}

        def resolve(generic):
            link = generic.resolve(policy)
            assert link.transmitter is versions[-1]

        benchmark.pedantic(resolve, setup=setup, rounds=10)

    @pytest.mark.parametrize("n_versions", VERSION_COUNTS)
    def test_default_selection(self, benchmark, n_versions):
        db = gate_database("e8-bench")
        _, graph, versions = graph_with_versions(db, n_versions)
        graph.set_default(versions[-1])
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        policy = DefaultSelection()

        def setup():
            return (GenericRelationship(fresh_slot(db), rel, graph),), {}

        benchmark.pedantic(
            lambda generic: generic.resolve(policy), setup=setup, rounds=10
        )

    @pytest.mark.parametrize("n_versions", VERSION_COUNTS)
    def test_environment_selection(self, benchmark, n_versions):
        db = gate_database("e8-bench")
        anchor, graph, versions = graph_with_versions(db, n_versions)
        registry = EnvironmentRegistry()
        env = registry.create("bench")
        env.assign(anchor, versions[n_versions // 2])
        registry.activate("bench")
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        policy = EnvironmentSelection(registry)

        def setup():
            return (GenericRelationship(fresh_slot(db), rel, graph),), {}

        benchmark.pedantic(
            lambda generic: generic.resolve(policy), setup=setup, rounds=10
        )


class TestReResolution:
    @pytest.mark.parametrize("n_versions", [10, 100])
    def test_re_resolve(self, benchmark, n_versions):
        db = gate_database("e8-bench")
        _, graph, versions = graph_with_versions(db, n_versions)
        graph.set_default(versions[-1])
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        generic = GenericRelationship(fresh_slot(db), rel, graph)
        generic.resolve(DefaultSelection())
        benchmark(generic.re_resolve, DefaultSelection())


class TestGraphOperations:
    @pytest.mark.parametrize("n_versions", VERSION_COUNTS)
    def test_history_walk(self, benchmark, n_versions):
        db = gate_database("e8-bench")
        anchor = make_interface(db)
        graph = VersionGraph(design_object=anchor)
        base = None
        last = None
        for i in range(n_versions):
            last = make_interface(db, length=i + 1)
            graph.add_version(last, derived_from=base)
            base = last
        history = benchmark(graph.history_of, last)
        assert len(history) == n_versions


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_versions = 10 if suite.quick else 100

    @suite.case(f"re_resolve_default[{n_versions}]")
    def re_resolve_case():
        db = gate_database("e8-bench")
        _, graph, versions = graph_with_versions(db, n_versions)
        graph.set_default(versions[-1])
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        generic = GenericRelationship(fresh_slot(db), rel, graph)
        generic.resolve(DefaultSelection())
        policy = DefaultSelection()
        return lambda: generic.re_resolve(policy)

    @suite.case(f"history_walk[{n_versions}]")
    def history_case():
        db = gate_database("e8-bench")
        anchor = make_interface(db)
        graph = VersionGraph(design_object=anchor)
        base = None
        last = None
        for i in range(n_versions):
            last = make_interface(db, length=i + 1)
            graph.add_version(last, derived_from=base)
            base = last
        assert len(graph.history_of(last)) == n_versions
        return lambda: graph.history_of(last)
