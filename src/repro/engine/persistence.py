"""Saving and loading database images.

The schema (catalog) is code — it is defined programmatically or through
the DDL — so the image format stores **instances only**: objects, their
local attribute values, complex-object containment, relationships and
inheritance links.  Loading requires a database whose catalog already
contains every referenced type under the same name; this mirrors the
paper's setting where the schema is part of the application, not the data.

The format is plain JSON.  Structured values are tagged so they survive the
round-trip: records as ``{"__record__": {...}}``, sets as
``{"__set__": [...]}``, surrogates as ``{"__surrogate__": [value, space]}``;
attribute values are re-validated against their domains on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from ..core.domains import RecordValue
from ..core.objects import DBObject, InheritanceLink, RelationshipObject
from ..core.surrogate import Surrogate
from ..errors import PersistenceError, UnknownTypeError
from .database import Database

__all__ = ["save", "load", "dump_image", "load_image"]

_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def _encode_value(value: Any) -> Any:
    if isinstance(value, Surrogate):
        return {"__surrogate__": [value.value, value.space]}
    if isinstance(value, RecordValue):
        return {"__record__": {k: _encode_value(v) for k, v in value.items()}}
    if isinstance(value, frozenset):
        return {"__set__": [_encode_value(v) for v in sorted(value, key=repr)]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    if isinstance(value, dict):
        return {"__dict__": {k: _encode_value(v) for k, v in value.items()}}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise PersistenceError(f"cannot serialise value {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__surrogate__" in value:
            raw, space = value["__surrogate__"]
            return Surrogate(raw, space)
        if "__record__" in value:
            return {k: _decode_value(v) for k, v in value["__record__"].items()}
        if "__set__" in value:
            return [_decode_value(v) for v in value["__set__"]]
        if "__tuple__" in value:
            return [_decode_value(v) for v in value["__tuple__"]]
        if "__dict__" in value:
            return {k: _decode_value(v) for k, v in value["__dict__"].items()}
        raise PersistenceError(f"unknown tagged value {sorted(value)!r}")
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# dumping
# ---------------------------------------------------------------------------

def _container_ref(obj: DBObject) -> Any:
    if obj._container is not None:
        return [obj._container.owner.surrogate.value, obj._container.name]
    return None


def _dump_object(obj: DBObject) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "surrogate": obj.surrogate.value,
        "type": obj.object_type.name,
        "attrs": {k: _encode_value(v) for k, v in obj.local_attributes().items()},
        "container": _container_ref(obj),
    }
    if isinstance(obj, InheritanceLink):
        record["kind"] = "link"
        record["transmitter"] = obj.transmitter.surrogate.value
        record["inheritor"] = obj.inheritor.surrogate.value
    elif isinstance(obj, RelationshipObject):
        record["kind"] = "relationship"
        participants: Dict[str, Any] = {}
        for role, value in obj._participants.items():
            if isinstance(value, tuple):
                participants[role] = [p.surrogate.value for p in value]
            else:
                participants[role] = value.surrogate.value
        record["participants"] = participants
        if obj._container_rel is not None:
            record["rel_container"] = [
                obj._container_rel.owner.surrogate.value,
                obj._container_rel.name,
            ]
    else:
        record["kind"] = "object"
    return record


def dump_image(db: Database) -> Dict[str, Any]:
    """Build the JSON-ready image dictionary of a database's instances."""
    obs = getattr(db, "obs", None)
    if obs is None:
        return _dump_image(db)
    with obs.tracer.span("persistence.dump", objects=db.count()):
        image = _dump_image(db)
    obs.metrics.counter("persistence.dumps").inc()
    obs.metrics.counter("persistence.objects_dumped").inc(len(image["objects"]))
    return image


def _dump_image(db: Database) -> Dict[str, Any]:
    objects = sorted(db.objects(), key=lambda o: o.surrogate)
    return {
        "format": _FORMAT_VERSION,
        "name": db.name,
        "last_surrogate": db.surrogates.last_issued,
        "objects": [_dump_object(obj) for obj in objects],
        "classes": {
            name: {
                "type": extent.object_type.name,
                "members": [obj.surrogate.value for obj in extent],
            }
            for name, extent in db.classes().items()
        },
    }


def save(db: Database, path: str) -> None:
    """Write the database's instance image to ``path`` as JSON."""
    image = dump_image(db)
    with open(path, "w") as f:
        json.dump(image, f, indent=1)


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

def _restore_attrs(obj: DBObject, attrs: Dict[str, Any]) -> None:
    for name, encoded in attrs.items():
        decoded = _decode_value(encoded)
        spec = obj.object_type.effective_attribute(name)
        # Freshly loaded objects: no reader has memoised anything yet, so
        # the epoch can stay at its initial value.
        obj._attrs[name] = spec.validate(decoded) if spec is not None else decoded  # lint: allow(REP601)


def _restore_container(obj: DBObject, ref, by_surrogate) -> None:
    owner = by_surrogate[ref[0]]
    container = owner.subclass(ref[1])
    obj.parent = owner
    obj._container = container
    container._members[obj.surrogate] = obj


def load_image(image: Dict[str, Any], db: Database) -> Database:
    """Materialise an image into ``db`` (schema must already be loaded)."""
    obs = getattr(db, "obs", None)
    if obs is None:
        return _load_image(image, db)
    with obs.tracer.span("persistence.load", objects=len(image.get("objects", ()))):
        result = _load_image(image, db)
    obs.metrics.counter("persistence.loads").inc()
    obs.metrics.counter("persistence.objects_loaded").inc(db.count())
    return result


def _load_image(image: Dict[str, Any], db: Database) -> Database:
    if image.get("format") != _FORMAT_VERSION:
        raise PersistenceError(f"unsupported image format {image.get('format')!r}")
    if db.count():
        raise PersistenceError("target database already contains objects")
    space = db.surrogates.space
    records = sorted(image["objects"], key=lambda r: r["surrogate"])
    by_surrogate: Dict[int, DBObject] = {}

    # Pass 1: plain objects, so relationships can resolve participants.
    # An object's container owner may itself be a relationship (a steel
    # Screwing carries its Bolt/Nut in local subclasses), and those only
    # materialise in pass 2 — defer such containers until then.
    deferred_containers: List[Tuple[DBObject, Any]] = []
    for record in records:
        if record["kind"] != "object":
            continue
        object_type = db.catalog.type(record["type"])
        obj = DBObject(object_type, Surrogate(record["surrogate"], space), database=db)
        by_surrogate[record["surrogate"]] = obj
    for record in records:
        if record["kind"] != "object":
            continue
        obj = by_surrogate[record["surrogate"]]
        _restore_attrs(obj, record["attrs"])
        ref = record["container"]
        if ref is not None:
            if ref[0] in by_surrogate:
                _restore_container(obj, ref, by_surrogate)
            else:
                deferred_containers.append((obj, ref))

    # Pass 2: relationships and links, in surrogate (creation) order.
    for record in records:
        kind = record["kind"]
        if kind == "object":
            continue
        rel_type = db.catalog.relationship_type(record["type"])
        surrogate = Surrogate(record["surrogate"], space)
        if kind == "link":
            from ..core.inheritance import InheritanceRelationshipType

            if not isinstance(rel_type, InheritanceRelationshipType):
                raise PersistenceError(
                    f"type {rel_type.name!r} is not an inheritance relationship"
                )
            transmitter = by_surrogate[record["transmitter"]]
            inheritor = by_surrogate[record["inheritor"]]
            link = InheritanceLink(
                rel_type, transmitter, inheritor, surrogate, database=db
            )
            inheritor._links_as_inheritor[rel_type.name] = link
            transmitter._links_as_transmitter.append(link)
            inheritor._bump_binding_epoch()
            transmitter._binding_epoch += 1
            _restore_attrs(link, record["attrs"])
            by_surrogate[record["surrogate"]] = link
        else:
            participants: Dict[str, Any] = {}
            for role, value in record["participants"].items():
                if isinstance(value, list):
                    participants[role] = [by_surrogate[v] for v in value]
                else:
                    participants[role] = by_surrogate[value]
            rel = RelationshipObject(rel_type, participants, surrogate, database=db)
            _restore_attrs(rel, record["attrs"])
            ref = record.get("rel_container")
            if ref is not None:
                owner = by_surrogate[ref[0]]
                container = owner.subrel(ref[1])
                rel.parent = owner
                rel._container_rel = container
                container._members[rel.surrogate] = rel
            by_surrogate[record["surrogate"]] = rel

    for obj, ref in deferred_containers:
        _restore_container(obj, ref, by_surrogate)

    # Classes.
    for name, class_record in image.get("classes", {}).items():
        object_type = db.catalog.type(class_record["type"])
        extent = db._classes.get(name)
        if extent is None:
            extent = db.create_class(name, object_type)
        for value in class_record["members"]:
            extent.add(by_surrogate[value])

    db.surrogates.advance_past(image.get("last_surrogate", 0))
    return db


def load(path: str, db: Database) -> Database:
    """Load a JSON image from ``path`` into ``db``."""
    try:
        with open(path) as f:
            image = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read image {path!r}: {exc}") from exc
    try:
        return load_image(image, db)
    except (KeyError, UnknownTypeError) as exc:
        raise PersistenceError(f"image {path!r} is inconsistent: {exc}") from exc
