"""The whole paper in one narrative: §2 → §6 in order.

Each test method corresponds to one section's central claim, executed on a
single shared database so the sections build on each other the way the
paper's exposition does.
"""

import pytest

from repro.composition import (
    add_component,
    copy_component,
    expand,
    stale_members,
    where_used,
)
from repro.consistency import AdaptationTracker, change_impact
from repro.core import INTEGER, ObjectType
from repro.errors import (
    ConstraintViolation,
    InheritanceError,
    LockConflictError,
    VersionError,
)
from repro.txn import AccessControlManager, LockMode, TransactionManager
from repro.versions import (
    DefaultSelection,
    GenericRelationship,
    QuerySelection,
    StateGuard,
    VersionGraph,
    Workspace,
)
from repro.workloads import (
    gate_database,
    make_flipflop,
    make_implementation,
    make_interface,
)


@pytest.fixture(scope="class")
def world():
    """One database shared through the walkthrough."""

    class World:
        db = gate_database("walkthrough")
        guard = StateGuard(db)
        tracker = AdaptationTracker(db)

    return World


@pytest.mark.usefixtures("world")
class TestPaperWalkthrough:
    def test_s2_copy_goes_stale_inheritance_does_not(self, world):
        """§2: the two problems of copy composition, and the fix."""
        db = world.db
        component = make_interface(db, length=10)
        slot_type = ObjectType("W.CopySlot", attributes={"N": INTEGER},
                               subclasses={"Pins": db.catalog.object_type("PinType")})
        holder_type = ObjectType("W.Holder", subclasses={"Slots": slot_type})
        holder = db.create_object(holder_type)
        copy = copy_component(holder, "Slots", component)

        composite = make_implementation(db, make_interface(db))
        linked = add_component(composite, "SubGates", component,
                               GateLocation=(0, 0))
        component.set_attribute("Length", 11)
        assert stale_members(copy, component) == ["Length"]  # problem 1
        assert linked["Length"] == 11                        # solved

    def test_s3_complex_objects(self, world):
        """§3: the flip-flop with constraints and local relationships."""
        ff, subgates = make_flipflop(world.db)
        ff.check_constraints(deep=True)
        assert len(ff["Wires"]) == 6
        alien = world.db.create_object("PinType", InOut="IN")
        with pytest.raises(ConstraintViolation):
            ff.subrel("Wires").create(
                {"Pin1": ff["Pins"][0], "Pin2": alien}
            )
        world.ff = ff

    def test_s41_inheritance_relationship(self, world):
        """§4.1: values flow, inherited data is read-only."""
        db = world.db
        world.nand_if = make_interface(db, length=10)
        world.nand_v1 = make_implementation(db, world.nand_if)
        assert world.nand_v1["Length"] == 10
        with pytest.raises(InheritanceError):
            world.nand_v1.set_attribute("Length", 1)
        world.nand_if.set_attribute("Length", 12)
        assert world.nand_v1["Length"] == 12

    def test_s42_interfaces_and_composites(self, world):
        """§4.2: hierarchy + the same mechanism for components."""
        db = world.db
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        iface = db.create_object("GateInterface", transmitter=top,
                                 Length=5, Width=5)
        impl = db.create_object("GateImplementation", transmitter=iface)
        assert len(impl["Pins"]) == 1  # two levels of value flow

        composite = make_implementation(db, make_interface(db, length=50))
        slot = add_component(composite, "SubGates", world.nand_if,
                             GateLocation=(1, 2))
        assert slot["Length"] == world.nand_if["Length"]
        assert composite in where_used(world.nand_if)
        world.composite, world.slot = composite, slot

    def test_s42_adaptation_and_impact(self, world):
        """§4.1/§4.2: change notification on the relationship."""
        report = change_impact(world.nand_if, "Length")
        assert any(
            obj.surrogate == world.slot.surrogate for obj, _ in report.affected
        )
        world.tracker.clear()
        world.nand_if.set_attribute("Width", 9)
        assert world.tracker.needs_adaptation(world.slot)
        world.tracker.acknowledge(world.slot)

    def test_s5_steel_analogue(self, world):
        """§5's lesson generalises: attributed relationships carry
        assembly semantics (checked via the gate schema's Wire here;
        the full steel scenario runs in test_fig5_steel.py)."""
        wires = world.ff.subrel("Wires")
        assert all(w.rel_type.name == "WireType" for w in wires)

    def test_s6_versions(self, world):
        """§6: graphs, states, workspaces, generic selection."""
        db, guard = world.db, world.guard
        graph = VersionGraph(design_object=world.nand_if, guard=guard)
        graph.add_version(world.nand_if)
        graph.release(world.nand_if)
        with pytest.raises(VersionError):
            world.nand_if.set_attribute("Length", 1)

        workspace = Workspace(db, user="alice")
        working = workspace.checkout(graph, world.nand_if)
        working.set_attribute("Length", 8)
        result = workspace.checkin(working)
        assert graph.base_of(result.version) is world.nand_if

        slot = db.create_object("GateImplementation")
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        generic = GenericRelationship(slot, rel, graph)
        link = generic.resolve(QuerySelection("Length = 8"))
        assert link.transmitter is result.version
        graph.set_default(result.version)
        other = db.create_object("GateImplementation")
        GenericRelationship(other, rel, graph).resolve(DefaultSelection())
        world.graph = graph

    def test_s6_transactions(self, world):
        """§6: lock inheritance, expansion locking, access capping."""
        db = world.db
        access = AccessControlManager()
        tm = TransactionManager(db, access=access)

        reader = tm.begin(user="alice")
        reader.read(world.slot)  # read-locks the nand interface's image
        writer = tm.begin(user="bob")
        with pytest.raises(LockConflictError):
            writer.write(world.nand_if, {"Length"})
        reader.commit()
        writer.abort()

        # Now the interface becomes a protected standard part (§6).
        access.protect_standard_object(world.nand_if)
        sweeper = tm.begin(user="alice")
        sweeper.lock_expansion(world.composite, mode=LockMode.X)
        modes = {
            e.mode for e in tm.lock_table.holders(world.nand_if.surrogate)
        }
        assert modes == {LockMode.S}  # capped: the standard part stays readable
        sweeper.commit()

    def test_world_is_structurally_sound(self, world):
        """Epilogue: the whole walkthrough left a consistent database."""
        from repro.engine.integrity import assert_integrity

        assert_integrity(world.db)
        expansion = expand(world.composite)
        assert world.nand_if in expansion
