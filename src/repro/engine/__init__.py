"""Engine: catalog, database facade, extents, queries, events, persistence."""

from .catalog import Catalog
from .database import Database
from .events import Event, EventBus, Subscription
from .persistence import dump_image, load, load_image, save
from .query import (
    evaluate_predicate,
    inheritors_of,
    relationships_of,
    root_of,
    transmitters_of,
    walk_subobjects,
    walk_tree,
)
from .storage import Extent

__all__ = [
    "Catalog",
    "Database",
    "Event",
    "EventBus",
    "Subscription",
    "Extent",
    "dump_image",
    "load",
    "load_image",
    "save",
    "evaluate_predicate",
    "inheritors_of",
    "relationships_of",
    "root_of",
    "transmitters_of",
    "walk_subobjects",
    "walk_tree",
]
