"""Property-based tests for the expression language (hypothesis).

Key invariants: unparse/re-parse preserves semantics, evaluation is
deterministic, arithmetic agrees with Python, and the quantifier semantics
match an explicit cartesian-product check.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.expr import EvalContext, parse_expression, truthy
from repro.expr.lexer import KEYWORDS


class Obj:
    def __init__(self, **members):
        self._members = members

    def get_member(self, name):
        return self._members[name]


# -- strategies ------------------------------------------------------------------

numbers = st.integers(min_value=-999, max_value=999)
small_numbers = st.integers(min_value=1, max_value=20)

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
    lambda s: s not in KEYWORDS
)


@st.composite
def arithmetic_exprs(draw, depth=0):
    """Random arithmetic expression source + its Python value."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(numbers)
        return str(value), value
    left_src, left_val = draw(arithmetic_exprs(depth=depth + 1))
    right_src, right_val = draw(arithmetic_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    result = {"+": left_val + right_val, "-": left_val - right_val,
              "*": left_val * right_val}[op]
    return f"({left_src} {op} {right_src})", result


def evaluate(source, root=None, **bindings):
    return parse_expression(source).evaluate(
        EvalContext(root if root is not None else Obj(), bindings)
    )


class TestArithmeticAgreesWithPython:
    @given(arithmetic_exprs())
    def test_random_arithmetic(self, pair):
        source, expected = pair
        assert evaluate(source) == expected

    @given(numbers, numbers)
    def test_comparison_table(self, a, b):
        # Negative literals exercise unary-minus parsing.
        assert evaluate(f"({a}) < ({b})") == (a < b)
        assert evaluate(f"({a}) = ({b})") == (a == b)
        assert evaluate(f"({a}) <= ({b})") == (a <= b)
        assert evaluate(f"({a}) != ({b})") == (a != b)


class TestUnparseRoundTrip:
    @given(arithmetic_exprs())
    def test_arithmetic_round_trip(self, pair):
        source, expected = pair
        node = parse_expression(source)
        again = parse_expression(node.unparse())
        assert again.evaluate(EvalContext(Obj())) == expected

    @given(st.lists(small_numbers, min_size=0, max_size=10))
    def test_aggregate_round_trip(self, values):
        root = Obj(Bores=values)
        for source in ("count(Bores)", "sum(Bores)", "exists(Bores)"):
            node = parse_expression(source)
            again = parse_expression(node.unparse())
            assert node.evaluate(EvalContext(root)) == again.evaluate(
                EvalContext(root)
            )

    @given(st.lists(small_numbers, min_size=1, max_size=10), small_numbers)
    def test_quantifier_round_trip(self, values, bound):
        root = Obj(Items=[Obj(V=v) for v in values])
        source = f"for i in Items: i.V <= {bound}"
        node = parse_expression(source)
        again = parse_expression(node.unparse())
        ctx = EvalContext(root)
        assert node.evaluate(ctx) == again.evaluate(EvalContext(root))


class TestAggregates:
    @given(st.lists(small_numbers, max_size=20))
    def test_count_and_sum(self, values):
        root = Obj(Bores=values)
        assert evaluate("count(Bores)", root) == len(values)
        assert evaluate("sum(Bores)", root) == sum(values)

    @given(st.lists(small_numbers, min_size=1, max_size=20))
    def test_min_max_avg(self, values):
        root = Obj(Bores=values)
        assert evaluate("min(Bores)", root) == min(values)
        assert evaluate("max(Bores)", root) == max(values)
        assert abs(evaluate("avg(Bores)", root) - sum(values) / len(values)) < 1e-9

    @given(st.lists(small_numbers, max_size=20), small_numbers)
    def test_filtered_count_equals_python_filter(self, values, threshold):
        root = Obj(Items=[Obj(V=v) for v in values])
        got = evaluate(f"count(Items where Items.V >= {threshold})", root)
        assert got == sum(1 for v in values if v >= threshold)


class TestQuantifierSemantics:
    @given(
        st.lists(small_numbers, max_size=6),
        st.lists(small_numbers, max_size=6),
    )
    def test_forall_matches_cartesian_product(self, xs, ys):
        root = Obj(Xs=[Obj(V=x) for x in xs], Ys=[Obj(V=y) for y in ys])
        got = truthy(
            parse_expression("for (a in Xs, b in Ys): a.V <= b.V").evaluate(
                EvalContext(root)
            )
        )
        expected = all(x <= y for x in xs for y in ys)
        assert got == expected

    @given(st.lists(small_numbers, max_size=8))
    def test_vacuous_truth(self, values):
        root = Obj(Items=[], Others=[Obj(V=v) for v in values])
        assert truthy(
            parse_expression("for i in Items: i.V > 999").evaluate(EvalContext(root))
        )


class TestDeterminism:
    @given(st.lists(small_numbers, max_size=10), small_numbers)
    def test_repeated_evaluation_stable(self, values, threshold):
        root = Obj(Items=[Obj(V=v) for v in values])
        node = parse_expression(f"count(Items where Items.V > {threshold}) >= 1")
        results = {node.evaluate(EvalContext(root)) for _ in range(5)}
        assert len(results) == 1


class TestIdentifierResolution:
    @given(identifiers, numbers)
    def test_member_lookup(self, name, value):
        root = Obj(**{name: value})
        assert evaluate(f"{name} = {value}", root)

    @given(identifiers)
    def test_unresolved_names_become_labels(self, name):
        assert evaluate(name) == name
