"""Tests for the composition layer (repro.composition)."""

import pytest

from repro.composition import (
    abstraction_chain,
    abstraction_tree,
    add_component,
    bill_of_materials,
    clone_object,
    components_of,
    configuration,
    copy_component,
    expand,
    implementations_of,
    interfaces_of,
    missing_components,
    provides_all_components,
    rebind,
    refine,
    stale_members,
    view_component,
    visible_image,
    where_used,
)
from repro.core import INTEGER, ObjectType
from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.errors import InheritanceError, UnknownAttributeError


@pytest.fixture
def db():
    db = Database("composition")
    load_gate_schema(db.catalog)
    return db


def make_interface(db, length=10, width=5, n_in=2):
    iface = db.create_object("GateInterface", Length=length, Width=width)
    for i in range(n_in):
        iface.subclass("Pins").create(InOut="IN", PinLocation=(0, i))
    iface.subclass("Pins").create(InOut="OUT", PinLocation=(9, 0))
    return iface


def make_composite(db, components=2):
    """A GateImplementation using `components` interface components."""
    own_if = make_interface(db, 40, 20)
    impl = db.create_object("GateImplementation", transmitter=own_if)
    used = []
    for i in range(components):
        component_if = make_interface(db, 10, 5)
        sub = add_component(impl, "SubGates", component_if, GateLocation=(i, 0))
        used.append((sub, component_if))
    return impl, own_if, used


class TestAddComponent:
    def test_component_data_visible_with_own_attrs(self, db):
        impl, own_if, used = make_composite(db, 1)
        sub, component_if = used[0]
        assert sub["Length"] == 10  # inherited from the component
        assert sub["GateLocation"].X == 0  # local placement
        assert len(sub["Pins"]) == 3

    def test_components_of(self, db):
        impl, _, used = make_composite(db, 2)
        pairs = components_of(impl)
        assert len(pairs) == 2
        assert {c.surrogate for _, c in pairs} == {
            c.surrogate for _, c in used
        }

    def test_component_update_visible(self, db):
        impl, _, used = make_composite(db, 1)
        sub, component_if = used[0]
        component_if.set_attribute("Width", 77)
        assert sub["Width"] == 77

    def test_ambiguous_rel_type_rejected(self, db):
        # The Gate type's SubGates element (ElementaryGate) declares no
        # inheritance relationship at all.
        gate = db.create_object("Gate")
        iface = make_interface(db)
        with pytest.raises(InheritanceError):
            add_component(gate, "SubGates", iface)


class TestInterfaces:
    def test_implementations_and_interfaces(self, db):
        iface = make_interface(db)
        impl_a = db.create_object("GateImplementation", transmitter=iface)
        impl_b = db.create_object("GateImplementation", transmitter=iface)
        assert set(implementations_of(iface)) == {impl_a, impl_b}
        assert interfaces_of(impl_a) == [iface]

    def test_abstraction_chain_three_levels(self, db):
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        chain = abstraction_chain(impl)
        assert chain == [impl, iface, top]

    def test_abstraction_tree(self, db):
        iface = make_interface(db)
        db.create_object("GateImplementation", transmitter=iface)
        db.create_object("GateImplementation", transmitter=iface)
        tree = abstraction_tree(iface)
        assert tree["object"] is iface and len(tree["inheritors"]) == 2

    def test_rebind_moves_inheritance(self, db):
        iface_a = make_interface(db, length=10)
        iface_b = make_interface(db, length=99)
        impl = db.create_object("GateImplementation", transmitter=iface_a)
        rebind(impl, iface_b)
        assert impl["Length"] == 99
        assert implementations_of(iface_a) == []

    def test_refine_walks_down_one_level(self, db):
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        concrete = db.create_object(
            "GateInterface", transmitter=top, Length=7, Width=7
        )
        # A composite whose component is bound at the abstract level; the
        # slot type must opt in to the abstract relationship (§4.2: "in the
        # early phases … composite objects may use components from abstract
        # levels of the hierarchy").
        own_if = make_interface(db)
        impl = db.create_object("GateImplementation", transmitter=own_if)
        rel = db.catalog.inheritance_type("AllOf_GateInterface_I")
        db.catalog.object_type("GateImplementation.SubGates").declare_inheritor_in(rel)
        sub = impl.subclass("SubGates").create(transmitter=top, via=rel)
        old, new = refine(sub)
        assert old is top and new is concrete
        assert sub.inheritance_links[0].transmitter is concrete

    def test_refine_ambiguous_returns_none(self, db):
        top = db.create_object("GateInterface_I")
        db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        db.create_object("GateInterface", transmitter=top, Length=2, Width=2)
        own_if = make_interface(db)
        impl = db.create_object("GateImplementation", transmitter=own_if)
        rel = db.catalog.inheritance_type("AllOf_GateInterface_I")
        db.catalog.object_type("GateImplementation.SubGates").declare_inheritor_in(rel)
        sub = impl.subclass("SubGates").create(transmitter=top, via=rel)
        old, new = refine(sub)
        assert old is top and new is None


class TestVisibleImageAndExpansion:
    def test_visible_image_merges_inherited_and_local(self, db):
        impl, own_if, _ = make_composite(db, 1)
        image = visible_image(impl)
        assert image["Length"] == 40  # inherited
        assert "SubGates" in image and len(image["SubGates"]) == 1
        assert image["surrogate"] == impl.surrogate

    def test_expand_collects_transmitters(self, db):
        impl, own_if, used = make_composite(db, 2)
        expansion = expand(impl)
        assert impl in expansion and own_if in expansion
        for sub, component_if in used:
            assert sub in expansion and component_if in expansion

    def test_expand_depth_zero_stops_at_composite(self, db):
        impl, own_if, used = make_composite(db, 1)
        expansion = expand(impl, depth=0)
        assert own_if not in expansion
        assert used[0][1] not in expansion

    def test_expansion_tree_shape(self, db):
        impl, own_if, used = make_composite(db, 1)
        expansion = expand(impl)
        tree = expansion.tree
        assert tree["object"] is impl
        assert tree["component"]["object"] is own_if
        subgates = tree["subobjects"]["SubGates"]
        assert subgates[0]["component"]["object"] is used[0][1]
        assert "attributes" in subgates[0]
        assert subgates[0]["attributes"]["GateLocation"].X == 0


class TestConfiguration:
    def test_flat_configuration(self, db):
        impl, _, used = make_composite(db, 3)
        tree = configuration(impl)
        assert len(tree.children) == 3
        assert tree.size() == 4

    def test_nested_configuration_descends_into_implementations(self, db):
        # leaf interface used by mid implementation; mid interface used by top.
        leaf_if = make_interface(db, 1, 1)
        mid_if = make_interface(db, 2, 2)
        mid_impl = db.create_object("GateImplementation", transmitter=mid_if)
        add_component(mid_impl, "SubGates", leaf_if)
        top_if = make_interface(db, 3, 3)
        top_impl = db.create_object("GateImplementation", transmitter=top_if)
        add_component(top_impl, "SubGates", mid_if)

        tree = configuration(top_impl)
        assert len(tree.children) == 1
        mid_node = tree.children[0]
        assert mid_node.component is mid_if
        assert mid_node.realisation is mid_impl
        assert len(mid_node.children) == 1
        assert mid_node.children[0].component is leaf_if

    def test_bill_of_materials(self, db):
        impl, _, _ = make_composite(db, 3)
        counts = bill_of_materials(impl)
        assert counts["GateInterface"] == 3

    def test_where_used(self, db):
        shared_if = make_interface(db)
        impl_a, _, _ = make_composite(db, 0)
        impl_b, _, _ = make_composite(db, 0)
        add_component(impl_a, "SubGates", shared_if)
        add_component(impl_b, "SubGates", shared_if)
        users = where_used(shared_if)
        assert {u.surrogate for u in users} == {impl_a.surrogate, impl_b.surrogate}

    def test_missing_components_detected(self, db):
        impl, _, _ = make_composite(db, 1)
        assert missing_components(impl) == []
        assert provides_all_components(impl)
        dangling = impl.subclass("SubGates").create()  # unbound slot
        assert missing_components(impl) == [dangling]
        assert not provides_all_components(impl)

    def test_depth_limited_configuration(self, db):
        leaf_if = make_interface(db, 1, 1)
        mid_if = make_interface(db, 2, 2)
        mid_impl = db.create_object("GateImplementation", transmitter=mid_if)
        add_component(mid_impl, "SubGates", leaf_if)
        top_if = make_interface(db, 3, 3)
        top_impl = db.create_object("GateImplementation", transmitter=top_if)
        add_component(top_impl, "SubGates", mid_if)
        tree = configuration(top_impl, max_depth=1)
        assert len(tree.children) == 1
        assert tree.children[0].children == []


class TestBaselines:
    def test_clone_is_deep_and_detached(self, db):
        iface = make_interface(db, length=10)
        twin = clone_object(iface)
        assert twin["Length"] == 10
        assert len(twin["Pins"]) == 3
        assert twin.surrogate != iface.surrogate
        iface.set_attribute("Length", 99)
        assert twin["Length"] == 10  # detached

    def test_clone_remaps_local_relationship_participants(self, db):
        gate = db.create_object("Gate")
        a = gate.subclass("Pins").create(InOut="IN")
        b = gate.subclass("Pins").create(InOut="OUT")
        gate.subrel("Wires").create({"Pin1": a, "Pin2": b})
        twin = clone_object(gate)
        wires = twin.subrel("Wires").members()
        assert len(wires) == 1
        assert wires[0].participant("Pin1").parent is twin

    def test_copy_component_goes_stale(self, db):
        impl, _, _ = make_composite(db, 0)
        component_if = make_interface(db, length=10)
        copy = copy_component(impl, "SubGates", component_if, GateLocation=(0, 0))
        assert copy["Length"] == 10
        assert stale_members(copy, component_if) == []
        component_if.set_attribute("Length", 11)
        assert copy["Length"] == 10  # the copy does not follow
        assert stale_members(copy, component_if) == ["Length"]

    def test_view_component_is_fresh_but_leaks_everything(self, db):
        # Slot type without members of its own, as a raw view would be.
        slot_type = ObjectType("ViewSlot", attributes={"X": INTEGER})
        db.catalog.register(slot_type)
        holder_type = ObjectType("ViewHolder", subclasses={"Parts": slot_type})
        db.catalog.register(holder_type)
        holder = db.create_object("ViewHolder")
        component_if = make_interface(db, length=10)
        view = view_component(holder, "Parts", component_if)
        assert view["Length"] == 10
        component_if.set_attribute("Length", 11)
        assert view["Length"] == 11  # always fresh
        # ... but everything is visible, including members an interface
        # would hide; with the selective AllOf relationship the untouched
        # members stay hidden (compare TestValueInheritance permeability).
        assert view["Width"] == component_if["Width"]

    def test_inheritance_component_fresh_and_selective(self, db):
        impl, _, used = make_composite(db, 1)
        sub, component_if = used[0]
        component_if.set_attribute("Length", 123)
        assert sub["Length"] == 123  # fresh like a view
        with pytest.raises(UnknownAttributeError):
            sub.get_member("TimeBehavior")  # not in the interface image
