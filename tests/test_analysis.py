"""Tests for the static schema analyzer (repro.analysis).

Three layers of assurance:

* a curated **defect corpus** — for every rule code a firing fixture and a
  clean twin, each cross-checked by the differential verifier in strict
  mode (every error diagnostic must coincide with a real engine failure);
* **property tests** — randomized schema ASTs must never produce a
  disagreement between the static verdict and the live engine;
* emitter/CLI/plumbing tests for the JSON, SARIF and text formats.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ADVICE,
    ERROR,
    RULES,
    WARNING,
    analyze,
    count_by_severity,
    filter_diagnostics,
    make,
    render_text,
    rule_info,
    run_query_rules,
    severity_rank,
    to_json,
    to_sarif,
    verify_against_runtime,
)
from repro.cli import main
from repro.ddl import ast as ddl_ast
from repro.ddl.paper import GATE_SCHEMA, STEEL_SCHEMA, load_gate_schema
from repro.ddl.parser import parse_schema_source
from repro.engine.database import Database
from repro.engine.integrity import VIOLATION_CODES, Violation, check_integrity
from tests.conftest import add_pins, build_gate_database


def codes_of(diagnostics):
    return sorted({d.code for d in diagnostics})


# ---------------------------------------------------------------------------
# the defect corpus: code -> (firing DDL, clean twin)
# ---------------------------------------------------------------------------

CORPUS = {
    "REP100": (
        "obj-type ;;;",
        "obj-type A = attributes: X: integer; end A;",
    ),
    "REP101": (
        # The cycle closes through R1's *forward* inheritor restriction,
        # the one reference site the builder resolves in a second pass —
        # so the schema builds and the failure surfaces at bind time.
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R2 = transmitter: object-of-type A; inheritor: object; inheriting: X; end R2;
        obj-type B = inheritor-in: R2; attributes: Y: integer; end B;
        inher-rel-type R1 = transmitter: object-of-type B; inheritor: object-of-type A; inheriting: Y; end R1;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R2 = transmitter: object-of-type A; inheritor: object; inheriting: X; end R2;
        obj-type B = inheritor-in: R2; attributes: Y: integer; end B;
        """,
    ),
    "REP102": (
        "obj-type A = types-of-subclasses: Parts: MissingType; end A;",
        """
        obj-type P = attributes: X: integer; end P;
        obj-type A = types-of-subclasses: Parts: P; end A;
        """,
    ),
    "REP103": (
        "rel-type R = attributes: X: integer; end R;",
        """
        obj-type A = attributes: X: integer; end A;
        rel-type R = relates: P1, P2: object-of-type A; end R;
        """,
    ),
    "REP104": (
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X, X; end R;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X; end R;
        """,
    ),
    "REP105": (
        """
        obj-type A = attributes: X: integer; end A;
        obj-type A = attributes: Y: integer; end A;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        obj-type B = attributes: Y: integer; end B;
        """,
    ),
    "REP106": (
        "obj-type A = attributes: X: integer; end B;",
        "obj-type A = attributes: X: integer; end A;",
    ),
    "REP107": (
        # inheritor-in must name an inher-rel-type, not an object type.
        """
        obj-type A = attributes: X: integer; end A;
        obj-type B = inheritor-in: A; attributes: Y: integer; end B;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X; end R;
        obj-type B = inheritor-in: R; attributes: Y: integer; end B;
        """,
    ),
    "REP108": (
        """
        obj-type A = types-of-subclasses: Parts: B; end A;
        obj-type B = attributes: X: integer; end B;
        """,
        """
        obj-type B = attributes: X: integer; end B;
        obj-type A = types-of-subclasses: Parts: B; end A;
        """,
    ),
    "REP201": (
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X, Z; end R;
        """,
        """
        obj-type A = attributes: X: integer; Z: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X, Z; end R;
        """,
    ),
    "REP202": (
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X; end R;
        obj-type B = inheritor-in: R; attributes: X: integer; end B;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object; inheriting: X; end R;
        obj-type B = inheritor-in: R; attributes: Y: integer; end B;
        """,
    ),
    "REP203": (
        """
        obj-type T1 = attributes: X: integer; end T1;
        obj-type T2 = attributes: X: integer; end T2;
        inher-rel-type R1 = transmitter: object-of-type T1; inheritor: object; inheriting: X; end R1;
        inher-rel-type R2 = transmitter: object-of-type T2; inheritor: object; inheriting: X; end R2;
        obj-type B = inheritor-in: R1, R2; attributes: Y: integer; end B;
        """,
        """
        obj-type T1 = attributes: X: integer; end T1;
        inher-rel-type R1 = transmitter: object-of-type T1; inheritor: object; inheriting: X; end R1;
        obj-type B = inheritor-in: R1; attributes: Y: integer; end B;
        """,
    ),
    "REP204": (
        """
        obj-type T1 = attributes: X: integer; end T1;
        obj-type T2 = attributes: X: string; end T2;
        inher-rel-type R1 = transmitter: object-of-type T1; inheritor: object; inheriting: X; end R1;
        inher-rel-type R2 = transmitter: object-of-type T2; inheritor: object; inheriting: X; end R2;
        obj-type B = inheritor-in: R1, R2; attributes: Y: integer; end B;
        """,
        # Same diamond but agreeing domains: REP203 still fires, 204 not.
        """
        obj-type T1 = attributes: X: integer; end T1;
        obj-type T2 = attributes: X: integer; end T2;
        inher-rel-type R1 = transmitter: object-of-type T1; inheritor: object; inheriting: X; end R1;
        inher-rel-type R2 = transmitter: object-of-type T2; inheritor: object; inheriting: X; end R2;
        obj-type B = inheritor-in: R1, R2; attributes: Y: integer; end B;
        """,
    ),
    "REP205": (
        # B declares inheritor-in although the restriction names Allowed;
        # the engine honours the explicit declaration (paper §5 pattern).
        """
        obj-type T = attributes: X: integer; end T;
        obj-type Allowed = attributes: Y: integer; end Allowed;
        inher-rel-type R = transmitter: object-of-type T; inheritor: object-of-type Allowed; inheriting: X; end R;
        obj-type B = inheritor-in: R; attributes: Z: integer; end B;
        """,
        """
        obj-type T = attributes: X: integer; end T;
        inher-rel-type R = transmitter: object-of-type T; inheritor: object; inheriting: X; end R;
        obj-type B = inheritor-in: R; attributes: Z: integer; end B;
        """,
    ),
    "REP206": (
        "obj-type A = attributes: X: integer; constraints: Nope = 1; end A;",
        "obj-type A = attributes: X: integer; constraints: X = 1; end A;",
    ),
    "REP207": (
        "obj-type A = attributes: X: integer; constraints: X = ; end A;",
        "obj-type A = attributes: X: integer; constraints: X = 1; end A;",
    ),
    "REP504": (
        # ON is an undeclared label: per object it resolves dynamically
        # (its own spelling), so the constraint cannot compile to a slot
        # program.  Declaring the enum domain makes ON a known label,
        # which the compiler folds to a constant — advisory gone.
        "obj-type A = attributes: X: integer; constraints: X = ON; end A;",
        """
        domain Mode = (ON, OFF);
        obj-type A = attributes: X: Mode; constraints: X = ON; end A;
        """,
    ),
    "REP505": (
        # B inherits the Parts *subclass*: container members cannot
        # flatten into a view column, so queries filtering on Parts
        # resolve it per object.  Inheriting only attributes is quiet.
        """
        obj-type P = attributes: X: integer; end P;
        obj-type A = attributes: L: integer;
            types-of-subclasses: Parts: P; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object;
            inheriting: L, Parts; end R;
        obj-type B = inheritor-in: R; end B;
        """,
        """
        obj-type P = attributes: X: integer; end P;
        obj-type A = attributes: L: integer;
            types-of-subclasses: Parts: P; end A;
        inher-rel-type R = transmitter: object-of-type A; inheritor: object;
            inheriting: L; end R;
        obj-type B = inheritor-in: R; end B;
        """,
    ),
    "REP301": (
        # A self-containing composite; the self-reference is also a
        # forward reference, so the build failure is predicted by REP108.
        "obj-type A = types-of-subclasses: Parts: A; end A;",
        """
        obj-type P = attributes: X: integer; end P;
        obj-type A = types-of-subclasses: Parts: P; end A;
        """,
    ),
    "REP302": (
        """
        obj-type P = attributes: X: integer; end P;
        rel-type W = relates: P1, P2: object-of-type P; end W;
        obj-type A =
            types-of-subclasses: Parts: P;
            types-of-subrels: Links: W where Bogus = 1;
        end A;
        """,
        """
        obj-type P = attributes: X: integer; end P;
        rel-type W = relates: P1, P2: object-of-type P; end W;
        obj-type A =
            types-of-subclasses: Parts: P;
            types-of-subrels: Links: W where Link.P1 in Parts;
        end A;
        """,
    ),
    "REP401": (
        # Composition B -> A plus inheritance A -> B: a mixed lock-scope
        # cycle (expansion locks owner->element, inherited reads lock
        # inheritor->transmitter).
        """
        obj-type A = attributes: X: integer; end A;
        obj-type B = attributes: Z: integer; types-of-subclasses: Parts: A; end B;
        inher-rel-type R = transmitter: object-of-type B; inheritor: object-of-type A; inheriting: Z; end R;
        """,
        """
        obj-type A = attributes: X: integer; end A;
        obj-type B = attributes: Z: integer; types-of-subclasses: Parts: A; end B;
        inher-rel-type R = transmitter: object-of-type B; inheritor: object; inheriting: Z; end R;
        """,
    ),
}


class TestDefectCorpus:
    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_rule_fires(self, code):
        firing, _ = CORPUS[code]
        assert code in codes_of(analyze(firing)), f"{code} did not fire"

    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_clean_twin_does_not_fire(self, code):
        _, clean = CORPUS[code]
        assert code not in codes_of(analyze(clean))

    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_firing_fixture_verifies_strictly(self, code):
        firing, _ = CORPUS[code]
        report = verify_against_runtime(firing, strict=True)
        assert report.ok, report.render()

    @pytest.mark.parametrize("code", sorted(CORPUS))
    def test_clean_twin_verifies_strictly(self, code):
        _, clean = CORPUS[code]
        report = verify_against_runtime(clean, strict=True)
        assert report.ok, report.render()
        assert report.built
        assert not report.failures

    def test_error_fixtures_actually_fail_at_runtime(self):
        # Every fixture whose code is an *error* must break the engine.
        for code, (firing, _) in CORPUS.items():
            if rule_info(code).severity != ERROR:
                continue
            report = verify_against_runtime(firing, strict=True)
            assert report.failures, f"{code}: engine accepted the defect"

    def test_warning_fixtures_run_clean(self):
        # Warnings flag legal-but-surprising schemas: they must build —
        # unless the fixture co-fires an error rule (REP301's recursive
        # composite is necessarily also a forward reference).
        for code, (firing, _) in CORPUS.items():
            if rule_info(code).severity != WARNING:
                continue
            if any(d.severity == ERROR for d in analyze(firing)):
                continue
            report = verify_against_runtime(firing, strict=True)
            assert report.built and not report.failures, (
                f"{code}: warning fixture failed at runtime: {report.render()}"
            )

    def test_corpus_covers_enough_rules(self):
        assert len(CORPUS) >= 12


class TestPaperSchemas:
    @pytest.mark.parametrize("source", [GATE_SCHEMA, STEEL_SCHEMA],
                             ids=["gate", "steel"])
    def test_error_clean(self, source):
        errors = [d for d in analyze(source) if d.severity == ERROR]
        assert errors == []

    @pytest.mark.parametrize("source", [GATE_SCHEMA, STEEL_SCHEMA],
                             ids=["gate", "steel"])
    def test_verifies_strictly(self, source):
        report = verify_against_runtime(source, strict=True)
        assert report.ok, report.render()
        assert report.built
        assert report.checks > 10

    def test_gate_end_name_advice_carries_location(self):
        findings = [d for d in analyze(GATE_SCHEMA, source_path="gate.ddl")
                    if d.code == "REP106"]
        assert findings
        assert findings[0].location.path == "gate.ddl"
        assert findings[0].location.line is not None

    def test_steel_restriction_bypass_is_flagged(self):
        # Girder/Plate declare inheritor-in past the AllOf_* restrictions
        # (the paper's §5 pattern) — warned about, never an error.
        findings = [d for d in analyze(STEEL_SCHEMA) if d.code == "REP205"]
        assert len(findings) == 2
        assert all(d.severity == WARNING for d in findings)


# ---------------------------------------------------------------------------
# randomized differential testing
# ---------------------------------------------------------------------------

_ATTRS = ["A0", "A1", "A2"]
_TYPES = ["T0", "T1", "T2"]
_RELS = ["R0", "R1"]


@st.composite
def random_schemas(draw):
    """Schemas with deliberate room for dangling/forward/bogus references,
    shadows, holes and cycles — and for perfectly clean declarations."""
    decls = []
    for _ in range(draw(st.integers(2, 5))):
        if draw(st.booleans()):
            name = draw(st.sampled_from(_TYPES))
            attrs = [
                ddl_ast.AttributeDecl(
                    (a,),
                    ddl_ast.DomainRef(draw(st.sampled_from(["integer", "string"]))),
                )
                for a in draw(st.lists(st.sampled_from(_ATTRS), unique=True,
                                       max_size=2))
            ]
            subclasses = []
            if draw(st.booleans()):
                subclasses.append(ddl_ast.SubclassDecl(
                    "Parts", type_name=draw(st.sampled_from(_TYPES)),
                ))
            decls.append(ddl_ast.ObjTypeDecl(
                name=name,
                inheritor_in=draw(st.lists(
                    st.sampled_from(_RELS + _TYPES), max_size=1,
                )),
                attributes=attrs,
                subclasses=subclasses,
                end_name=name,
            ))
        else:
            decls.append(ddl_ast.InherRelTypeDecl(
                name=draw(st.sampled_from(_RELS)),
                transmitter_type=draw(st.sampled_from(_TYPES)),
                inheritor_type=draw(st.sampled_from([None] + _TYPES)),
                inheriting=draw(st.lists(st.sampled_from(_ATTRS),
                                         unique=True, min_size=1, max_size=2)),
                end_name="",
            ))
    return ddl_ast.Schema(declarations=decls)


class TestRandomizedAgreement:
    @settings(max_examples=60, deadline=None)
    @given(random_schemas())
    def test_static_and_runtime_verdicts_agree(self, schema):
        # Both directions at once: a runtime failure must be predicted by
        # at least one error diagnostic, and a lint-clean schema must
        # instantiate, bind and resolve cleanly.
        report = verify_against_runtime(schema)
        assert report.ok, report.render()

    @settings(max_examples=60, deadline=None)
    @given(random_schemas())
    def test_lint_clean_implies_clean_instantiation(self, schema):
        if any(d.severity == ERROR for d in analyze(schema)):
            return
        report = verify_against_runtime(schema)
        assert report.built, report.render()
        assert not report.failures, report.render()


# ---------------------------------------------------------------------------
# database-level rules (REP0xx, REP5xx)
# ---------------------------------------------------------------------------

@pytest.fixture
def populated_db():
    db = build_gate_database("analysis")
    for length, width in ((10, 5), (20, 5), (30, 9), (40, 9)):
        iface = db.create_object(
            "GateInterface", class_name="Interfaces", Length=length, Width=width
        )
        add_pins(iface, n_in=2, n_out=1)
    return db


class TestDatabaseRules:
    def test_healthy_database_is_clean(self, populated_db):
        # Advice only: GateImplementation inherits the Pins *subclass*,
        # which legitimately trips the view-ineligibility advisory.
        findings = analyze(populated_db)
        assert codes_of(findings) == ["REP505"]
        assert all(d.severity == ADVICE for d in findings)

    def test_corruption_surfaces_as_rep0xx(self, populated_db):
        iface = populated_db.class_("Interfaces").members()[0]
        iface._deleted = True  # corrupt: deleted without unregistering
        findings = analyze(populated_db)
        assert "REP001" in codes_of(findings)
        assert all(
            d.severity == ERROR for d in findings if d.code != "REP505"
        )

    def test_violation_codes_are_stable(self):
        assert Violation("containment", None, "x").code == "REP002"
        assert Violation("relationship", None, "x").code == "REP003"
        assert Violation("inheritance", None, "x").code == "REP004"
        assert Violation("class", None, "x").code == "REP005"
        assert Violation("unheard-of", None, "x").code == "REP001"
        for code in VIOLATION_CODES.values():
            assert code in RULES

    def test_lint_run_is_audited(self, populated_db):
        populated_db.enable_observability()
        analyze(populated_db)
        counter = populated_db.obs.metrics.counter("lint.runs")
        assert counter.value >= 1


class TestQueryRules:
    def test_unknown_source(self, populated_db):
        findings = run_query_rules(populated_db, ["select * from Nowhere"])
        assert codes_of(findings) == ["REP502"]
        assert findings[0].severity == ERROR

    def test_unresolved_name(self, populated_db):
        findings = run_query_rules(
            populated_db, ["select * from Interfaces where Bogus > 3"]
        )
        assert codes_of(findings) == ["REP503"]

    def test_unindexed_sargable_attribute(self, populated_db):
        populated_db.indexes.min_index_source = 2
        findings = run_query_rules(
            populated_db, ["select * from Interfaces where Length > 10"]
        )
        assert "REP501" in codes_of(findings)

    def test_small_source_gets_no_index_advice(self, populated_db):
        # Four objects sit far below the indexing threshold: a scan wins.
        findings = run_query_rules(
            populated_db, ["select * from Interfaces where Length > 10"]
        )
        assert "REP501" not in codes_of(findings)

    def test_resolvable_query_is_clean(self, populated_db):
        findings = run_query_rules(
            populated_db,
            ["select Length, Width from Interfaces where Length > 10 "
             "order by Width desc"],
        )
        assert findings == []

    def test_queries_flow_through_analyze(self, populated_db):
        findings = analyze(populated_db, queries=["select * from Nowhere"])
        assert "REP502" in codes_of(findings)


# ---------------------------------------------------------------------------
# dispatch, filtering, emitters
# ---------------------------------------------------------------------------

class TestAnalyzeDispatch:
    def test_accepts_source_text(self):
        assert analyze(CORPUS["REP102"][0])

    def test_accepts_parsed_schema(self):
        schema = parse_schema_source(CORPUS["REP105"][0])
        assert "REP105" in codes_of(analyze(schema))

    def test_accepts_catalog(self):
        catalog = load_gate_schema()
        errors = [d for d in analyze(catalog) if d.severity == ERROR]
        assert errors == []

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            analyze(42)

    def test_select_and_ignore(self):
        source = CORPUS["REP204"][0]  # fires both REP203 and REP204
        assert codes_of(analyze(source, select=["REP204"])) == ["REP204"]
        assert "REP203" not in codes_of(analyze(source, ignore=["REP203"]))
        # Prefix selection: the whole resolution namespace.
        assert codes_of(analyze(source, select=["REP2"])) == ["REP203", "REP204"]

    def test_sorted_errors_first(self):
        findings = analyze(
            CORPUS["REP106"][0] + "\n" + CORPUS["REP105"][0]
        )
        ranks = [severity_rank(d.severity) for d in findings]
        assert ranks == sorted(ranks)


class TestDiagnosticsPlumbing:
    def test_every_rule_has_metadata(self):
        for code, info in RULES.items():
            assert info.code == code
            assert info.slug
            assert info.summary
            assert info.severity in (ERROR, WARNING, ADVICE)

    def test_make_uses_registry_severity(self):
        d = make("REP501", "msg")
        assert d.severity == ADVICE
        assert make("REP107", "msg", severity=WARNING).severity == WARNING

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make("REP999", "msg")

    def test_filter_by_prefix(self):
        ds = [make("REP102", "a"), make("REP203", "b"), make("REP501", "c")]
        assert codes_of(filter_diagnostics(ds, select=["REP1", "REP5"])) == \
            ["REP102", "REP501"]
        assert codes_of(filter_diagnostics(ds, ignore=["REP2"])) == \
            ["REP102", "REP501"]

    def test_count_by_severity(self):
        ds = [make("REP102", "a"), make("REP203", "b"), make("REP501", "c")]
        counts = count_by_severity(ds)
        assert (counts[ERROR], counts[WARNING], counts[ADVICE]) == (1, 1, 1)


class TestEmitters:
    @pytest.fixture
    def findings(self):
        return analyze(CORPUS["REP204"][0], source_path="d.ddl")

    def test_text_has_summary_and_locations(self, findings):
        text = render_text(findings)
        assert "d.ddl:" in text
        assert "warning" in text
        assert "REP203" in text and "REP204" in text

    def test_json_shape(self, findings):
        payload = to_json(findings)
        parsed = json.loads(json.dumps(payload))  # round-trippable
        assert parsed["schema"] == "repro.lint/1"
        assert parsed["counts"]["warning"] == len(findings)
        entry = parsed["diagnostics"][0]
        for key in ("code", "slug", "severity", "message", "path", "line"):
            assert key in entry

    def test_sarif_shape(self, findings):
        sarif = to_sarif(findings)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == sorted(RULES)
        result = run["results"][0]
        assert result["ruleId"] in ("REP203", "REP204")
        assert result["level"] == "warning"  # warning maps to warning
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "d.ddl"
        assert location["region"]["startLine"] >= 1

    def test_sarif_level_mapping(self):
        sarif = to_sarif([make("REP501", "m"), make("REP102", "m")])
        levels = {r["ruleId"]: r["level"] for r in sarif["runs"][0]["results"]}
        assert levels["REP102"] == "error"
        assert levels["REP501"] == "note"  # advice maps to SARIF note

    def test_empty_findings(self):
        assert to_json([])["diagnostics"] == []
        assert to_sarif([])["runs"][0]["results"] == []
        assert "0 errors" in render_text([])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

@pytest.fixture
def gate_file(tmp_path):
    path = tmp_path / "gate.ddl"
    path.write_text(GATE_SCHEMA)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.ddl"
    path.write_text(CORPUS["REP201"][0])
    return str(path)


class TestLintCommand:
    def test_clean_schema_exits_zero(self, gate_file, capsys):
        assert main(["lint", gate_file]) == 0
        out = capsys.readouterr().out
        assert "REP106" in out  # end-name advice is reported but not fatal

    def test_errors_gate_the_exit_code(self, broken_file, capsys):
        assert main(["lint", broken_file]) == 2
        assert "REP201" in capsys.readouterr().out

    def test_fail_on_advice(self, gate_file):
        assert main(["lint", gate_file, "--fail-on", "advice"]) == 2

    def test_fail_on_never(self, broken_file):
        assert main(["lint", broken_file, "--fail-on", "never"]) == 0

    def test_select_and_ignore_flags(self, gate_file, capsys):
        assert main(["lint", gate_file, "--ignore", "REP106"]) == 0
        assert "REP106" not in capsys.readouterr().out
        assert main(["lint", gate_file, "--select", "REP5"]) == 0
        assert "REP106" not in capsys.readouterr().out

    def test_json_format(self, gate_file, capsys):
        assert main(["lint", gate_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.lint/1"

    def test_sarif_format(self, broken_file, capsys):
        assert main(["lint", broken_file, "--format", "sarif"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert any(r["ruleId"] == "REP201"
                   for r in payload["runs"][0]["results"])

    def test_verify_mode(self, gate_file, capsys):
        assert main(["lint", gate_file, "--verify"]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_verify_strict_mode(self, broken_file, capsys):
        assert main(["lint", broken_file, "--verify", "--strict"]) == 0
        assert "verify: OK" in capsys.readouterr().out

    def test_queries_file(self, gate_file, tmp_path, capsys):
        queries = tmp_path / "workload.sql"
        queries.write_text("# workload\nselect * from Nowhere\n")
        assert main(["lint", gate_file, "--queries", str(queries)]) == 2
        assert "REP502" in capsys.readouterr().out

    def test_missing_file_is_operational_error(self, tmp_path):
        assert main(["lint", str(tmp_path / "nope.ddl")]) == 1


class TestCheckJson:
    def test_check_emits_diagnostics_json(self, tmp_path, gate_file, capsys):
        from repro.ddl import load_schema
        from repro.engine import save

        db = Database("check-json")
        load_schema(GATE_SCHEMA, db.catalog)
        iface = db.create_object("GateInterface", Length=10, Width=5)
        iface.subclass("Pins").create(InOut="IN")
        path = tmp_path / "image.json"
        save(db, str(path))
        assert main(["check", gate_file, str(path), "--json"]) == 0
        out = capsys.readouterr().out
        payload, _ = json.JSONDecoder().raw_decode(out, out.index("{"))
        assert payload["schema"] == "repro.lint/1"
        assert payload["diagnostics"] == []


# ---------------------------------------------------------------------------
# verifier internals
# ---------------------------------------------------------------------------

class TestVerifyReport:
    def test_report_render_mentions_probes(self):
        report = verify_against_runtime(CORPUS["REP205"][0], strict=True)
        assert "probe(s)" in report.render()
        assert report.checks > 0

    def test_strict_mode_demands_specific_rules(self):
        # In strict mode the REP100 net is withheld, so a build failure
        # predicted only by the net would count as missed.  Every corpus
        # error fixture has a specific rule, so all pass; here we check
        # the net *does* rescue the default mode for an unpredicted
        # failure by synthesizing one: none exists in the corpus, so we
        # simply assert the two modes agree on the corpus.
        for code, (firing, _) in CORPUS.items():
            lax = verify_against_runtime(firing)
            assert lax.ok, f"{code} (default mode): {lax.render()}"

    def test_integrity_failures_count_as_runtime_failures(self):
        db = build_gate_database("verify-int")
        iface = db.create_object("GateInterface", Length=1, Width=1)
        iface._deleted = True  # corrupt
        assert any(v.code == "REP001" for v in check_integrity(db))
