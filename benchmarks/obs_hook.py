"""Observability hook for the benchmark suite.

Bench scripts that build an *observed* database can register its metrics
snapshot here; the conftest session hook writes the merged result to the
path given with ``--obs-json=PATH`` so runs capture span/metric summaries
(propagation fan-out, lock waits, cache hit rates) alongside wall-clock
timings, and ``benchmarks/report.py BENCH.json OBS.json`` folds them into
EXPERIMENTS.md::

    def test_something(benchmark):
        db = gate_database("bench", )
        db.enable_observability(tracing=False)
        ...
        benchmark(op)
        obs_hook.collect(db, label="something")
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.report import snapshot

#: Snapshots registered during this pytest session.
collected: List[Dict[str, Any]] = []


def collect(db, label: str) -> Dict[str, Any]:
    """Snapshot an observed database's registry under ``label``."""
    snap = snapshot(db, include_events=False)
    snap["label"] = label
    collected.append(snap)
    return snap


def merged() -> Dict[str, Any]:
    """All collected runs plus counter totals across them."""
    totals: Dict[str, int] = {}
    for snap in collected:
        for name, value in snap.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return {
        "schema": "repro.metrics/1",
        "runs": collected,
        "totals": {name: totals[name] for name in sorted(totals)},
    }


def reset() -> None:
    collected.clear()
