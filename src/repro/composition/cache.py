"""Materialising cache for inherited values — the ablation of DESIGN.md §6.

The library resolves inherited members by *live delegation* to the
transmitter: updates are O(1), reads pay one hop per hierarchy level.  The
obvious alternative is to materialise inherited values at the inheritor —
O(1) amortised reads, at the price of detecting when a materialised value
went stale.

Earlier revisions detected staleness through eight broad event-bus
subscriptions that eagerly chased every update down the inheritance graph.
:class:`InheritedValueCache` now validates entries with the **epoch
counters** introduced by :mod:`repro.core.resolution`: every entry stores
the global schema epoch, the inheritor's binding epoch (which moves on any
binding change *anywhere upstream* — bumps propagate down the inheritor
subtree at bind/unbind time) and the mutation epoch of the chain's holder.
A cached value is fresh exactly when those three integers still match —
an O(1) comparison with no event traffic, and invalidation happens
*lazily* at the next read that finds the entry stale.

Two narrow subscriptions remain for memory hygiene only (they evict keys
that can never be read again — the values' correctness does not depend on
them): ``object_deleted`` and ``inheritor_unbound``.

Invalidation granularity is per *holder object*, not per member: a write to
any attribute of the holder bumps its mutation epoch and stales every
member cached through it.  That is coarser than the old event-driven
precision but always safe, and re-materialising costs one delegation walk.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core import resolution as _resolution
from ..core.objects import DBObject
from ..core.surrogate import Surrogate
from ..obs.metrics import MetricsRegistry

__all__ = ["InheritedValueCache"]


class InheritedValueCache:
    """Per-database cache of resolved inherited member values.

    ``hits`` / ``misses`` / ``invalidations`` are served by a
    :class:`~repro.obs.metrics.MetricsRegistry` — the database's own when
    it is observed (so ``repro metrics`` reports them alongside
    ``reads.inherited``), else a private one.
    """

    def __init__(self, database):
        self.database = database
        #: (surrogate, member) -> (value, schema_epoch, obj, obj_binding_epoch,
        #:                         holder, holder_mutation_epoch)
        self._entries: Dict[
            Tuple[Surrogate, str], Tuple[Any, int, DBObject, int, DBObject, int]
        ] = {}
        obs = getattr(database, "obs", None)
        self._metrics: MetricsRegistry = (
            obs.metrics if obs is not None else MetricsRegistry()
        )
        bus = database.events
        self._subscriptions = [
            bus.subscribe("object_deleted", self._on_evict),
            bus.subscribe("inheritor_unbound", self._on_evict),
        ]

    # -- counters ----------------------------------------------------------------

    @property
    def hits(self) -> int:
        return self._metrics.counter("cache.hits").value

    @property
    def misses(self) -> int:
        return self._metrics.counter("cache.misses").value

    @property
    def invalidations(self) -> int:
        return self._metrics.counter("cache.invalidations").value

    # -- reads ------------------------------------------------------------------

    def get(self, obj: DBObject, member: str) -> Any:
        """Resolve ``member`` on ``obj``, caching inherited resolutions.

        Local members are passed through uncached (they are a dict lookup
        anyway); only values that cross at least one inheritance link are
        materialised.
        """
        if not obj.is_member_inherited(member):
            return obj.get_member(member)
        key = (obj.surrogate, member)
        entry = self._entries.get(key)
        if entry is not None:
            # O(1) freshness: schema epoch + the inheritor's binding epoch
            # (propagated bumps cover the whole upstream chain) + the
            # holder's mutation epoch (covers the value itself).
            if (
                entry[1] == _resolution._SCHEMA_EPOCH
                and entry[2]._binding_epoch == entry[3]
                and entry[4]._mutation_epoch == entry[5]
            ):
                self._metrics.counter("cache.hits").inc()
                return entry[0]
            # Lazy invalidation: staleness is counted when detected, not
            # when the underlying write happened.
            del self._entries[key]
            self._metrics.counter("cache.invalidations").inc()
        self._metrics.counter("cache.misses").inc()
        value = obj.get_member(member)
        # get_member memoises the resolved holder unless the resolution is
        # not epoch-trackable (a relationship participant shadows `member`
        # somewhere on the chain) — in that case, pass the value through
        # uncached.
        memo = obj._member_memo.get(member)
        if (
            memo is not None
            and memo[0] == _resolution._SCHEMA_EPOCH
            and memo[1] == obj._binding_epoch
        ):
            holder = memo[2]
            self._entries[key] = (
                value,
                memo[0],
                obj,
                memo[1],
                holder,
                holder._mutation_epoch,
            )
        return value

    def __len__(self) -> int:
        return len(self._entries)

    # -- eviction (memory hygiene only) -----------------------------------------

    def _on_evict(self, event) -> None:
        surrogate = event.subject.surrogate
        stale = [key for key in self._entries if key[0] == surrogate]
        for key in stale:
            del self._entries[key]
        if stale:
            self._metrics.counter("cache.invalidations").inc(len(stale))

    # -- lifecycle -------------------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()

    def detach(self) -> None:
        """Drop the eviction subscriptions.

        Unlike the event-driven design this does **not** freeze the cache:
        epoch validation is intrinsic to every read, so a detached cache
        still never serves stale values — it merely stops evicting entries
        for deleted/unbound objects.
        """
        for subscription in self._subscriptions:
            self.database.events.unsubscribe(subscription)
        self._subscriptions = []
