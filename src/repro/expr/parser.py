"""Recursive-descent parser for the constraint-expression language.

Grammar (EBNF, keywords case-insensitive)::

    constraints := constraint (';' constraint)* [';']
    constraint  := 'for' binders ':' constraint (';' constraint)*   (greedy)
                 | expression ['where' expression]
    binders     := '(' binder (',' binder)* ')' | binder
    binder      := IDENT 'in' path
    expression  := or_expr
    or_expr     := and_expr ('or' and_expr)*
    and_expr    := not_expr ('and' not_expr)*
    not_expr    := 'not' not_expr | comparison
    comparison  := additive [cmp_op additive]
    cmp_op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>=' | 'in' | 'not' 'in'
    additive    := multiplicative (('+' | '-') multiplicative)*
    multiplicative := unary (('*' | '/' | '%') unary)*
    unary       := '-' unary | postfix
    postfix     := primary ('.' IDENT)*
    primary     := NUMBER | STRING | 'true' | 'false'
                 | AGG '(' expression ['where' expression] ')'
                 | '#' IDENT 'in' path
                 | '(' expression ')' | IDENT

A trailing ``where`` on a constraint (the paper's
``count (Pins) = 2 where Pins.InOut = IN``) is attached to every aggregate
inside the constraint that does not already carry a filter.  A ``for``
constraint greedily takes all remaining constraints of its list as body,
matching the paper's §5 listing where binders of an outer ``for`` stay
visible in subsequent lines.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.interning import intern_name
from ..errors import ExprSyntaxError
from .ast import Aggregate, Binary, Literal, Name, Node, Path, Quantified, Unary, iter_aggregates
from .lexer import Token, tokenize

__all__ = ["parse_expression", "parse_constraints"]

_AGG_KEYWORDS = ("count", "sum", "min", "max", "avg", "exists")
_CMP_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def expect_op(self, text: str) -> Token:
        if not self.current.is_op(text):
            raise self._error(f"expected {text!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "IDENT":
            raise self._error("expected an identifier")
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == "EOF"

    def _error(self, message: str) -> ExprSyntaxError:
        token = self.current
        shown = token.text or "<end of input>"
        return ExprSyntaxError(
            f"{message}, found {shown!r} in {self.source!r}", position=token.position
        )

    # -- grammar ------------------------------------------------------------

    def constraints(self) -> List[Node]:
        items = [self.constraint()]
        while self.current.is_op(";"):
            self.advance()
            if self.at_end():
                break
            items.append(self.constraint())
        if not self.at_end():
            raise self._error("trailing input after constraint")
        return items

    def constraint(self) -> Node:
        if self.current.is_keyword("for"):
            return self._quantified()
        expression = self.expression()
        if self.current.is_keyword("where"):
            self.advance()
            condition = self.expression()
            self._attach_where(expression, condition)
        return expression

    def _quantified(self) -> Quantified:
        self.expect_keyword("for")
        binders = self._binders()
        self.expect_op(":")
        body = [self.constraint()]
        while self.current.is_op(";"):
            self.advance()
            if self.at_end():
                break
            body.append(self.constraint())
        return Quantified(binders, body)

    def _binders(self) -> List[Tuple[str, Node]]:
        if self.current.is_op("("):
            self.advance()
            binders = [self._binder()]
            while self.current.is_op(","):
                self.advance()
                binders.append(self._binder())
            self.expect_op(")")
            return binders
        return [self._binder()]

    def _binder(self) -> Tuple[str, Node]:
        name = self.expect_ident().text
        self.expect_keyword("in")
        return name, self._path()

    def _path(self) -> Node:
        base: Node = Name(intern_name(self.expect_ident().text))
        segments: List[str] = []
        while self.current.is_op("."):
            self.advance()
            segments.append(intern_name(self.expect_ident().text))
        return Path(base, segments) if segments else base

    def _attach_where(self, expression: Node, condition: Node) -> None:
        attached = False
        for aggregate in iter_aggregates(expression):
            if aggregate.where is None:
                aggregate.where = condition
                attached = True
        if not attached:
            raise self._error(
                "a trailing 'where' requires an aggregate to filter"
            )

    def expression(self) -> Node:
        return self._or_expr()

    def _or_expr(self) -> Node:
        node = self._and_expr()
        while self.current.is_keyword("or"):
            self.advance()
            node = Binary("or", node, self._and_expr())
        return node

    def _and_expr(self) -> Node:
        node = self._not_expr()
        while self.current.is_keyword("and"):
            self.advance()
            node = Binary("and", node, self._not_expr())
        return node

    def _not_expr(self) -> Node:
        if self.current.is_keyword("not"):
            self.advance()
            return Unary("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Node:
        node = self._additive()
        if self.current.is_op(*_CMP_OPS):
            op = self.advance().text
            if op == "<>":
                op = "!="
            return Binary(op, node, self._additive())
        if self.current.is_keyword("in"):
            self.advance()
            return Binary("in", node, self._additive())
        if self.current.is_keyword("not"):
            lookahead = self.tokens[self.pos + 1]
            if lookahead.is_keyword("in"):
                self.advance()
                self.advance()
                return Binary("not in", node, self._additive())
        return node

    def _additive(self) -> Node:
        node = self._multiplicative()
        while self.current.is_op("+", "-"):
            op = self.advance().text
            node = Binary(op, node, self._multiplicative())
        return node

    def _multiplicative(self) -> Node:
        node = self._unary()
        while self.current.is_op("*", "/", "%"):
            op = self.advance().text
            node = Binary(op, node, self._unary())
        return node

    def _unary(self) -> Node:
        if self.current.is_op("-"):
            self.advance()
            return Unary("-", self._unary())
        return self._postfix()

    def _postfix(self) -> Node:
        node = self._primary()
        segments: List[str] = []
        while self.current.is_op("."):
            self.advance()
            segments.append(intern_name(self.expect_ident().text))
        return Path(node, segments) if segments else node

    def _primary(self) -> Node:
        token = self.current
        if token.kind == "NUMBER":
            self.advance()
            return Literal(float(token.text) if "." in token.text else int(token.text))
        if token.kind == "STRING":
            self.advance()
            return Literal(token.text)
        if token.is_keyword("true"):
            self.advance()
            return Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return Literal(False)
        if token.is_keyword(*_AGG_KEYWORDS):
            return self._aggregate()
        if token.is_op("#"):
            return self._hash_count()
        if token.is_op("("):
            self.advance()
            node = self.expression()
            self.expect_op(")")
            return node
        if token.kind == "IDENT":
            self.advance()
            # Interned: member probes on plan/slot maps hit identity.
            return Name(intern_name(token.text))
        raise self._error("expected a value")

    def _aggregate(self) -> Aggregate:
        func = self.advance().text
        self.expect_op("(")
        binder: Optional[str] = None
        if (
            self.current.kind == "IDENT"
            and self.tokens[self.pos + 1].is_keyword("in")
        ):
            # `count(s in Bolt where s.D > 5)` — the binder form, the
            # parenthesised equivalent of the paper's `#s in Bolt`.
            binder = self.advance().text
            self.advance()  # 'in'
        arg = self.expression()
        where: Optional[Node] = None
        if self.current.is_keyword("where"):
            self.advance()
            where = self.expression()
        self.expect_op(")")
        return Aggregate(func, arg, where=where, binder=binder)

    def _hash_count(self) -> Aggregate:
        """``#s in Bolt`` — count of Bolt, with ``s`` as element binder."""
        self.expect_op("#")
        binder = self.expect_ident().text
        self.expect_keyword("in")
        path = self._path()
        return Aggregate("count", path, binder=binder)


def parse_expression(source: str) -> Node:
    """Parse a single expression (no ``;``, no ``for``)."""
    parser = _Parser(source)
    node = parser.constraint()
    if not parser.at_end():
        raise parser._error("trailing input after expression")
    return node


def parse_constraints(source: str) -> List[Node]:
    """Parse a ``;``-separated constraint list, as in a ``constraints:`` block."""
    stripped = source.strip()
    if not stripped:
        return []
    return _Parser(stripped).constraints()
