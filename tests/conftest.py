"""Shared fixtures: the paper's gate schema (§3–§4), built fresh per test.

Types are mutable (``inheritor-in`` declarations attach to them), so every
test gets its own copies.

Session-level switches (both off by default):

* ``HYPOTHESIS_SEED`` — registers and activates a derandomised hypothesis
  profile seeded from the value, so CI property runs are reproducible and
  a failing seed can be replayed locally
  (``HYPOTHESIS_SEED=20260808 pytest tests/``).
* ``REPRO_TSAN=1`` — enables the lockset race sanitizer for the whole
  session and fails it at exit if any candidate race was observed or the
  static lock-order analysis finds a cycle in the engine.
"""

import os
from types import SimpleNamespace

import pytest

_HYPOTHESIS_SEED = os.environ.get("HYPOTHESIS_SEED", "")
if _HYPOTHESIS_SEED:
    from hypothesis import settings as _hyp_settings

    _hyp_settings.register_profile(
        "repro-ci",
        derandomize=True,
        print_blob=True,
    )
    _hyp_settings.load_profile("repro-ci")


def pytest_sessionstart(session):
    from repro.obs import race

    if race.enabled_by_env():
        race.enable()


def pytest_sessionfinish(session, exitstatus):
    from repro.obs import race

    sanitizer = race.active()
    if sanitizer is None:
        return
    race.disable()
    reporter = session.config.pluginmanager.get_plugin("terminalreporter")
    lines = [sanitizer.render()]
    failed = bool(sanitizer.reports)
    from repro.analysis import analyze_lock_order

    lock_report = analyze_lock_order()
    if lock_report.cycles:
        failed = True
        lines.append(
            f"lock-order analysis: {len(lock_report.cycles)} cycle(s) "
            "in the engine"
        )
    if reporter is not None:
        reporter.write_sep("=", "race sanitizer (REPRO_TSAN)")
        for line in lines:
            reporter.write_line(line)
    if failed and session.exitstatus == 0:
        session.exitstatus = 1

from repro.core import (
    BOOLEAN,
    INTEGER,
    IO,
    POINT,
    EnumDomain,
    InheritanceRelationshipType,
    ListOf,
    MatrixOf,
    ObjectType,
    RelationshipType,
)


def build_gate_schema():
    """The schema of §3 and §4: pins, wires, gates, interfaces."""
    pin_type = ObjectType(
        "PinType",
        attributes={"InOut": IO, "PinLocation": POINT},
        doc="External or internal connection pin of a gate.",
    )

    wire_type = RelationshipType(
        "WireType",
        relates={"Pin1": pin_type, "Pin2": pin_type},
        attributes={"Corners": ListOf(POINT)},
        doc="A wire between two pins, with its routing geometry.",
    )

    elementary_gate = ObjectType(
        "ElementaryGate",
        attributes={
            "Length": INTEGER,
            "Width": INTEGER,
            "Function": EnumDomain("GateFunction", ["AND", "OR", "NOR", "NAND"]),
            "GatePosition": POINT,
        },
        subclasses={"Pins": pin_type},
        constraints=[
            "count (Pins) = 2 where Pins.InOut = IN",
            "count (Pins) = 1 where Pins.InOut = OUT",
        ],
        doc="A basic AND/OR/NAND/NOR gate with pins as subobjects.",
    )

    gate = ObjectType(
        "Gate",
        attributes={
            "Length": INTEGER,
            "Width": INTEGER,
            "Function": MatrixOf(BOOLEAN),
        },
        subclasses={"Pins": pin_type, "SubGates": elementary_gate},
        subrels={
            "Wires": (
                wire_type,
                "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and "
                "(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)",
            )
        },
        doc="Figure 1: gates constructed from elementary gates and wires.",
    )

    gate_interface = ObjectType(
        "GateInterface",
        attributes={"Length": INTEGER, "Width": INTEGER},
        subclasses={"Pins": pin_type},
        doc="§4.2: the external image of a gate.",
    )

    all_of_gate_interface = InheritanceRelationshipType(
        "AllOf_GateInterface",
        transmitter_type=gate_interface,
        inheriting=["Length", "Width", "Pins"],
        doc="Enables objects to inherit all data of GateInterface objects.",
    )

    gate_implementation = ObjectType(
        "GateImplementation",
        attributes={"Function": MatrixOf(BOOLEAN)},
        subclasses={"SubGates": elementary_gate},
        subrels={
            "Wires": (
                wire_type,
                "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and "
                "(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)",
            )
        },
        doc="§4.2: a realization of a gate interface.",
    )
    gate_implementation.declare_inheritor_in(all_of_gate_interface)

    return SimpleNamespace(
        pin_type=pin_type,
        wire_type=wire_type,
        elementary_gate=elementary_gate,
        gate=gate,
        gate_interface=gate_interface,
        all_of_gate_interface=all_of_gate_interface,
        gate_implementation=gate_implementation,
    )


@pytest.fixture
def gates():
    return build_gate_schema()


def build_gate_database(name="gates", record_events=False):
    """A Database whose catalog holds the gate schema, with stock classes."""
    from repro.engine import Database

    db = Database(name, record_events=record_events)
    schema = build_gate_schema()
    for type_ in (
        schema.pin_type,
        schema.wire_type,
        schema.elementary_gate,
        schema.gate,
        schema.gate_interface,
        schema.all_of_gate_interface,
        schema.gate_implementation,
    ):
        db.catalog.register(type_)
    db.create_class("Interfaces", schema.gate_interface)
    db.create_class("Implementations", schema.gate_implementation)
    db.create_class("Gates", schema.gate)
    db.schema = schema
    return db


@pytest.fixture
def gate_db():
    return build_gate_database(record_events=True)


def add_pins(owner, n_in=2, n_out=1, x0=0):
    """Populate an object's Pins subclass with n_in inputs and n_out outputs."""
    pins = []
    container = owner.subclass("Pins")
    for i in range(n_in):
        pins.append(
            container.create(InOut="IN", PinLocation={"X": x0, "Y": i})
        )
    for i in range(n_out):
        pins.append(
            container.create(InOut="OUT", PinLocation={"X": x0 + 10, "Y": i})
        )
    return pins
