"""Tests for the materialising inherited-value cache (repro.composition.cache)."""

import pytest

from repro.composition import add_component
from repro.composition.cache import InheritedValueCache
from repro.workloads import gate_database, make_implementation, make_interface


@pytest.fixture
def db():
    return gate_database("cache")


@pytest.fixture
def cache(db):
    return InheritedValueCache(db)


def make_pair(db):
    iface = make_interface(db, length=10)
    impl = make_implementation(db, iface)
    return iface, impl


class TestCacheCorrectness:
    def test_cached_value_matches_direct_resolution(self, db, cache):
        iface, impl = make_pair(db)
        assert cache.get(impl, "Length") == impl.get_member("Length") == 10

    def test_hit_after_miss(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        before_hits = cache.hits
        cache.get(impl, "Length")
        assert cache.hits == before_hits + 1

    def test_local_members_bypass_cache(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "TimeBehavior")
        assert len(cache) == 0

    def test_invalidation_on_transmitter_update(self, db, cache):
        iface, impl = make_pair(db)
        assert cache.get(impl, "Length") == 10
        iface.set_attribute("Length", 42)
        assert cache.get(impl, "Length") == 42

    def test_invalidation_counted_lazily_on_stale_read(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        before = cache.invalidations
        iface.set_attribute("Length", 99)
        # Epoch validation is lazy: nothing is counted until a read finds
        # the entry stale.
        assert cache.invalidations == before
        assert cache.get(impl, "Length") == 99
        assert cache.invalidations == before + 1

    def test_invalidation_on_subclass_change(self, db, cache):
        iface, impl = make_pair(db)
        assert len(cache.get(impl, "Pins")) == 3
        iface.subclass("Pins").create(InOut="IN")
        assert len(cache.get(impl, "Pins")) == 4

    def test_transitive_invalidation_down_a_chain(self, db, cache):
        top = db.create_object("GateInterface_I")
        top.subclass("Pins").create(InOut="IN")
        iface = db.create_object("GateInterface", transmitter=top, Length=1, Width=1)
        impl = db.create_object("GateImplementation", transmitter=iface)
        assert len(cache.get(impl, "Pins")) == 1
        assert len(cache.get(iface, "Pins")) == 1
        top.subclass("Pins").create(InOut="OUT")
        assert len(cache.get(iface, "Pins")) == 2
        assert len(cache.get(impl, "Pins")) == 2

    def test_unbind_invalidates(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        impl.inheritance_links[0].unbind()
        assert cache.get(impl, "Length") is None  # unbound: structure only

    def test_rebind_invalidates(self, db, cache):
        from repro.composition import rebind

        iface, impl = make_pair(db)
        other = make_interface(db, length=77)
        cache.get(impl, "Length")
        rebind(impl, other)
        assert cache.get(impl, "Length") == 77

    def test_deleted_objects_dropped(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        impl.delete()
        assert len(cache) == 0

    def test_component_slot_caching(self, db, cache):
        iface, impl = make_pair(db)
        component_if = make_interface(db, length=5)
        slot = add_component(impl, "SubGates", component_if, GateLocation=(0, 0))
        assert cache.get(slot, "Length") == 5
        component_if.set_attribute("Length", 6)
        assert cache.get(slot, "Length") == 6

    def test_detach_keeps_epoch_validation(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        cache.detach()
        iface.set_attribute("Length", 1000)
        # Staleness detection is intrinsic (epoch compares on every read),
        # not event-driven: even a detached cache never serves stale data.
        # The subscriptions only evict keys of dead objects.
        assert cache.get(impl, "Length") == 1000

    def test_at_most_two_subscriptions(self, db, cache):
        assert len(cache._subscriptions) <= 2

    def test_clear(self, db, cache):
        iface, impl = make_pair(db)
        cache.get(impl, "Length")
        cache.clear()
        assert len(cache) == 0


class TestCacheUnderRandomUpdates:
    def test_cache_always_agrees_with_delegation(self, db, cache):
        import random

        rng = random.Random(3)
        interfaces = [make_interface(db, length=i) for i in range(3)]
        impls = [
            make_implementation(db, rng.choice(interfaces)) for _ in range(6)
        ]
        members = ["Length", "Width"]
        for step in range(200):
            action = rng.randrange(3)
            if action == 0:
                iface = rng.choice(interfaces)
                iface.set_attribute(rng.choice(members), rng.randrange(1000))
            elif action == 1:
                impl = rng.choice(impls)
                member = rng.choice(members)
                assert cache.get(impl, member) == impl.get_member(member)
            else:
                iface = rng.choice(interfaces)
                member = rng.choice(members)
                assert cache.get(iface, member) == iface.get_member(member)
