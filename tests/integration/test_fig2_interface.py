"""E2 — Figure 2: GateInterface ↔ GateImplementation.

The relationship between an interface and its implementations is one
inheritance relationship: implementations inherit Length/Width/Pins *by
value*, the inherited data is read-only in the implementation, and
interface updates are transmitted to all implementations immediately.
"""

import pytest

from repro.consistency import AdaptationTracker
from repro.errors import InheritanceError
from repro.workloads import gate_database, make_implementation, make_interface


@pytest.fixture
def db():
    return gate_database("fig2")


class TestFigure2:
    def test_implementations_share_interface_image(self, db):
        iface = make_interface(db, length=40, width=20, n_in=2)
        impls = [make_implementation(db, iface) for _ in range(4)]
        for impl in impls:
            assert impl["Length"] == 40 and impl["Width"] == 20
            assert {p.surrogate for p in impl["Pins"]} == {
                p.surrogate for p in iface["Pins"]
            }

    def test_identity_of_values_enforced(self, db):
        # "the interface data must not be updated within a single
        # implementation in order to safeguard that all implementations
        # have the same interface"
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        with pytest.raises(InheritanceError):
            impl.set_attribute("Length", 1)
        with pytest.raises(InheritanceError):
            impl.subclass("Pins").create(InOut="IN")

    def test_interface_update_transmitted_to_all(self, db):
        iface = make_interface(db, length=40)
        impls = [make_implementation(db, iface) for _ in range(8)]
        iface.set_attribute("Length", 41)
        new_pin = iface.subclass("Pins").create(InOut="IN")
        for impl in impls:
            assert impl["Length"] == 41
            assert any(p.surrogate == new_pin.surrogate for p in impl["Pins"])

    def test_implementations_differ_in_own_data(self, db):
        iface = make_interface(db)
        fast = make_implementation(db, iface, time_behavior=1)
        slow = make_implementation(db, iface, time_behavior=9)
        assert fast["TimeBehavior"] == 1 and slow["TimeBehavior"] == 9

    def test_adaptation_notice_per_implementation(self, db):
        tracker = AdaptationTracker(db)
        iface = make_interface(db)
        impls = [make_implementation(db, iface) for _ in range(3)]
        iface.set_attribute("Width", 99)
        flagged = tracker.inheritors_needing_adaptation()
        assert {o.surrogate for o in flagged} == {i.surrogate for i in impls}

    def test_someof_gate_exposes_time_behavior(self, db):
        # §4.2: a composite needing TimeBehavior binds to the
        # implementation through SomeOf_Gate instead of the interface.
        iface = make_interface(db)
        impl = make_implementation(db, iface, time_behavior=7)
        someof = db.catalog.inheritance_type("SomeOf_Gate")
        from repro.core import ObjectType, bind, new_object

        slot_type = ObjectType("TimingSlot")
        slot_type.declare_inheritor_in(someof)
        slot = new_object(slot_type, database=db)
        bind(slot, impl, someof)
        assert slot["TimeBehavior"] == 7
        assert slot["Length"] == impl["Length"]  # passed through the impl
        from repro.errors import UnknownAttributeError

        with pytest.raises(UnknownAttributeError):
            slot.get_member("Function")  # not permeable
