"""Observability: tracing spans, metrics and event-bus telemetry.

The engine's central mechanism — value inheritance with live update
propagation — makes cost *emergent*: one ``attribute_updated`` can fan out
through interface hierarchies, composites and lock inheritance.  This
package measures that, with a disabled path cheap enough to leave the
instrumentation in the hot code:

* :class:`~repro.obs.tracing.Tracer` — nestable spans
  (``with tracer.span("expand"):``), a shared no-op when disabled;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms, exported as plain dicts / the stable
  ``repro.metrics/1`` JSON schema;
* :class:`~repro.obs.tap.EventTap` — one wildcard subscription on the
  event bus turning every event kind into counters (plus per-relationship-
  type propagation/binding counters and a post-mortem ring buffer);
* :class:`~repro.obs.provenance.AuditLog` — append-only causal audit log
  (bounded ring + optional JSONL sink) with per-mutation
  :class:`~repro.obs.provenance.PropagationCone` reconstruction and
  :func:`~repro.obs.provenance.explain_value` value provenance;
* :class:`~repro.obs.slowlog.SlowLog` — over-budget operations (query,
  propagation, expansion, txn) with their EXPLAIN plan / cone summary,
  riding the audit stream;
* :class:`~repro.obs.profiler.SamplingProfiler` — background-thread
  wall-clock frame sampler with collapsed-stack / flamegraph output and
  per-span attribution (``repro profile``);
* :class:`~repro.obs.recorder.FlightRecorder` — a pull-based ring of
  periodic registry samples turning lifetime counters into *rates*
  (``repro flight``, ``repro top``, the ``repro.flight/1`` schema);
* :mod:`~repro.obs.health` — declarative ok/degraded/critical rules
  over the recorder's series (``repro health``, ``repro.health/1``);
* :mod:`~repro.obs.bench` — the unified benchmark harness behind
  ``repro bench``: one timing discipline for every suite, versioned
  ``BENCH_*.json`` snapshots, noise-aware regression gating;
* :class:`~repro.obs.instruments.Observability` — the per-database bundle,
  attached via ``Database(observe=True)`` and reachable as ``db.obs``.

See ``docs/observability.md`` for usage and the JSON schemas
(``repro.metrics/1``, ``repro.audit/1``), and the ``repro metrics`` /
``repro audit`` / ``repro explain-value`` / ``--trace`` CLI surfaces in
:mod:`repro.cli`.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchCase,
    BenchSuite,
    CaseResult,
    Comparison,
    Runner,
    compare_snapshots,
    discover_suites,
    load_snapshot,
    make_snapshot,
    write_snapshot,
)
from .export import AUDIT_SCHEMA_VERSION, JsonlSink, audit_snapshot, render_audit_table
from .health import (
    HEALTH_SCHEMA_VERSION,
    HealthMonitor,
    HealthReport,
    HealthRule,
    RuleResult,
    default_rules,
    hit_rate_rule,
    monitor_of,
    percentile_rule,
    rate_rule,
)
from .instruments import Observability, maybe_span, observability_of
from .recorder import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    FlightSample,
    recorder_of,
    render_sample,
)
from .metrics import (
    DEFAULT_BUCKETS,
    FANOUT_BUCKETS,
    RESERVOIR_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import PROFILE_SCHEMA_VERSION, SamplingProfiler
from .slowlog import SLOWLOG_SCHEMA_VERSION, SlowLog, SlowOp
from .provenance import (
    AuditLog,
    AuditRecord,
    PropagationCone,
    ValueProvenance,
    explain_value,
)
from .race import RACE_SCHEMA_VERSION, RaceReport, RaceSanitizer
from .report import SCHEMA_VERSION, derived_stats, exercise, render_table, snapshot
from .tap import EventTap
from .tracing import NULL_SPAN, Span, Tracer, format_span_tree

__all__ = [
    "RACE_SCHEMA_VERSION",
    "RaceReport",
    "RaceSanitizer",
    "Observability",
    "observability_of",
    "maybe_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "FANOUT_BUCKETS",
    "EventTap",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "format_span_tree",
    "SCHEMA_VERSION",
    "snapshot",
    "render_table",
    "exercise",
    "derived_stats",
    "AuditLog",
    "AuditRecord",
    "PropagationCone",
    "ValueProvenance",
    "explain_value",
    "AUDIT_SCHEMA_VERSION",
    "JsonlSink",
    "audit_snapshot",
    "render_audit_table",
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchSuite",
    "CaseResult",
    "Comparison",
    "Runner",
    "compare_snapshots",
    "discover_suites",
    "load_snapshot",
    "make_snapshot",
    "write_snapshot",
    "PROFILE_SCHEMA_VERSION",
    "SamplingProfiler",
    "RESERVOIR_SIZE",
    "SLOWLOG_SCHEMA_VERSION",
    "SlowLog",
    "SlowOp",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "FlightSample",
    "recorder_of",
    "render_sample",
    "HEALTH_SCHEMA_VERSION",
    "HealthMonitor",
    "HealthReport",
    "HealthRule",
    "RuleResult",
    "default_rules",
    "hit_rate_rule",
    "monitor_of",
    "percentile_rule",
    "rate_rule",
]
