"""Schema builder: DDL AST → catalog types.

Declarations are built in source order, which matches the paper's listings
(every referenced type is declared before use).  Inline domains get derived
names (``<Type>.<Attribute>``); anonymous subclass types (§4.2 SubGates, §5
Girders/Plates, ScrewingType's Bolt/Nut) become object types named
``<Owner>.<Subclass>`` and are registered in the catalog as well.

Type references are resolved case-sensitively first, then case-insensitively
with a note — the paper writes ``Wiretype`` for ``WireType`` in one listing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..core.attributes import AttributeSpec
from ..core.domains import Domain, EnumDomain, ListOf, MatrixOf, RecordDomain, SetOf
from ..core.inheritance import InheritanceRelationshipType
from ..core.objtype import ObjectType, SubclassSpec, SubrelSpec, TypeBase
from ..core.reltype import ParticipantSpec, RelationshipType
from ..engine.catalog import Catalog
from ..errors import DDLSyntaxError, UnknownDomainError, UnknownTypeError
from .ast import (
    AnonymousTypeBody,
    AttributeDecl,
    ConstructorAst,
    Declaration,
    DomainAst,
    DomainDecl,
    DomainRef,
    EnumLiteral,
    InherRelTypeDecl,
    ObjTypeDecl,
    RecordLiteral,
    RelTypeDecl,
    Schema,
    SubclassDecl,
    SubrelDecl,
)
from .parser import parse_schema_source

__all__ = ["SchemaBuilder", "load_schema"]


class SchemaBuilder:
    """Materialises a parsed :class:`~repro.ddl.ast.Schema` into a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.notes: List[str] = []
        #: (inheritance type, inheritor type name) pairs whose inheritor
        #: restriction is a forward reference — resolved after all
        #: declarations are built (the paper's §5 listing needs this).
        self._pending_inheritors: List[tuple] = []

    # -- lookup helpers -----------------------------------------------------------

    def _lookup_type(self, name: str) -> TypeBase:
        if self.catalog.has_type(name):
            return self.catalog.type(name)
        lowered = name.lower()
        for candidate in self.catalog:
            if candidate.name.lower() == lowered:
                self.notes.append(
                    f"resolved type reference {name!r} to {candidate.name!r} "
                    f"(case-insensitive match)"
                )
                return candidate
        raise UnknownTypeError(f"unknown type {name!r} referenced by the schema")

    def _lookup_domain(self, name: str) -> Domain:
        if self.catalog.has_domain(name):
            return self.catalog.domain(name)
        for known, domain in self.catalog.domains().items():
            if known.lower() == name.lower():
                self.notes.append(
                    f"resolved domain reference {name!r} to {known!r} "
                    f"(case-insensitive match)"
                )
                return domain
        raise UnknownDomainError(f"unknown domain {name!r} referenced by the schema")

    # -- domains -------------------------------------------------------------------

    def build_domain(self, ast: DomainAst, name_hint: str) -> Domain:
        """Materialise a domain expression (inline domains get the hint name)."""
        if isinstance(ast, DomainRef):
            return self._lookup_domain(ast.name)
        if isinstance(ast, EnumLiteral):
            return EnumDomain(name_hint, list(ast.labels))
        if isinstance(ast, RecordLiteral):
            fields: Dict[str, Domain] = {}
            for names, domain_ast in ast.fields:
                field_domain = self.build_domain(domain_ast, f"{name_hint}.{names[0]}")
                for field_name in names:
                    fields[field_name] = field_domain
            return RecordDomain(name_hint, fields)
        if isinstance(ast, ConstructorAst):
            element = self.build_domain(ast.element, f"{name_hint}.element")
            if ast.constructor == "set-of":
                return SetOf(element)
            if ast.constructor == "list-of":
                return ListOf(element)
            return MatrixOf(element)
        raise DDLSyntaxError(f"cannot build domain from {ast!r}")

    # -- shared member building ---------------------------------------------------------

    def _build_attributes(
        self, decls: List[AttributeDecl], owner_name: str
    ) -> Dict[str, AttributeSpec]:
        attributes: Dict[str, AttributeSpec] = {}
        for decl in decls:
            domain = self.build_domain(decl.domain, f"{owner_name}.{decl.names[0]}")
            for name in decl.names:
                attributes[name] = AttributeSpec(name, domain)
        return attributes

    def _build_anonymous_type(
        self, owner_name: str, subclass_name: str, body: AnonymousTypeBody
    ) -> ObjectType:
        type_name = f"{owner_name}.{subclass_name}"
        anonymous = ObjectType(
            type_name,
            attributes=self._build_attributes(body.attributes, type_name),
            subclasses=self._build_subclasses(body.subclasses, type_name),
            constraints=[body.constraints] if body.constraints else None,
            doc=f"Anonymous element type of {owner_name}.{subclass_name}",
        )
        self.catalog.register(anonymous)
        for rel_name in body.inheritor_in:
            rel_type = self._lookup_type(rel_name)
            if not isinstance(rel_type, InheritanceRelationshipType):
                raise DDLSyntaxError(
                    f"{rel_name!r} in inheritor-in of {type_name!r} is not an "
                    f"inheritance relationship type"
                )
            anonymous.declare_inheritor_in(rel_type)
        return anonymous

    def _build_subclasses(
        self, decls: List[SubclassDecl], owner_name: str
    ) -> Dict[str, SubclassSpec]:
        subclasses: Dict[str, SubclassSpec] = {}
        for decl in decls:
            if decl.type_name is not None:
                element = self._lookup_type(decl.type_name)
                if not isinstance(element, ObjectType):
                    raise DDLSyntaxError(
                        f"subclass {decl.name!r} of {owner_name!r} references "
                        f"{decl.type_name!r}, which is not an object type"
                    )
            else:
                element = self._build_anonymous_type(owner_name, decl.name, decl.body)
            subclasses[decl.name] = SubclassSpec(decl.name, element)
        return subclasses

    def _build_subrels(
        self, decls: List[SubrelDecl], owner_name: str
    ) -> Dict[str, SubrelSpec]:
        subrels: Dict[str, SubrelSpec] = {}
        for decl in decls:
            rel_type = self._lookup_type(decl.rel_type_name)
            if not isinstance(rel_type, RelationshipType):
                raise DDLSyntaxError(
                    f"subrel {decl.name!r} of {owner_name!r} references "
                    f"{decl.rel_type_name!r}, which is not a relationship type"
                )
            subrels[decl.name] = SubrelSpec(
                decl.name, rel_type, decl.where_source or None
            )
        return subrels

    def _declare_inheritor_in(self, type_: TypeBase, rel_names: List[str]) -> None:
        for rel_name in rel_names:
            rel_type = self._lookup_type(rel_name)
            if not isinstance(rel_type, InheritanceRelationshipType):
                raise DDLSyntaxError(
                    f"{rel_name!r} in inheritor-in of {type_.name!r} is not an "
                    f"inheritance relationship type"
                )
            type_.declare_inheritor_in(rel_type)

    # -- declarations ---------------------------------------------------------------

    def build_declaration(self, decl: Declaration) -> Union[Domain, TypeBase]:
        if isinstance(decl, DomainDecl):
            domain = self.build_domain(decl.domain, decl.name)
            if self.catalog.has_domain(decl.name):
                existing = self.catalog.domain(decl.name)
                if existing == domain:
                    # The paper's listings re-declare the stock I/O and
                    # Point domains; identical redefinitions are harmless.
                    self.notes.append(
                        f"domain {decl.name!r} re-declared identically"
                    )
                    return existing
            return self.catalog.define_domain(decl.name, domain)
        if isinstance(decl, ObjTypeDecl):
            object_type = ObjectType(
                decl.name,
                attributes=self._build_attributes(decl.attributes, decl.name),
                subclasses=self._build_subclasses(decl.subclasses, decl.name),
                subrels=self._build_subrels(decl.subrels, decl.name),
                constraints=[decl.constraints] if decl.constraints else None,
            )
            self.catalog.register(object_type)
            self._declare_inheritor_in(object_type, decl.inheritor_in)
            return object_type
        if isinstance(decl, RelTypeDecl):
            participants: Dict[str, ParticipantSpec] = {}
            for group in decl.relates:
                type_ = (
                    self._lookup_type(group.type_name)
                    if group.type_name is not None
                    else None
                )
                for role in group.names:
                    participants[role] = ParticipantSpec(role, type_, many=group.many)
            rel_type = RelationshipType(
                decl.name,
                relates=participants,
                attributes=self._build_attributes(decl.attributes, decl.name),
                subclasses=self._build_subclasses(decl.subclasses, decl.name),
                subrels=self._build_subrels(decl.subrels, decl.name),
                constraints=[decl.constraints] if decl.constraints else None,
            )
            return self.catalog.register(rel_type)
        if isinstance(decl, InherRelTypeDecl):
            transmitter = self._lookup_type(decl.transmitter_type)
            inheritor: Optional[TypeBase] = None
            pending_name: Optional[str] = None
            if decl.inheritor_type is not None:
                try:
                    inheritor = self._lookup_type(decl.inheritor_type)
                except UnknownTypeError:
                    # Forward reference (§5: AllOf_GirderIf names Girder
                    # before Girder is declared) — resolve in finish().
                    pending_name = decl.inheritor_type
            inher_type = InheritanceRelationshipType(
                decl.name,
                transmitter_type=transmitter,
                inheriting=decl.inheriting,
                inheritor_type=inheritor,
                attributes=self._build_attributes(decl.attributes, decl.name),
                subclasses=self._build_subclasses(decl.subclasses, decl.name),
                constraints=[decl.constraints] if decl.constraints else None,
            )
            if pending_name is not None:
                self._pending_inheritors.append((inher_type, pending_name))
            return self.catalog.register(inher_type)
        raise DDLSyntaxError(f"unknown declaration {decl!r}")

    def build(self, schema: Schema) -> Catalog:
        self.notes.extend(schema.notes)
        for decl in schema.declarations:
            self.build_declaration(decl)
        self.finish()
        return self.catalog

    def finish(self) -> None:
        """Resolve forward-referenced inheritor restrictions."""
        for inher_type, name in self._pending_inheritors:
            resolved = self._lookup_type(name)
            inher_type.set_inheritor_type(resolved)
            self.notes.append(
                f"resolved forward inheritor reference {name!r} for "
                f"{inher_type.name!r}"
            )
        self._pending_inheritors.clear()


def load_schema(source: str, catalog: Optional[Catalog] = None) -> Catalog:
    """Parse DDL source and register everything in a catalog.

    Returns the (possibly fresh) catalog; builder/parser notes are attached
    as ``catalog.ddl_notes``.
    """
    catalog = catalog if catalog is not None else Catalog()
    schema = parse_schema_source(source)
    builder = SchemaBuilder(catalog)
    builder.build(schema)
    existing = getattr(catalog, "ddl_notes", [])
    catalog.ddl_notes = list(existing) + builder.notes
    return catalog
