"""The analyzer's schema IR.

Rules run over a :class:`SchemaModel` — a plain-data view of the type and
relationship graph that can be lowered from **either** input:

* :func:`model_from_ast` — a parsed :class:`~repro.ddl.ast.Schema`.  This
  is where most defects are representable at all: the builder rejects
  cycles, permeability holes, shadows and dangling references at build
  time, so linting the AST is the only way to report them with source
  locations *before* the failure.
* :func:`model_from_catalog` — a compiled
  :class:`~repro.engine.catalog.Catalog`, read through the compiled
  :mod:`~repro.core.resolution` plans (``plan_for``), for linting live
  databases and saved images.

Both lowerings produce the same shapes, so every rule has exactly one code
path.  The model is deliberately tolerant: unresolved references, cycles
and duplicates are *represented*, not rejected — reporting them is the
rules' job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..core import resolution
from ..core.constraints import ExprConstraint
from ..core.inheritance import InheritanceRelationshipType
from ..core.reltype import RelationshipType
from ..ddl import ast as ddl_ast
from ..engine.catalog import Catalog

__all__ = [
    "Ref",
    "MemberDecl",
    "ParticipantInfo",
    "TypeInfo",
    "SchemaModel",
    "model_from_ast",
    "model_from_catalog",
]

OBJECT = "object"
RELATIONSHIP = "relationship"
INHERITANCE = "inheritance"

#: Domain names every catalog starts with (mirrors engine/catalog.py).
BUILTIN_DOMAINS: FrozenSet[str] = frozenset(
    ["integer", "real", "string", "boolean", "char", "any", "object", "Point", "I/O"]
)

#: Labels of the builtin enum domains — visible to constraints even when
#: the schema text never declares the domain (the normalised paper DDL
#: references ``I/O`` without redeclaring it).
BUILTIN_ENUM_LABELS: FrozenSet[str] = frozenset(["IN", "OUT"])


@dataclass(frozen=True)
class Ref:
    """A by-name reference to another declaration, as written."""

    name: str
    line: Optional[int] = None
    context: str = ""


@dataclass
class MemberDecl:
    """One declared member of a type."""

    name: str
    kind: str  # 'attribute' | 'subclass' | 'subrel'
    line: Optional[int] = None
    #: Printable domain of an attribute (for diamond-conflict comparison).
    domain: str = ""
    #: Referenced element/relationship type name, as written (subclass/subrel).
    target: Optional[str] = None
    where_source: str = ""


@dataclass
class ParticipantInfo:
    """One role group of a relationship type's relates clause."""

    roles: Tuple[str, ...]
    type_name: Optional[str]
    many: bool = False
    line: Optional[int] = None


@dataclass
class TypeInfo:
    """One type declaration in the model."""

    name: str
    kind: str  # OBJECT | RELATIONSHIP | INHERITANCE
    index: int
    line: Optional[int] = None
    members: Dict[str, MemberDecl] = field(default_factory=dict)
    #: Members whose name re-declares an earlier one (first wins in dicts).
    duplicate_members: List[MemberDecl] = field(default_factory=list)
    inheritor_in: List[Ref] = field(default_factory=list)
    constraint_sources: List[str] = field(default_factory=list)
    constraints_line: Optional[int] = None
    end_name: str = ""
    participants: List[ParticipantInfo] = field(default_factory=list)
    transmitter: Optional[Ref] = None
    #: ``inheritor: object-of-type X`` restriction; None is plain ``object``.
    inheritor_restriction: Optional[Ref] = None
    inheriting: List[str] = field(default_factory=list)
    anonymous: bool = False

    def member_names(self) -> Set[str]:
        return set(self.members)


class SchemaModel:
    """The rule engine's input: types, domains, enum labels, references."""

    def __init__(self, source_path: Optional[str] = None) -> None:
        self.source_path = source_path
        self.types: Dict[str, TypeInfo] = {}
        #: Later declarations re-using an existing type name (REP105).
        self.redeclared_types: List[TypeInfo] = []
        self.domains: Set[str] = set(BUILTIN_DOMAINS)
        #: Domain declarations re-declared with a *different* definition.
        self.conflicting_domains: List[Tuple[str, Optional[int]]] = []
        self.enum_labels: Set[str] = set(BUILTIN_ENUM_LABELS)
        #: Type name → named-domain references its attributes make (AST only).
        self.domain_refs: Dict[str, List[Ref]] = {}

    # -- construction -----------------------------------------------------------

    def add_type(self, info: TypeInfo) -> None:
        if info.name in self.types:
            self.redeclared_types.append(info)
        else:
            self.types[info.name] = info

    # -- lookups ----------------------------------------------------------------

    def resolve(self, name: str) -> Optional[TypeInfo]:
        """Exact lookup, then the builder's case-insensitive fallback."""
        found = self.types.get(name)
        if found is not None:
            return found
        lowered = name.lower()
        for candidate in self.types.values():
            if candidate.name.lower() == lowered:
                return candidate
        return None

    def has_domain(self, name: str) -> bool:
        if name in self.domains:
            return True
        lowered = name.lower()
        return any(known.lower() == lowered for known in self.domains)

    # -- derived views ----------------------------------------------------------

    def transmitter_of(self, rel: TypeInfo) -> Optional[TypeInfo]:
        if rel.transmitter is None:
            return None
        return self.resolve(rel.transmitter.name)

    def inheritance_rels_of(self, info: TypeInfo) -> List[TypeInfo]:
        """The resolved inheritance relationships of ``info.inheritor_in``."""
        rels = []
        for ref in info.inheritor_in:
            rel = self.resolve(ref.name)
            if rel is not None and rel.kind == INHERITANCE:
                rels.append(rel)
        return rels

    def inheritance_edges(self) -> Iterator[Tuple[str, str, str]]:
        """(inheritor type, transmitter type, rel name) type-level edges.

        Covers both ``inheritor-in`` declarations and ``inheritor:
        object-of-type X`` restrictions (the builder registers the latter as
        an implicit inheritor-in on X).
        """
        seen: Set[Tuple[str, str, str]] = set()
        for info in self.types.values():
            for rel in self.inheritance_rels_of(info):
                transmitter = self.transmitter_of(rel)
                if transmitter is None:
                    continue
                edge = (info.name, transmitter.name, rel.name)
                if edge not in seen:
                    seen.add(edge)
                    yield edge
        for rel in self.types.values():
            if rel.kind != INHERITANCE or rel.inheritor_restriction is None:
                continue
            inheritor = self.resolve(rel.inheritor_restriction.name)
            transmitter = self.transmitter_of(rel)
            if inheritor is None or transmitter is None:
                continue
            edge = (inheritor.name, transmitter.name, rel.name)
            if edge not in seen:
                seen.add(edge)
                yield edge

    def composition_edges(self) -> Iterator[Tuple[str, str, str]]:
        """(owner type, element type, subclass name) containment edges."""
        for info in self.types.values():
            for member in info.members.values():
                if member.kind != "subclass" or member.target is None:
                    continue
                element = self.resolve(member.target)
                if element is not None:
                    yield info.name, element.name, member.name

    def effective_members(
        self, info: TypeInfo, _stack: Optional[FrozenSet[str]] = None
    ) -> Dict[str, MemberDecl]:
        """Own plus type-level inherited members, own overriding.

        Mirrors ``TypeBase.effective_attributes`` and friends, but tolerates
        the defects the engine rejects (cycles are cut by the visited stack,
        unresolved transmitters contribute nothing).
        """
        stack = _stack or frozenset()
        if info.name in stack:
            return {}
        merged: Dict[str, MemberDecl] = {}
        for rel in self.inheritance_rels_of(info):
            transmitter = self.transmitter_of(rel)
            if transmitter is None:
                continue
            upstream = self.effective_members(
                transmitter, stack | {info.name}
            )
            for name in rel.inheriting:
                found = upstream.get(name)
                if found is not None and name not in merged:
                    merged[name] = found
        merged.update(info.members)
        return merged

    def conforms(self, sub: TypeInfo, sup: TypeInfo) -> bool:
        """Substitutability on the model's transmitter-ancestry graph."""
        if sub is sup:
            return True
        visited: Set[str] = set()
        stack = [sub]
        while stack:
            current = stack.pop()
            if current.name == sup.name:
                return True
            if current.name in visited:
                continue
            visited.add(current.name)
            for rel in self.inheritance_rels_of(current):
                transmitter = self.transmitter_of(rel)
                if transmitter is not None:
                    stack.append(transmitter)
        return False

    def member_rels(self, info: TypeInfo) -> Dict[str, List[TypeInfo]]:
        """Member name → the inheritance rels it is permeable through, in
        ``inheritor-in`` declaration order (the diamond map)."""
        rels_for: Dict[str, List[TypeInfo]] = {}
        for rel in self.inheritance_rels_of(info):
            for name in rel.inheriting:
                rels_for.setdefault(name, []).append(rel)
        return rels_for


# ---------------------------------------------------------------------------
# lowering: DDL AST → model
# ---------------------------------------------------------------------------


def _domain_text(ast: ddl_ast.DomainAst) -> str:
    """A canonical printable form of a domain expression, for comparisons."""
    if isinstance(ast, ddl_ast.DomainRef):
        return ast.name
    if isinstance(ast, ddl_ast.EnumLiteral):
        return f"({', '.join(ast.labels)})"
    if isinstance(ast, ddl_ast.RecordLiteral):
        groups = "; ".join(
            f"{', '.join(names)}: {_domain_text(domain)}" for names, domain in ast.fields
        )
        return f"record({groups})"
    return f"{ast.constructor} {_domain_text(ast.element)}"


def _collect_domain_refs(
    ast: ddl_ast.DomainAst, line: Optional[int]
) -> Iterator[Ref]:
    """Every named-domain reference inside a domain expression."""
    if isinstance(ast, ddl_ast.DomainRef):
        yield Ref(ast.name, line, "domain reference")
    elif isinstance(ast, ddl_ast.RecordLiteral):
        for _, domain in ast.fields:
            yield from _collect_domain_refs(domain, line)
    elif isinstance(ast, ddl_ast.ConstructorAst):
        yield from _collect_domain_refs(ast.element, line)


def _collect_enum_labels(ast: ddl_ast.DomainAst, into: Set[str]) -> None:
    if isinstance(ast, ddl_ast.EnumLiteral):
        into.update(ast.labels)
    elif isinstance(ast, ddl_ast.RecordLiteral):
        for _, domain in ast.fields:
            _collect_enum_labels(domain, into)
    elif isinstance(ast, ddl_ast.ConstructorAst):
        _collect_enum_labels(ast.element, into)


class _AstLowering:
    def __init__(self, schema: ddl_ast.Schema, source_path: Optional[str]) -> None:
        self.schema = schema
        self.model = SchemaModel(source_path)
        #: Domain declarations seen so far: name → canonical text.
        self._domain_decls: Dict[str, str] = {}

    def lower(self) -> SchemaModel:
        for index, decl in enumerate(self.schema.declarations):
            if isinstance(decl, ddl_ast.DomainDecl):
                self._lower_domain(decl)
            elif isinstance(decl, ddl_ast.ObjTypeDecl):
                self._lower_obj_type(decl, index)
            elif isinstance(decl, ddl_ast.RelTypeDecl):
                self._lower_rel_type(decl, index)
            elif isinstance(decl, ddl_ast.InherRelTypeDecl):
                self._lower_inher_type(decl, index)
        return self.model

    # -- pieces -----------------------------------------------------------------

    def _lower_domain(self, decl: ddl_ast.DomainDecl) -> None:
        text = _domain_text(decl.domain)
        previous = self._domain_decls.get(decl.name)
        if previous is not None and previous != text:
            self.model.conflicting_domains.append((decl.name, decl.line))
        elif decl.name not in BUILTIN_DOMAINS:
            self._domain_decls[decl.name] = text
        self.model.domains.add(decl.name)
        _collect_enum_labels(decl.domain, self.model.enum_labels)

    def _note_domain_refs(self, owner: str, ast: ddl_ast.DomainAst,
                          line: Optional[int]) -> None:
        self.model.domain_refs.setdefault(owner, []).extend(
            _collect_domain_refs(ast, line)
        )
        _collect_enum_labels(ast, self.model.enum_labels)

    def _add_member(self, info: TypeInfo, member: MemberDecl) -> None:
        if member.name in info.members:
            info.duplicate_members.append(member)
        else:
            info.members[member.name] = member

    def _lower_members(
        self,
        info: TypeInfo,
        attributes: List[ddl_ast.AttributeDecl],
        subclasses: List[ddl_ast.SubclassDecl],
        subrels: List[ddl_ast.SubrelDecl],
        index: int,
    ) -> None:
        for group in attributes:
            self._note_domain_refs(info.name, group.domain, group.line)
            for name in group.names:
                self._add_member(
                    info,
                    MemberDecl(name, "attribute", group.line,
                               domain=_domain_text(group.domain)),
                )
        for sub in subclasses:
            target = sub.type_name
            if target is None and sub.body is not None:
                target = f"{info.name}.{sub.name}"
                self._lower_anonymous(info.name, sub, index)
            self._add_member(
                info, MemberDecl(sub.name, "subclass", sub.line, target=target)
            )
        for subrel in subrels:
            self._add_member(
                info,
                MemberDecl(subrel.name, "subrel", subrel.line,
                           target=subrel.rel_type_name,
                           where_source=subrel.where_source),
            )

    def _lower_anonymous(self, owner: str, sub: ddl_ast.SubclassDecl,
                         index: int) -> None:
        body = sub.body
        assert body is not None
        info = TypeInfo(
            name=f"{owner}.{sub.name}",
            kind=OBJECT,
            index=index,
            line=sub.line,
            anonymous=True,
        )
        info.inheritor_in = [
            Ref(name, sub.line, f"inheritor-in of {info.name}")
            for name in body.inheritor_in
        ]
        if body.constraints:
            info.constraint_sources.append(body.constraints)
            info.constraints_line = sub.line
        self._lower_members(info, body.attributes, body.subclasses, [], index)
        self.model.add_type(info)

    def _lower_obj_type(self, decl: ddl_ast.ObjTypeDecl, index: int) -> None:
        info = TypeInfo(decl.name, OBJECT, index, decl.line,
                        end_name=decl.end_name)
        info.inheritor_in = [
            Ref(name, decl.line, f"inheritor-in of {decl.name}")
            for name in decl.inheritor_in
        ]
        if decl.constraints:
            info.constraint_sources.append(decl.constraints)
            info.constraints_line = decl.line
        self._lower_members(info, decl.attributes, decl.subclasses,
                            decl.subrels, index)
        self.model.add_type(info)

    def _lower_rel_type(self, decl: ddl_ast.RelTypeDecl, index: int) -> None:
        info = TypeInfo(decl.name, RELATIONSHIP, index, decl.line,
                        end_name=decl.end_name)
        info.participants = [
            ParticipantInfo(group.names, group.type_name, group.many, group.line)
            for group in decl.relates
        ]
        if decl.constraints:
            info.constraint_sources.append(decl.constraints)
            info.constraints_line = decl.line
        self._lower_members(info, decl.attributes, decl.subclasses,
                            decl.subrels, index)
        self.model.add_type(info)

    def _lower_inher_type(self, decl: ddl_ast.InherRelTypeDecl, index: int) -> None:
        info = TypeInfo(decl.name, INHERITANCE, index, decl.line,
                        end_name=decl.end_name)
        if decl.transmitter_type:
            info.transmitter = Ref(decl.transmitter_type, decl.line,
                                   f"transmitter of {decl.name}")
        if decl.inheritor_type is not None:
            info.inheritor_restriction = Ref(
                decl.inheritor_type, decl.line,
                f"inheritor restriction of {decl.name}")
        info.inheriting = list(decl.inheriting)
        if decl.constraints:
            info.constraint_sources.append(decl.constraints)
            info.constraints_line = decl.line
        self._lower_members(info, decl.attributes, decl.subclasses, [], index)
        self.model.add_type(info)


def model_from_ast(
    schema: ddl_ast.Schema, source_path: Optional[str] = None
) -> SchemaModel:
    """Lower a parsed DDL schema into the analyzer's model."""
    return _AstLowering(schema, source_path).lower()


# ---------------------------------------------------------------------------
# lowering: compiled catalog → model
# ---------------------------------------------------------------------------


def _kind_of(type_) -> str:
    if isinstance(type_, InheritanceRelationshipType):
        return INHERITANCE
    if isinstance(type_, RelationshipType):
        return RELATIONSHIP
    return OBJECT


def model_from_catalog(catalog: Catalog) -> SchemaModel:
    """Lower a compiled catalog, reading member tables from the compiled
    resolution plans (``plan_for``) so the lint sees exactly what the
    engine dispatches on."""
    model = SchemaModel()
    model.domains.update(catalog.domains())
    for domain in catalog.domains().values():
        labels = getattr(domain, "labels", None)
        if labels:
            model.enum_labels.update(labels)
    for index, type_ in enumerate(catalog):
        kind = _kind_of(type_)
        info = TypeInfo(type_.name, kind, index,
                        anonymous="." in type_.name)
        plan = resolution.plan_for(type_)
        for name, spec in type_.attributes.items():
            entry = plan.entries.get(name)
            domain = getattr(
                (entry.spec if entry is not None and entry.spec is not None
                 else spec), "domain", None)
            info.members[name] = MemberDecl(
                name, "attribute",
                domain=getattr(domain, "name", "") or "",
            )
        for name, sub in type_.subclass_specs.items():
            info.members[name] = MemberDecl(
                name, "subclass", target=sub.element_type.name)
        for name, subrel in type_.subrel_specs.items():
            info.members[name] = MemberDecl(
                name, "subrel", target=subrel.rel_type.name,
                where_source=subrel.where_source)
        info.inheritor_in = [
            Ref(rel.name, None, f"inheritor-in of {type_.name}")
            for rel in type_.inheritor_in
        ]
        info.constraint_sources = [
            constraint.source
            for constraint in type_.constraints
            if isinstance(constraint, ExprConstraint)
        ]
        if isinstance(type_, InheritanceRelationshipType):
            info.transmitter = Ref(type_.transmitter_type.name, None,
                                   f"transmitter of {type_.name}")
            if type_.inheritor_type is not None:
                info.inheritor_restriction = Ref(
                    type_.inheritor_type.name, None,
                    f"inheritor restriction of {type_.name}")
            info.inheriting = list(type_.inheriting)
        elif isinstance(type_, RelationshipType):
            info.participants = [
                ParticipantInfo(
                    (spec.role,),
                    spec.object_type.name if spec.object_type is not None else None,
                    spec.many,
                )
                for spec in type_.participants.values()
            ]
        model.add_type(info)
    return model
