#!/usr/bin/env python3
"""Team design: workspaces, parallel alternatives, merge, group locks.

Two designers work on the same cell library:

1. both check out working copies of a released interface;
2. both check in — the second checkin is flagged as parallel work;
3. the alternatives are merged three-way, with one conflict to resolve;
4. meanwhile their transactions run in a cooperative group, sharing locks
   against outsiders.

Run:  python examples/team_design.py
"""

from repro.errors import LockConflictError
from repro.txn import TransactionGroup, TransactionManager
from repro.versions import (
    StateGuard,
    VersionGraph,
    Workspace,
    merge_versions,
)
from repro.workloads import gate_database, make_interface


def main() -> None:
    db = gate_database("team")
    guard = StateGuard(db)
    tm = TransactionManager(db)

    # -- the shared design object ------------------------------------------------
    cell_v1 = make_interface(db, length=20, width=10)
    graph = VersionGraph(design_object=cell_v1, guard=guard)
    graph.add_version(cell_v1)
    graph.release(cell_v1)
    print(f"v1 released: {cell_v1['Length']}x{cell_v1['Width']}, "
          f"{len(cell_v1['Pins'])} pins")

    # -- two designers, two workspaces ---------------------------------------------
    alice_ws = Workspace(db, user="alice")
    bob_ws = Workspace(db, user="bob")
    alice_copy = alice_ws.checkout(graph, cell_v1)
    bob_copy = bob_ws.checkout(graph, cell_v1)

    alice_copy.set_attribute("Length", 18)      # alice shrinks the length
    bob_copy.set_attribute("Width", 8)          # bob shrinks the width
    bob_copy.set_attribute("Length", 16)        # ... and also the length!

    alice_version = alice_ws.checkin(alice_copy).version
    bob_result = bob_ws.checkin(bob_copy)
    print(f"alice checked in Length={alice_version['Length']}")
    print(f"bob checked in Length={bob_result.version['Length']}, "
          f"parallel={bob_result.parallel}")

    # -- three-way merge -------------------------------------------------------------
    result = merge_versions(graph, cell_v1, alice_version, bob_result.version)
    print(f"merge applied {len(result.applied_from_right)} change(s) from bob, "
          f"{len(result.conflicts)} conflict(s):")
    for conflict in result.conflicts:
        print(f"  {conflict}")
    # Resolve the Length conflict by taking the smaller value.
    merged = result.merged
    merged.set_attribute("Length", min(c.right for c in result.conflicts))
    print(f"resolved: merged version is "
          f"{merged['Length']}x{merged['Width']}")
    print(f"merge parents: base={graph.base_of(merged)['Length']}, "
          f"other={[v['Length'] for v in graph.merge_parents_of(merged)]}")

    # -- cooperative locking around the merge -------------------------------------------
    team = TransactionGroup(tm, "cell-team")
    alice_txn = team.begin(user="alice")
    bob_txn = team.begin(user="bob")
    alice_txn.write(merged)
    bob_txn.read(merged)  # same group: no conflict
    outsider = tm.begin(user="eve")
    try:
        outsider.read(merged)
    except LockConflictError:
        print("outsider blocked while the team holds the merged version")
    outsider.abort()
    alice_txn.commit()
    bob_txn.commit()
    team.end()
    graph.release(merged)
    print(f"released: graph now has {len(graph)} versions, "
          f"{len(graph.leaves())} leaf/leaves")
    print("done.")


if __name__ == "__main__":
    main()
