#!/usr/bin/env python3
"""Schemas from the paper's own DDL, plus persistence.

Shows that the published listings are executable: parse a custom schema in
the paper's syntax, populate it, save the database image to JSON, and load
it back into a fresh database with identical inheritance behaviour.

Run:  python examples/schema_from_ddl.py
"""

import os
import tempfile

from repro import Database
from repro.ddl import load_schema
from repro.engine import load, save

SCHEMA = """
domain Material = (aluminium, titanium);

obj-type RibType =
    attributes:
        Station: integer;
end RibType;

obj-type WingProfile =
    attributes:
        Span, Chord: integer;
    types-of-subclasses:
        Ribs: RibType;
    constraints:
        Span < 40 * Chord;
end WingProfile;

inher-rel-type AllOf_WingProfile =
    transmitter: object-of-type WingProfile;
    inheritor: object;
    inheriting: Span, Chord, Ribs;
end AllOf_WingProfile;

obj-type Wing =
    inheritor-in: AllOf_WingProfile;
    attributes:
        Material: Material;
end Wing;
"""


def build_schema(db: Database) -> None:
    load_schema(SCHEMA, db.catalog)
    notes = getattr(db.catalog, "ddl_notes", [])
    print(f"schema loaded: {len(db.catalog)} types, {len(notes)} parser notes")


def main() -> None:
    db = Database("aircraft")
    build_schema(db)

    profile = db.create_object("WingProfile", Span=300, Chord=20)
    for station in (0, 100, 200, 300):
        profile.subclass("Ribs").create(Station=station)
    profile.check_constraints()

    wing_left = db.create_object("Wing", transmitter=profile, Material="titanium")
    wing_right = db.create_object("Wing", transmitter=profile, Material="aluminium")
    print(f"wings inherit Span={wing_left['Span']}, "
          f"{len(wing_right['Ribs'])} ribs each; materials differ: "
          f"{wing_left['Material']} / {wing_right['Material']}")

    # Persistence round-trip: schema is code, instances are data.
    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        save(db, path)
        print(f"saved image: {os.path.getsize(path)} bytes")

        fresh = Database("aircraft")
        build_schema(fresh)
        load(path, fresh)
        profile2 = fresh.get(profile.surrogate)
        wing2 = fresh.get(wing_left.surrogate)
        profile2.set_attribute("Span", 310)
        assert wing2["Span"] == 310  # inheritance live after reload
        print(f"reload ok: {fresh.count()} objects, value inheritance intact")
    finally:
        os.unlink(path)
    print("done.")


if __name__ == "__main__":
    main()
