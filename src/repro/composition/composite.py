"""Composite objects: components as inheriting subobjects (§4.2, Figure 3/4).

A *component relationship* is modelled exactly as the paper prescribes: the
component is represented inside the composite by a **subobject** that is the
inheritor in an inheritance relationship whose transmitter is the component
(usually the component's interface).  The subobject adds local data such as
placement.

Helpers here cover building composites (:func:`add_component`), inspecting
them (:func:`components_of`, :func:`visible_image`) and the §6 *expansion*
of a composite object — the materialised view with all component data, which
the lock manager's expansion locking also traverses.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..core import resolution as _resolution
from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import DBObject
from ..errors import InheritanceError, UnknownAttributeError

__all__ = [
    "add_component",
    "components_of",
    "component_subobjects",
    "visible_image",
    "Expansion",
    "expand",
]


def add_component(
    composite: DBObject,
    subclass_name: str,
    component: DBObject,
    rel_type: Optional[InheritanceRelationshipType] = None,
    **own_attrs: Any,
) -> DBObject:
    """Incorporate ``component`` into ``composite``.

    Creates a subobject in ``subclass_name`` bound to ``component`` through
    ``rel_type`` (or the element type's single declared inheritance
    relationship), with ``own_attrs`` as the subobject's local data
    (placement etc.).  Returns the component subobject.
    """
    container = composite.subclass(subclass_name)
    element_type = container.element_type
    if rel_type is None:
        declared = element_type.inheritor_in
        if len(declared) != 1:
            raise InheritanceError(
                f"element type {element_type.name!r} declares {len(declared)} "
                f"inheritance relationships; pass rel_type explicitly"
            )
        rel_type = declared[0]
    return container.create(transmitter=component, via=rel_type, **own_attrs)


def component_subobjects(composite: DBObject) -> List[DBObject]:
    """Subobjects of ``composite`` that are bound inheritors (components)."""
    found = []
    for name in composite.subclass_names():
        for member in composite.subclass(name):
            if member.inheritance_links:
                found.append(member)
    return found


def components_of(composite: DBObject) -> List[Tuple[DBObject, DBObject]]:
    """(subobject, component) pairs for every bound component subobject."""
    return [
        (subobject, subobject.inheritance_links[0].transmitter)
        for subobject in component_subobjects(composite)
    ]


def visible_image(obj: DBObject) -> Dict[str, Any]:
    """Every member visible on ``obj`` — local *and* inherited — by name.

    Attribute members map to their values, subclasses/subrels to member
    lists.  This is "the component's data visible in the composite object"
    made explicit.
    """
    image: Dict[str, Any] = {}
    for name in obj.visible_member_names():
        try:
            image[name] = obj.get_member(name)
        except UnknownAttributeError:  # dynamic types: unset names
            continue
    return image


class Expansion:
    """The materialised view of a composite object (§6).

    ``objects`` lists every object the expansion touches — the composite,
    its subobjects, and transitively the transmitters whose data is visible
    — which is exactly the set expansion locking must read-lock.
    """

    def __init__(self, root: DBObject, tree: Dict[str, Any], objects: List[DBObject]):
        self.root = root
        self.tree = tree
        self.objects = objects

    def __len__(self) -> int:
        return len(self.objects)

    def __contains__(self, obj: object) -> bool:
        return isinstance(obj, DBObject) and any(
            o.surrogate == obj.surrogate for o in self.objects
        )

    def __repr__(self) -> str:
        return f"<Expansion of {self.root!r} objects={len(self.objects)}>"


def _realisation_of(component: DBObject) -> Optional[DBObject]:
    """The implementation whose structure realises an interface component.

    Mirrors the configuration traversal: the first top-level inheritor of
    the component that itself has component subobjects.  None when the
    component is a leaf (nothing deeper to materialise).
    """
    for link in component.inheritor_links:
        implementation = link.inheritor
        if implementation.parent is None and component_subobjects(implementation):
            return implementation
    return None


def expand(composite: DBObject, depth: Optional[int] = None) -> Expansion:
    """Expand a composite object: materialise components recursively (§6).

    ``depth`` limits how many component levels are followed (``None`` = all
    levels).  Components that are interfaces are expanded *through their
    realisation* — the implementation that carries the next level of
    components — so a whole component hierarchy materialises, exactly the
    structure §6's expansion locking must cover.

    The expansion tree has the shape::

        {"object": obj,
         "attributes": {...local and inherited attribute values...},
         "subobjects": {subclass: [subtree, ...]},
         "component": subtree-of-the-transmitter-or-None,
         "realisation": subtree-of-the-realising-implementation-or-None,
         "ref": True}             # only on re-visits of a shared object

    Shared objects (a component used by several slots) are expanded once;
    later occurrences are reference nodes.
    """
    obs = getattr(composite.database, "obs", None)
    seen: Dict[Any, bool] = {}
    objects: List[DBObject] = []

    def visit(obj: DBObject, remaining: Optional[int]) -> Dict[str, Any]:
        if obj.surrogate in seen:
            return {"object": obj, "ref": True}
        seen[obj.surrogate] = True
        objects.append(obj)
        attributes = {
            name: obj.get_member(name)
            for name in _resolution.plan_for(obj.object_type).attribute_names
        }
        subobjects: Dict[str, List[Dict[str, Any]]] = {}
        for name in obj.subclass_names():
            if obj.is_member_inherited(name):
                continue  # visible through the component link below
            subobjects[name] = [
                visit(member, remaining) for member in obj.subclass(name)
            ]
        component_tree = None
        realisation_tree = None
        links = obj.inheritance_links
        if links and (remaining is None or remaining > 0):
            next_remaining = None if remaining is None else remaining - 1
            component = links[0].transmitter
            component_tree = visit(component, next_remaining)
            realisation = _realisation_of(component)
            if realisation is not None:
                realisation_tree = visit(realisation, next_remaining)
        return {
            "object": obj,
            "attributes": attributes,
            "subobjects": subobjects,
            "component": component_tree,
            "realisation": realisation_tree,
        }

    if obs is None:
        tree = visit(composite, depth)
    else:
        slowlog = obs.slowlog
        started = perf_counter() if slowlog is not None else 0.0
        with obs.tracer.span(
            "composition.expand", root=str(composite.surrogate), depth=depth
        ) as span:
            audit = obs.audit
            if audit is None:
                tree = visit(composite, depth)
            else:
                # A causal frame: a re-expansion triggered from inside an
                # event handler links to the mutation that caused it.
                with audit.operation(
                    "composition.expand", composite, depth=depth
                ) as record:
                    tree = visit(composite, depth)
                    record.detail["objects"] = len(objects)
            span.set(objects=len(objects))
        obs.metrics.counter("composition.expansions").inc()
        obs.metrics.histogram("composition.expansion_size").observe(len(objects))
        if slowlog is not None:
            duration = perf_counter() - started
            if slowlog.exceeded("expansion", duration):
                slowlog.note(
                    "expansion",
                    duration,
                    subject=composite,
                    depth=depth,
                    objects=len(objects),
                )
    return Expansion(composite, tree, objects)
