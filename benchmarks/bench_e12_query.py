"""E12 — ablation: query-language execution scale.

Queries over growing extents: where-filtering and projection are linear in
the candidate count, ordering adds the sort, aggregates in the where pay
per-object collection scans (compare `count(Pins)` vs. plain attribute
predicates).
"""

import pytest

from repro.query import parse_query
from repro.workloads import gate_database, make_interface

EXTENT_SIZES = [10, 100, 400]


def library(n):
    db = gate_database("e12")
    db.create_class("Cells", "GateInterface")
    for i in range(n):
        iface = make_interface(db, length=(i * 7) % 100, width=(i * 3) % 20)
        db.add_to_class(iface, "Cells")
    return db


class TestQueryScale:
    @pytest.mark.parametrize("n", EXTENT_SIZES)
    def test_attribute_filter(self, benchmark, n):
        db = library(n)
        result = benchmark(db.query, "select Length from Cells where Length > 50")
        assert len(result) == sum(1 for i in range(n) if (i * 7) % 100 > 50)

    @pytest.mark.parametrize("n", EXTENT_SIZES)
    def test_aggregate_filter(self, benchmark, n):
        db = library(n)
        result = benchmark(db.query, "select * from Cells where count(Pins) = 3")
        assert len(result) == n

    @pytest.mark.parametrize("n", EXTENT_SIZES)
    def test_order_by_with_limit(self, benchmark, n):
        db = library(n)
        result = benchmark(
            db.query, "select Length from Cells order by Length desc limit 5"
        )
        assert len(result) == min(5, n)

    def test_parse_cost(self, benchmark):
        benchmark(
            parse_query,
            "select distinct Length, Length * Width from Cells "
            "where count(Pins) = 3 and Length > 10 order by Width desc limit 7",
        )


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n = 100 if suite.quick else 400

    @suite.case(f"attribute_filter[{n}]")
    def filter_case():
        db = library(n)
        return lambda: db.query("select Length from Cells where Length > 50")

    @suite.case(f"aggregate_filter[{n}]")
    def aggregate_case():
        db = library(n)
        return lambda: db.query("select * from Cells where count(Pins) = 3")

    @suite.case(f"order_by_limit[{n}]")
    def order_case():
        db = library(n)
        return lambda: db.query(
            "select Length from Cells order by Length desc limit 5"
        )

    @suite.case("parse")
    def parse_case():
        text = (
            "select distinct Length, Length * Width from Cells "
            "where count(Pins) = 3 and Length > 10 order by Width desc limit 7"
        )
        return lambda: parse_query(text)
