"""Materialising cache for inherited values — the ablation of DESIGN.md §6.

The library resolves inherited members by *live delegation* to the
transmitter: updates are O(1), reads pay one hop per hierarchy level.  The
obvious alternative is to materialise inherited values at the inheritor and
invalidate on transmitter updates — O(1) amortised reads, update cost
proportional to the number of (transitive) inheritors touched.

:class:`InheritedValueCache` implements that alternative on top of the
event bus, so benchmark E7 can measure the trade-off instead of asserting
it.  The cache is *correct by invalidation*: every event that can change an
inherited member's value (attribute updates, subclass content changes,
binding changes) drops exactly the affected entries, transitively down the
inheritance graph.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..core.inheritance import iter_propagation
from ..core.objects import DBObject
from ..core.surrogate import Surrogate

__all__ = ["InheritedValueCache"]

_SENTINEL = object()


class InheritedValueCache:
    """Per-database cache of resolved inherited member values."""

    def __init__(self, database):
        self.database = database
        self._entries: Dict[Tuple[Surrogate, str], Any] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        bus = database.events
        self._subscriptions = [
            bus.subscribe("attribute_updated", self._on_member_changed),
            bus.subscribe("subobject_added", self._on_subclass_changed),
            bus.subscribe("subobject_removed", self._on_subclass_changed),
            bus.subscribe("relationship_created", self._on_subclass_changed),
            bus.subscribe("relationship_removed", self._on_subclass_changed),
            bus.subscribe("inheritor_bound", self._on_binding_changed),
            bus.subscribe("inheritor_unbound", self._on_binding_changed),
            bus.subscribe("object_deleted", self._on_deleted),
        ]

    # -- reads ------------------------------------------------------------------

    def get(self, obj: DBObject, member: str) -> Any:
        """Resolve ``member`` on ``obj``, caching inherited resolutions.

        Local members are passed through uncached (they are a dict lookup
        anyway); only values that cross at least one inheritance link are
        materialised.
        """
        if not obj.is_member_inherited(member):
            return obj.get_member(member)
        obs = getattr(self.database, "obs", None)
        key = (obj.surrogate, member)
        cached = self._entries.get(key, _SENTINEL)
        if cached is not _SENTINEL:
            self.hits += 1
            if obs is not None:
                obs.metrics.counter("cache.hits").inc()
            return cached
        self.misses += 1
        if obs is not None:
            obs.metrics.counter("cache.misses").inc()
        value = obj.get_member(member)
        self._entries[key] = value
        return value

    def __len__(self) -> int:
        return len(self._entries)

    # -- invalidation --------------------------------------------------------------

    def _invalidate_downward(self, obj: DBObject, member: str) -> None:
        """Drop the entry for ``member`` on every transitive inheritor.

        Walks the same traversal the observability layer measures
        (:func:`repro.core.inheritance.iter_propagation`).
        """
        dropped = 0
        for _link, inheritor in iter_propagation(obj, member):
            if self._entries.pop((inheritor.surrogate, member), _SENTINEL) is not _SENTINEL:
                dropped += 1
        if dropped:
            self.invalidations += dropped
            obs = getattr(self.database, "obs", None)
            if obs is not None:
                obs.metrics.counter("cache.invalidations").inc(dropped)

    def _on_member_changed(self, event) -> None:
        self._invalidate_downward(event.subject, event.attribute)

    def _on_subclass_changed(self, event) -> None:
        member = event.data.get("subclass") or event.data.get("subrel")
        if member:
            self._invalidate_downward(event.subject, member)

    def _on_binding_changed(self, event) -> None:
        inheritor = event.subject
        dropped = [
            key for key in self._entries if key[0] == inheritor.surrogate
        ]
        for key in dropped:
            del self._entries[key]
            self.invalidations += 1
        # Downstream inheritors of the re-bound object see new values too.
        for member in event.rel_type.inheriting:
            self._invalidate_downward(inheritor, member)

    def _on_deleted(self, event) -> None:
        surrogate = event.subject.surrogate
        for key in [key for key in self._entries if key[0] == surrogate]:
            del self._entries[key]

    # -- lifecycle -------------------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()

    def detach(self) -> None:
        for subscription in self._subscriptions:
            self.database.events.unsubscribe(subscription)
        self._subscriptions = []
