"""The flight recorder: a ring of periodic metrics samples.

PR-1 metrics are *one-shot*: ``repro metrics`` freezes the registry after a
workout and everything is a lifetime total.  The service tier needs
**history** — is the conflict rate rising, did the cache hit rate collapse
this minute, what is the lock-wait p95 *now* — so the flight recorder
turns the registry into a time series:

* :meth:`FlightRecorder.tick` freezes one :class:`FlightSample` — counter
  *cumulative values and per-second rates* (deltas against the previous
  sample over the elapsed interval), gauge levels, and histogram
  ``count``/``sum``/``p50``/``p95``/``p99`` summaries — into a fixed-size
  ring (oldest samples fall off, the newest ``capacity`` survive);
* besides the registry, a tick folds in the always-on engine statistics
  the one-shot snapshot also reports (index and view manager stats, the
  audit log's appended/dropped totals, the slow log's recorded total), so
  health rules see one uniform counter namespace;
* :meth:`FlightRecorder.start` runs ticks on a daemon thread at a fixed
  interval — the low-overhead continuous mode; :meth:`FlightRecorder.stop`
  ends it.  Manual and daemon ticks serialise on one mutex;
* :meth:`FlightRecorder.snapshot` exports the whole ring as the stable
  ``repro.flight/1`` JSON document (``repro flight`` in the CLI).

Cost discipline: the recorder is **pull-based** — it subscribes to
nothing and adds no code to engine hot paths, so a database without
observability pays literally nothing, and an observed database pays only
when someone ticks (priced by E21).  ``tick(now=...)`` takes an explicit
monotonic timestamp so tests drive irregular intervals deterministically.

The :mod:`repro.obs.health` rules evaluate over the ring; ``repro top``
and ``repro metrics --watch`` re-render the newest sample per interval.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from time import time as _wall_time
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "FLIGHT_SCHEMA_VERSION",
    "FlightSample",
    "FlightRecorder",
    "recorder_of",
    "render_sample",
]

FLIGHT_SCHEMA_VERSION = "repro.flight/1"

#: Histogram summary: count / sum / p50 / p95 / p99 (None when empty).
HistogramSummary = Dict[str, Optional[float]]


class FlightSample(NamedTuple):
    """One frozen observation of the registry.

    ``counters`` holds cumulative totals; ``rates`` holds per-second
    deltas against the *previous* sample (empty for the first sample of a
    recorder and whenever ``elapsed`` is not positive).  ``ts`` is
    monotonic (rate math), ``wall`` is epoch time (display/export).
    """

    seq: int
    ts: float
    wall: float
    elapsed: Optional[float]
    counters: Dict[str, float]
    rates: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, HistogramSummary]

    def rate(self, name: str, default: float = 0.0) -> float:
        return self.rates.get(name, default)

    def percentile(self, name: str, stat: str = "p95") -> Optional[float]:
        summary = self.histograms.get(name)
        if summary is None:
            return None
        return summary.get(stat)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "wall": self.wall,
            "elapsed": self.elapsed,
            "counters": dict(sorted(self.counters.items())),
            "rates": dict(sorted(self.rates.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(summary)
                for name, summary in sorted(self.histograms.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<FlightSample #{self.seq} counters={len(self.counters)} "
            f"elapsed={self.elapsed}>"
        )


class FlightRecorder:
    """Fixed-size ring of periodic :class:`FlightSample` observations.

    ``capacity`` bounds the ring (the newest ``capacity`` samples
    survive); ``ticks`` counts every sample ever taken.  Attached per
    database by :class:`~repro.obs.instruments.Observability` as
    ``db.obs.recorder``.
    """

    def __init__(self, database: Any, capacity: int = 256) -> None:
        if capacity < 2:
            raise ValueError("flight recorder capacity must be at least 2")
        self.database = database
        self.capacity = capacity
        self.ring: Deque[FlightSample] = deque(maxlen=capacity)
        #: Total samples ever taken (the ring is bounded, this is not).
        self.ticks = 0
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self.interval: Optional[float] = None

    # -- sampling ----------------------------------------------------------------

    def _collect(self) -> Tuple[
        Dict[str, float], Dict[str, float], Dict[str, HistogramSummary]
    ]:
        """Counters / gauges / histogram summaries of the observed db.

        The engine's always-on statistics (index and view managers, audit
        and slow-log totals) are folded into the counter namespace — they
        are monotone counts, so their deltas are rates like any other.
        """
        db = self.database
        obs = getattr(db, "obs", None)
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, HistogramSummary] = {}
        if obs is not None:
            metrics = obs.metrics
            for name, counter in metrics._counters.items():
                counters[name] = counter.value
            for name, gauge in metrics._gauges.items():
                gauges[name] = gauge.value
            for name, histogram in metrics._histograms.items():
                histograms[name] = {
                    "count": float(histogram.count),
                    "sum": float(histogram.sum),
                    "p50": histogram.percentile(50),
                    "p95": histogram.percentile(95),
                    "p99": histogram.percentile(99),
                }
            audit = obs.audit
            if audit is not None:
                appended = float(audit.appended)
                ring_max = float(audit.ring.maxlen or 0)
                counters["audit.appended"] = appended
                counters["audit.dropped"] = max(0.0, appended - ring_max)
            slowlog = obs.slowlog
            if slowlog is not None:
                counters["slowlog.recorded"] = float(slowlog.recorded)
        indexes = getattr(db, "indexes", None)
        if indexes is not None:
            for name, value in indexes.stats_snapshot().items():
                counters[name] = float(value)
        views = getattr(db, "views", None)
        if views is not None:
            for name, value in views.stats_snapshot().items():
                counters[name] = float(value)
        return counters, gauges, histograms

    def tick(self, now: Optional[float] = None) -> FlightSample:
        """Take one sample; ``now`` overrides the monotonic clock (tests).

        Rate math: for every counter present in this sample,
        ``rate = (value - previous value or 0) / elapsed``.  A
        non-positive elapsed (clock retreat, duplicate timestamp) yields
        an empty rate map rather than garbage.
        """
        with self._lock:
            ts = perf_counter() if now is None else now
            counters, gauges, histograms = self._collect()
            previous = self.ring[-1] if self.ring else None
            elapsed: Optional[float] = None
            rates: Dict[str, float] = {}
            if previous is not None:
                elapsed = ts - previous.ts
                if elapsed > 0:
                    before = previous.counters
                    rates = {
                        name: (value - before.get(name, 0.0)) / elapsed
                        for name, value in counters.items()
                    }
            sample = FlightSample(
                seq=self.ticks + 1,
                ts=ts,
                wall=_wall_time(),
                elapsed=elapsed,
                counters=counters,
                rates=rates,
                gauges=gauges,
                histograms=histograms,
            )
            self.ring.append(sample)
            self.ticks += 1
            return sample

    # -- the daemon --------------------------------------------------------------

    def start(self, interval: float = 1.0) -> None:
        """Tick every ``interval`` seconds on a daemon thread.

        Idempotent while running; the thread dies with the process (it
        holds no resources beyond the ring it appends to).
        """
        if interval <= 0:
            raise ValueError("flight recorder interval must be positive")
        if self._thread is not None and self._thread.is_alive():
            return
        self.interval = interval
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(interval):
                self.tick()

        self._thread = threading.Thread(
            target=run, name="repro-flight-recorder", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the daemon thread (no-op when not running)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.interval = None

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- inspection --------------------------------------------------------------

    def samples(self) -> List[FlightSample]:
        """Buffered samples, oldest first (a copy)."""
        with self._lock:
            return list(self.ring)

    def latest(self) -> Optional[FlightSample]:
        with self._lock:
            return self.ring[-1] if self.ring else None

    def window(self, n: int) -> List[FlightSample]:
        """The newest ``n`` samples, oldest first."""
        with self._lock:
            if n <= 0:
                return []
            return list(self.ring)[-n:]

    def rate_series(self, name: str) -> List[float]:
        """The per-second rate of one counter across the buffered samples
        (samples without rate data — the first — are skipped)."""
        return [
            sample.rates[name]
            for sample in self.samples()
            if name in sample.rates
        ]

    def gauge_series(self, name: str) -> List[float]:
        return [
            sample.gauges[name]
            for sample in self.samples()
            if name in sample.gauges
        ]

    def snapshot(self) -> Dict[str, Any]:
        """The ``repro.flight/1`` JSON document."""
        with self._lock:
            samples = list(self.ring)
            return {
                "schema": FLIGHT_SCHEMA_VERSION,
                "database": getattr(self.database, "name", None),
                "capacity": self.capacity,
                "ticks": self.ticks,
                "interval": self.interval,
                "samples": [sample.as_dict() for sample in samples],
            }

    def clear(self) -> None:
        with self._lock:
            self.ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder ticks={self.ticks} buffered={len(self.ring)} "
            f"capacity={self.capacity}>"
        )


def recorder_of(db: Any) -> Optional[FlightRecorder]:
    """The flight recorder of an observed database, or None."""
    obs = getattr(db, "obs", None)
    return obs.recorder if obs is not None else None


def render_sample(
    sample: FlightSample, limit: int = 20, zeros: bool = False
) -> str:
    """A compact text frame of one sample: top rates, gauges, percentiles.

    The shared renderer behind ``repro metrics --watch`` and the body of
    ``repro top``.  ``limit`` bounds the rate rows (sorted by magnitude);
    ``zeros`` keeps zero-rate rows.
    """
    lines: List[str] = [
        f"sample #{sample.seq}"
        + (
            f"  (+{sample.elapsed:.3f}s)"
            if sample.elapsed is not None
            else "  (first sample: no rates yet)"
        )
    ]
    rows = sorted(
        sample.rates.items(), key=lambda kv: (-abs(kv[1]), kv[0])
    )
    if not zeros:
        rows = [(name, rate) for name, rate in rows if rate]
    rows = rows[:limit]
    if rows:
        width = max(len(name) for name, _ in rows)
        lines.append("rates (/s):")
        lines.extend(
            f"  {name.ljust(width)}  {rate:,.1f}" for name, rate in rows
        )
    else:
        lines.append("rates (/s): (all quiet)")
    gauge_rows = [
        (name, value) for name, value in sorted(sample.gauges.items()) if value
    ]
    if gauge_rows:
        width = max(len(name) for name, _ in gauge_rows)
        lines.append("gauges:")
        lines.extend(
            f"  {name.ljust(width)}  {value}" for name, value in gauge_rows
        )
    hist_rows = [
        (name, summary)
        for name, summary in sorted(sample.histograms.items())
        if summary.get("count")
    ]
    if hist_rows:
        lines.append("histograms:")
        for name, summary in hist_rows:
            p50, p95, p99 = summary["p50"], summary["p95"], summary["p99"]
            lines.append(
                f"  {name}  count={summary['count']:.0f} "
                f"p50={p50 if p50 is None else round(p50, 6)} "
                f"p95={p95 if p95 is None else round(p95, 6)} "
                f"p99={p99 if p99 is None else round(p99, 6)}"
            )
    return "\n".join(lines)
