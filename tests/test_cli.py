"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import main
from repro.ddl.paper import GATE_SCHEMA
from repro.engine import save
from tests.conftest import build_gate_database


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "gates.ddl"
    path.write_text(GATE_SCHEMA)
    return str(path)


@pytest.fixture
def image_file(tmp_path):
    db = build_gate_database("persist")
    iface = db.create_object("GateInterface", class_name="Interfaces", Length=10, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    db.create_object("GateImplementation", transmitter=iface)
    path = tmp_path / "image.json"
    save(db, str(path))
    return str(path)


@pytest.fixture
def paper_image_file(tmp_path, schema_file):
    """An image whose schema is the paper's gate DDL itself."""
    from repro.ddl import load_schema
    from repro.engine import Database, save as save_db

    db = Database("cli")
    load_schema(GATE_SCHEMA, db.catalog)
    iface = db.create_object("GateInterface", Length=10, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    db.create_object("GateImplementation", transmitter=iface)
    path = tmp_path / "paper-image.json"
    save_db(db, str(path))
    return str(path)


class TestSchemaCommand:
    def test_pretty_print(self, schema_file, capsys):
        assert main(["schema", schema_file]) == 0
        out = capsys.readouterr().out
        assert "obj-type GateImplementation =" in out
        assert "inher-rel-type AllOf_GateInterface =" in out

    def test_notes_on_stderr(self, schema_file, capsys):
        main(["schema", schema_file])
        err = capsys.readouterr().err
        assert "note:" in err  # the paper's quirks are reported

    def test_missing_file(self, capsys):
        assert main(["schema", "/does/not/exist.ddl"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.ddl"
        path.write_text("this is not ddl")
        assert main(["schema", str(path)]) == 1


class TestCheckCommand:
    def test_schema_only(self, schema_file, capsys):
        assert main(["check", schema_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_schema_with_image(self, schema_file, paper_image_file, capsys):
        assert main(["check", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out and "OK" in out

    def test_constraint_violation_detected(self, tmp_path, capsys):
        from repro.ddl import load_schema
        from repro.engine import Database, save as save_db

        schema_path = tmp_path / "g.ddl"
        schema_path.write_text(GATE_SCHEMA)
        db = Database("cli")
        load_schema(GATE_SCHEMA, db.catalog)
        bad = db.create_object("ElementaryGate", Function="AND")
        bad.subclass("Pins").create(InOut="IN")  # needs 2 IN + 1 OUT
        image_path = tmp_path / "bad.json"
        save_db(db, str(image_path))
        assert main(["check", str(schema_path), str(image_path)]) == 2
        assert "constraint:" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_output(self, schema_file, paper_image_file, capsys):
        assert main(["stats", schema_file, paper_image_file]) == 0
        out = capsys.readouterr().out
        # iface + pin + implementation + the inheritance link object.
        assert "objects: 4" in out
        assert "GateInterface: 1" in out
        assert "AllOf_GateInterface: 1" in out


class TestQueryCommand:
    def test_query_rows(self, schema_file, paper_image_file, capsys):
        assert main([
            "query", schema_file, paper_image_file,
            "select Length, Width from GateInterface where Length = 10",
        ]) == 0
        out = capsys.readouterr().out
        assert "Length | Width" in out
        assert "10 | 5" in out
        # Two rows: the implementation is a subtype of GateInterface and
        # inherits the same values — type queries include subtypes.
        assert "(2 row(s))" in out

    def test_query_error(self, schema_file, paper_image_file, capsys):
        assert main(["query", schema_file, paper_image_file, "selekt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestDocsCommand:
    def test_docs_markdown(self, schema_file, capsys):
        assert main(["docs", schema_file, "--title", "Gates"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Gates")
        assert "## Inheritance relationships" in out


class TestPaperCommand:
    def test_gate_normalised(self, capsys):
        assert main(["paper", "gate"]) == 0
        assert "obj-type Gate =" in capsys.readouterr().out

    def test_steel_raw(self, capsys):
        assert main(["paper", "steel", "--raw"]) == 0
        assert "WeightCarrying_Structure" in capsys.readouterr().out

    def test_module_entry_point(self, schema_file):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "schema", schema_file],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0
        assert "obj-type" in result.stdout
