#!/usr/bin/env python3
"""Steel construction (§5): weight-carrying structures.

Assembles a small bridge section from girders and plates, joined by
screwings — the paper's showcase for *complex relationships*: the
ScrewingType relationship object owns its bolt and nut as inheriting
subobjects and enforces the fit constraints:

    #s in Bolt = 1;  #n in Nut = 1;
    for (s in Bolt, n in Nut): s.Diameter = n.Diameter;
        for b in Bores: s.Diameter <= b.Diameter;
        s.Length = n.Length + sum(Bores.Length)

Run:  python examples/steel_construction.py
"""

from repro.consistency import AdaptationTracker
from repro.errors import ConstraintViolation
from repro.workloads import steel_database


def main() -> None:
    db = steel_database("bridge")
    tracker = AdaptationTracker(db)

    # -- the part library (interfaces = what the catalogue promises) ----------
    girder_if = db.create_object(
        "GirderInterface", Length=120, Height=12, Width=8
    )
    g_bore1 = girder_if.subclass("Bores").create(
        Diameter=12, Length=10, Position=(10, 0)
    )
    g_bore2 = girder_if.subclass("Bores").create(
        Diameter=12, Length=10, Position=(110, 0)
    )
    plate_if = db.create_object(
        "PlateInterface", Thickness=8, Area={"Length": 60, "Width": 40}
    )
    p_bore = plate_if.subclass("Bores").create(
        Diameter=12, Length=8, Position=(30, 20)
    )
    girder_if.check_constraints()  # Length < 100*Height*Width
    print(f"catalogue: girder {girder_if['Length']} long with "
          f"{len(girder_if['Bores'])} bores; plate {plate_if['Thickness']} thick")

    # -- the structure: components inherit the catalogue data -----------------
    structure = db.create_object(
        "WeightCarrying_Structure",
        Designer="G. Pegels",
        Description="bridge section, two girders + deck plate",
    )
    girder_a = structure.subclass("Girders").create(transmitter=girder_if)
    girder_b = structure.subclass("Girders").create(transmitter=girder_if)
    deck = structure.subclass("Plates").create(transmitter=plate_if)
    print(f"structure uses girders of length {girder_a['Length']} "
          f"(inherited from the catalogue)")

    # -- screwing: bolt + nut hidden inside the relationship ------------------
    bolt = db.create_object("BoltType", Length=28, Diameter=11)  # 10 + 10+8
    nut = db.create_object("NutType", Length=10, Diameter=11)
    screwing = structure.subrel("Screwings").create(
        {"Bores": [g_bore1, p_bore]}, Strength=7
    )
    screwing.subclass("Bolt").create(transmitter=bolt)
    screwing.subclass("Nut").create(transmitter=nut)
    screwing.check_constraints()
    print(f"screwing ok: bolt {bolt['Length']}mm = nut {nut['Length']}mm "
          f"+ bores {sum(b['Length'] for b in screwing['Bores'])}mm")

    # -- constraint violations are caught --------------------------------------
    try:
        short_bolt = db.create_object("BoltType", Length=5, Diameter=11)
        short_nut = db.create_object("NutType", Length=1, Diameter=11)
        bad = structure.subrel("Screwings").create(
            {"Bores": [g_bore2, p_bore]}, Strength=3
        )
        bad.subclass("Bolt").create(transmitter=short_bolt)
        bad.subclass("Nut").create(transmitter=short_nut)
        bad.check_constraints()
    except ConstraintViolation as exc:
        print(f"short bolt rejected: {exc}")
        bad.delete()  # discard the failed assembly attempt

    # -- a catalogue change flags every user for adaptation -------------------
    girder_if.set_attribute("Length", 130)
    worklist = tracker.inheritors_needing_adaptation()
    print(f"catalogue update: {len(worklist)} component slots flagged "
          f"for adaptation (both girders of the structure)")
    for record in tracker.pending(girder_a):
        print(f"  - {record.describe()}")
    tracker.acknowledge(girder_a)
    tracker.acknowledge(girder_b)
    print(f"adaptation acknowledged; pending now: {len(tracker.all_pending())}")

    structure.check_constraints(deep=True)
    print("structure consistent; done.")


if __name__ == "__main__":
    main()
