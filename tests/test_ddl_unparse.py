"""Round-trip tests for the DDL unparser (repro.ddl.unparse).

Unparsing a catalog and re-loading the text must reproduce the same schema
structure — this pins parser, builder and unparser against each other.
"""


from repro.core.inheritance import InheritanceRelationshipType
from repro.core.reltype import RelationshipType
from repro.ddl import load_schema
from repro.ddl.paper import load_gate_schema, load_steel_schema
from repro.ddl.unparse import unparse_catalog, unparse_domain, unparse_type
from repro.engine import Catalog


def assert_catalogs_equivalent(original: Catalog, rebuilt: Catalog) -> None:
    original_types = {t.name for t in original if "." not in t.name}
    rebuilt_types = {t.name for t in rebuilt if "." not in t.name}
    assert original_types == rebuilt_types
    for type_ in original:
        twin = rebuilt.type(type_.name)
        assert type(twin) is type(type_), type_.name
        assert set(twin.attributes) == set(type_.attributes), type_.name
        for name, spec in type_.attributes.items():
            assert twin.attributes[name].domain.describe() == spec.domain.describe(), (
                f"{type_.name}.{name}"
            )
        assert set(twin.subclass_specs) == set(type_.subclass_specs)
        for name, spec in type_.subclass_specs.items():
            assert (
                twin.subclass_specs[name].element_type.name
                == spec.element_type.name
            )
        assert set(twin.subrel_specs) == set(type_.subrel_specs)
        assert len(twin.constraints) == len(type_.constraints), type_.name
        assert [r.name for r in twin.inheritor_in] == [
            r.name for r in type_.inheritor_in
        ]
        if isinstance(type_, InheritanceRelationshipType):
            assert twin.inheriting == type_.inheriting
            assert twin.transmitter_type.name == type_.transmitter_type.name
        elif isinstance(type_, RelationshipType):
            assert set(twin.participants) == set(type_.participants)
            for role, participant in type_.participants.items():
                twin_participant = twin.participants[role]
                assert twin_participant.many == participant.many
                if participant.object_type is None:
                    assert twin_participant.object_type is None
                else:
                    assert (
                        twin_participant.object_type.name
                        == participant.object_type.name
                    )


class TestRoundTrips:
    def test_gate_schema_round_trip(self):
        original = load_gate_schema()
        text = unparse_catalog(original)
        rebuilt = load_schema(text)
        assert_catalogs_equivalent(original, rebuilt)

    def test_steel_schema_round_trip(self):
        original = load_steel_schema()
        text = unparse_catalog(original)
        rebuilt = load_schema(text)
        assert_catalogs_equivalent(original, rebuilt)

    def test_double_round_trip_is_stable(self):
        original = load_gate_schema()
        once = unparse_catalog(load_schema(unparse_catalog(original)))
        twice = unparse_catalog(load_schema(once))
        assert once == twice

    def test_combined_catalog_round_trip(self):
        original = load_gate_schema()
        load_steel_schema(original)
        rebuilt = load_schema(unparse_catalog(original))
        assert_catalogs_equivalent(original, rebuilt)


class TestUnparseDetails:
    def test_domain_rendering(self):
        catalog = load_steel_schema()
        area = catalog.domain("AreaDom")
        assert unparse_domain(area, catalog) == "AreaDom"
        rendered = unparse_domain(area, None)
        assert rendered.startswith("(") and "Length: integer" in rendered

    def test_inheritance_type_rendering(self):
        catalog = load_gate_schema()
        text = unparse_type(catalog.type("AllOf_GateInterface"), catalog)
        assert "transmitter: object-of-type GateInterface;" in text
        assert "inheritor: object;" in text
        assert "inheriting: Length, Width, Pins;" in text

    def test_anonymous_subclass_inlined(self):
        catalog = load_gate_schema()
        text = unparse_type(catalog.type("GateImplementation"), catalog)
        assert "SubGates:" in text
        assert "inheritor-in: AllOf_GateInterface;" in text
        assert "GateLocation: Point;" in text
        assert "GateImplementation.SubGates" not in text  # inlined, not named

    def test_where_clause_preserved(self):
        catalog = load_steel_schema()
        text = unparse_type(catalog.type("WeightCarrying_Structure"), catalog)
        assert "where for x in Bores:" in text

    def test_typed_inheritor_rendering(self):
        catalog = load_steel_schema()
        text = unparse_type(catalog.type("AllOf_GirderIf"), catalog)
        assert "inheritor: object-of-type Girder;" in text

    def test_set_valued_participant_rendering(self):
        catalog = load_steel_schema()
        text = unparse_type(catalog.type("ScrewingType"), catalog)
        assert "Bores: set-of object-of-type BoreType;" in text
        assert "Bolt:" in text and "inheritor-in: AllOf_BoltType;" in text
