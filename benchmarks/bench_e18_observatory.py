"""E18 — the observatory's own tax: profiler and slow-log overhead.

The perf-observatory contract (this PR): every observability surface must
be zero-cost when disabled and cheap when enabled but quiet.  E18 prices
the two new surfaces:

* **sampling profiler** — E14's deep-chain reads (depth 8) with and
  without a 1 kHz :class:`~repro.obs.profiler.SamplingProfiler` attached.
  Sampling happens on a background thread; the profiled thread pays only
  ~1000 brief GIL handoffs per second, so the min/median tax target is
  near zero on a read-dominated loop (the mean absorbs the sampling
  pauses themselves, which is environment-dependent);
* **slow-operation log** — the Figure-2 update workload in four regimes:
  observability off (``slowlog_dark``, the one-load-one-branch floor),
  observability on with the slow log detached (``slowlog_detached``),
  attached but quiet (``slowlog_quiet``: two ``perf_counter`` reads per
  measured propagation, nothing recorded), and attached with a zero
  budget (``slowlog_firing``: every update appends a diagnosis record to
  the bounded ring).

Reads are batched (``BATCH`` per timed call) so the profiler's
start/stop thread lifecycle — paid once per measurement in the harness
adapter — is amortised below the effect being measured.
"""

import time

from repro.obs.profiler import SamplingProfiler
from repro.workloads import gate_database, make_implementation, make_interface

from benchmarks.bench_e14_resolution import build_chain

BATCH = 5_000
FANOUT = 10


def deep_read_batch(prefix, batch=BATCH):
    """A thunk running ``batch`` warmed depth-8 inherited reads."""
    _top, bottom = build_chain(8, prefix)
    read = bottom.get_member
    assert read("V") == 42  # warm plan + holder memo
    indices = range(batch)

    def run():
        for _ in indices:
            read("V")

    return run


def _setup(observe, slowlog=True, budgets=None):
    db = gate_database("e18-bench")
    if observe:
        db.enable_observability(
            tracing=False, audit=False, slowlog=slowlog, slow_budgets=budgets
        )
    iface = make_interface(db)
    for _ in range(FANOUT):
        make_implementation(db, iface)
    return db, iface


class TestProfilerTax:
    def test_reads_unprofiled(self, benchmark):
        """The baseline: BATCH deep-chain reads, no sampler attached."""
        benchmark(deep_read_batch("E18B"))

    def test_reads_profiled_1khz(self, benchmark):
        """Same loop with the 1 kHz sampler on: the GIL-handoff tax."""
        run = deep_read_batch("E18P")
        profiler = SamplingProfiler(interval=0.001)
        profiler.start()
        try:
            benchmark(run)
            # Under --benchmark-disable the loop runs once (~1ms), too
            # short for a 1kHz sampler: keep reading until it lands one.
            deadline = time.perf_counter() + 2.0
            while profiler.samples == 0 and time.perf_counter() < deadline:
                run()
        finally:
            profiler.stop()
        # The sampler really watched the loop, and saw the hot frames.
        assert profiler.samples > 0


class TestSlowlogTax:
    def test_update_slowlog_dark(self, benchmark):
        """Observe off: the slowlog guards must stay one load + branch."""
        db, iface = _setup(observe=False)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))
        assert db.obs is None

    def test_update_slowlog_detached(self, benchmark):
        """Observe on, slow log off: the pre-PR-6 measurement baseline."""
        db, iface = _setup(observe=True, slowlog=False)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))
        assert db.obs.slowlog is None

    def test_update_slowlog_quiet(self, benchmark):
        """Attached but under budget: two clock reads, nothing recorded."""
        db, iface = _setup(observe=True, slowlog=True)
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))
        assert db.obs.slowlog is not None
        assert db.obs.slowlog.recorded == 0

    def test_update_slowlog_firing(self, benchmark):
        """Zero budget: every propagation records its diagnosis."""
        db, iface = _setup(
            observe=True, slowlog=True, budgets={"propagation": 0.0}
        )
        counter = iter(range(10**9))
        benchmark(lambda: iface.set_attribute("Length", 10 + next(counter) % 50))
        slowlog = db.obs.slowlog
        assert slowlog.recorded > 0
        op = slowlog.operations("propagation")[-1]
        assert op.detail["fanout"] == FANOUT


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    batch = 1_000 if suite.quick else BATCH

    @suite.case(f"reads_unprofiled[{batch}]")
    def base_case():
        return deep_read_batch("E18HB", batch)

    @suite.case(f"reads_profiled_1khz[{batch}]")
    def profiled_case():
        run = deep_read_batch("E18HP", batch)
        profiler = SamplingProfiler(interval=0.001)

        def timed():
            # Start/stop inside the measurement: ~0.2ms of thread
            # lifecycle amortised over the batch of reads.
            with profiler:
                run()

        return timed

    @suite.case("update_slowlog_dark")
    def dark_case():
        db, iface = _setup(observe=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("update_slowlog_detached")
    def detached_case():
        db, iface = _setup(observe=True, slowlog=False)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("update_slowlog_quiet")
    def quiet_case():
        db, iface = _setup(observe=True, slowlog=True)
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)

    @suite.case("update_slowlog_firing")
    def firing_case():
        db, iface = _setup(
            observe=True, slowlog=True, budgets={"propagation": 0.0}
        )
        counter = iter(range(10**9))
        return lambda: iface.set_attribute("Length", 10 + next(counter) % 50)
