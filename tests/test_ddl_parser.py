"""Unit tests for the DDL lexer/parser (repro.ddl.lexer / parser)."""

import pytest

from repro.ddl.ast import (
    ConstructorAst,
    DomainRef,
    EnumLiteral,
    InherRelTypeDecl,
    RecordLiteral,
    RelTypeDecl,
)
from repro.ddl.lexer import strip_comments, tokenize_ddl
from repro.ddl.parser import parse_schema_source
from repro.errors import DDLSyntaxError


class TestDdlLexer:
    def test_hyphenated_keywords_are_single_tokens(self):
        tokens = tokenize_ddl("obj-type types-of-subclasses inheritor-in end-domain")
        assert [t.text for t in tokens[:-1]] == [
            "obj-type",
            "types-of-subclasses",
            "inheritor-in",
            "end-domain",
        ]
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_io_domain_name_with_slash(self):
        tokens = tokenize_ddl("InOut: I/O;")
        texts = [t.text for t in tokens[:-1]]
        assert "I/O" in texts

    def test_keywords_case_insensitive(self):
        assert tokenize_ddl("OBJ-TYPE")[0].kind == "KEYWORD"

    def test_comments_stripped_with_positions_kept(self):
        source = "a /* comment */ b"
        stripped = strip_comments(source)
        assert len(stripped) == len(source)
        assert stripped.startswith("a ") and stripped.endswith(" b")

    def test_unterminated_comment(self):
        with pytest.raises(DDLSyntaxError):
            tokenize_ddl("a /* oops")

    def test_line_numbers(self):
        tokens = tokenize_ddl("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_hyphen_names(self):
        # A hyphen followed by a letter continues the word.
        tokens = tokenize_ddl("inher-rel-typ")
        assert tokens[0].kind == "IDENT" and tokens[0].text == "inher-rel-typ"


class TestDomainDecls:
    def test_enum_domain(self):
        schema = parse_schema_source("domain I/O = (IN, OUT);")
        decl = schema.declarations[0]
        assert decl.name == "I/O"
        assert isinstance(decl.domain, EnumLiteral)
        assert decl.domain.labels == ("IN", "OUT")

    def test_inline_record_domain(self):
        schema = parse_schema_source("domain Point = (X, Y: integer);")
        record = schema.declarations[0].domain
        assert isinstance(record, RecordLiteral)
        assert record.fields[0][0] == ("X", "Y")
        assert record.fields[0][1] == DomainRef("integer")

    def test_record_end_domain_form(self):
        schema = parse_schema_source(
            "domain AreaDom = record: Length, Width: integer; end-domain AreaDom;"
        )
        record = schema.declarations[0].domain
        assert isinstance(record, RecordLiteral)

    def test_multi_field_inline_record(self):
        schema = parse_schema_source(
            "domain Pin = ( PinId: integer; InOut: I/O; );"
        )
        record = schema.declarations[0].domain
        assert len(record.fields) == 2


class TestObjTypeDecls:
    def test_colon_and_equals_both_accepted(self):
        for opener in (":", "="):
            schema = parse_schema_source(
                f"obj-type T {opener} attributes: X: integer; end T;"
            )
            assert schema.declarations[0].name == "T"

    def test_multi_name_attribute_group(self):
        schema = parse_schema_source(
            "obj-type T = attributes: Length, Width: integer; end T;"
        )
        decl = schema.declarations[0]
        assert decl.attributes[0].names == ("Length", "Width")

    def test_set_of_record_attribute(self):
        schema = parse_schema_source(
            "obj-type T = attributes: "
            "Pins: set-of ( PinId: integer; InOut: I/O; ); end T;"
        )
        domain = schema.declarations[0].attributes[0].domain
        assert isinstance(domain, ConstructorAst) and domain.constructor == "set-of"
        assert isinstance(domain.element, RecordLiteral)

    def test_constraints_block_captured_raw(self):
        schema = parse_schema_source(
            "obj-type T = attributes: X: integer;\n"
            "constraints:\n"
            "  count (Pins) = 2 where Pins.InOut = IN;\n"
            "  count (Pins) = 1 where Pins.InOut = OUT;\n"
            "end T;"
        )
        constraints = schema.declarations[0].constraints
        assert "count (Pins) = 2 where Pins.InOut = IN" in constraints
        assert "OUT" in constraints

    def test_subclasses_and_subrels(self):
        schema = parse_schema_source(
            "obj-type Gate =\n"
            "  types-of-subclasses: Pins: PinType; SubGates: ElementaryGate;\n"
            "  types-of-subrels: Wires: WireType where Wire.Pin1 in Pins;\n"
            "end Gate;"
        )
        decl = schema.declarations[0]
        assert [s.name for s in decl.subclasses] == ["Pins", "SubGates"]
        assert decl.subrels[0].where_source == "Wire.Pin1 in Pins"

    def test_connections_alias(self):
        schema = parse_schema_source(
            "obj-type T = connections: Wire: WireType; end T;"
        )
        assert schema.declarations[0].subrels[0].rel_type_name == "WireType"
        assert any("connections" in note for note in schema.notes)

    def test_anonymous_subclass_with_body(self):
        schema = parse_schema_source(
            "obj-type Impl =\n"
            "  types-of-subclasses:\n"
            "    SubGates:\n"
            "      inheritor-in: AllOf_GateInterface;\n"
            "      attributes: GateLocation: Point;\n"
            "end Impl;"
        )
        entry = schema.declarations[0].subclasses[0]
        assert entry.type_name is None
        assert entry.body.inheritor_in == ["AllOf_GateInterface"]
        assert entry.body.attributes[0].names == ("GateLocation",)

    def test_inheritor_in_clause(self):
        schema = parse_schema_source(
            "obj-type Impl = inheritor-in: AllOf_GateInterface; end Impl;"
        )
        assert schema.declarations[0].inheritor_in == ["AllOf_GateInterface"]

    def test_inheritor_typo_accepted_with_note(self):
        schema = parse_schema_source(
            "obj-type Girder inheritor: AllOf_GirderIf; end Girder;"
        )
        assert schema.declarations[0].inheritor_in == ["AllOf_GirderIf"]
        assert any("typo" in note for note in schema.notes)

    def test_end_name_mismatch_noted(self):
        schema = parse_schema_source("obj-type A = end B;")
        assert any("mismatch" in note for note in schema.notes)

    def test_missing_end_rejected(self):
        with pytest.raises(DDLSyntaxError):
            parse_schema_source("obj-type A = attributes: X: integer;")

    def test_where_with_for_spans_semicolons(self):
        schema = parse_schema_source(
            "obj-type W =\n"
            "  types-of-subrels:\n"
            "    Screwings: ScrewingType\n"
            "      where for x in Bores: x in Girders.Bores or x in Plates.Bores;\n"
            "end W;"
        )
        where = schema.declarations[0].subrels[0].where_source
        assert where.startswith("for x in Bores")


class TestRelTypeDecls:
    def test_two_roles_one_group(self):
        schema = parse_schema_source(
            "rel-type WireType = relates: Pin1, Pin2: object-of-type PinType;\n"
            "attributes: Corners: list-of Point; end WireType;"
        )
        decl = schema.declarations[0]
        assert isinstance(decl, RelTypeDecl)
        assert decl.relates[0].names == ("Pin1", "Pin2")
        assert decl.relates[0].type_name == "PinType"

    def test_set_valued_role(self):
        schema = parse_schema_source(
            "rel-type S = relates: Bores: set-of object-of-type BoreType; end S;"
        )
        assert schema.declarations[0].relates[0].many

    def test_untyped_role(self):
        schema = parse_schema_source("rel-type R = relates: Thing: object; end R;")
        assert schema.declarations[0].relates[0].type_name is None

    def test_rel_type_with_subclasses_and_constraints(self):
        schema = parse_schema_source(
            "rel-type ScrewingType =\n"
            "  relates: Bores: set-of object-of-type BoreType;\n"
            "  attributes: Strength: integer;\n"
            "  types-of-subclasses:\n"
            "    Bolt: inheritor-in: AllOf_BoltType;\n"
            "    Nut: inheritor-in: AllOf_NutType;\n"
            "  constraints:\n"
            "    #s in Bolt = 1;\n"
            "    #n in Nut = 1;\n"
            "end ScrewingType;"
        )
        decl = schema.declarations[0]
        assert [s.name for s in decl.subclasses] == ["Bolt", "Nut"]
        assert "#s in Bolt = 1" in decl.constraints


class TestInherRelTypeDecls:
    def test_standard_form(self):
        schema = parse_schema_source(
            "inher-rel-type AllOf_GateInterface =\n"
            "  transmitter: object-of-type GateInterface;\n"
            "  inheritor: object;\n"
            "  inheriting: Length, Width, Pins;\n"
            "end AllOf_GateInterface;"
        )
        decl = schema.declarations[0]
        assert isinstance(decl, InherRelTypeDecl)
        assert decl.transmitter_type == "GateInterface"
        assert decl.inheritor_type is None
        assert decl.inheriting == ["Length", "Width", "Pins"]

    def test_typed_inheritor(self):
        schema = parse_schema_source(
            "inher-rel-type R = transmitter: object-of-type A; "
            "inheritor: object-of-type B; inheriting: X; end R;"
        )
        assert schema.declarations[0].inheritor_type == "B"

    def test_missing_semicolons_between_clauses(self):
        # The paper's SomeOf_Gate omits the ';' after the transmitter line.
        schema = parse_schema_source(
            "inher-rel-type SomeOf_Gate =\n"
            "  transmitter: object-of-type GateImplementation\n"
            "  inheritor: object;\n"
            "  inheriting: Length, Width, TimeBehavior, Pins;\n"
            "end SomeOf_Gate;"
        )
        assert schema.declarations[0].transmitter_type == "GateImplementation"

    def test_trailing_comma_in_inheriting(self):
        schema = parse_schema_source(
            "inher-rel-type AllOf_BoltType =\n"
            "  transmitter: object-of-type BoltType;\n"
            "  inheritor: object;\n"
            "  inheriting: Length, Diameter,\n"
            "end AllOf_BoltType;"
        )
        assert schema.declarations[0].inheriting == ["Length", "Diameter"]
        assert any("trailing comma" in note for note in schema.notes)

    def test_inher_rel_typ_typo(self):
        schema = parse_schema_source(
            "inher-rel-typ R = transmitter: object-of-type A; "
            "inheritor: object; inheriting: X; end R;"
        )
        assert schema.declarations[0].name == "R"
        assert any("inher-rel-typ" in note for note in schema.notes)

    def test_bad_transmitter_clause(self):
        with pytest.raises(DDLSyntaxError):
            parse_schema_source(
                "inher-rel-type R = transmitter: object; end R;"
            )


class TestTopLevel:
    def test_multiple_declarations(self):
        schema = parse_schema_source(
            "domain D = (A, B); obj-type T = attributes: X: D; end T;"
        )
        assert len(schema.declarations) == 2

    def test_garbage_rejected(self):
        with pytest.raises(DDLSyntaxError):
            parse_schema_source("hello world")

    def test_empty_source(self):
        assert parse_schema_source("  \n ").declarations == []
