"""Tests for version management (repro.versions)."""

import pytest

from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.errors import SelectionError, VersionError
from repro.versions import (
    DefaultSelection,
    Environment,
    EnvironmentRegistry,
    EnvironmentSelection,
    GenericRelationship,
    QuerySelection,
    StateGuard,
    VersionGraph,
    VersionState,
    can_transition,
)


@pytest.fixture
def db():
    db = Database("versions")
    load_gate_schema(db.catalog)
    return db


@pytest.fixture
def guard(db):
    return StateGuard(db)


def make_interface(db, length=10):
    iface = db.create_object("GateInterface", Length=length, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    iface.subclass("Pins").create(InOut="IN")
    iface.subclass("Pins").create(InOut="OUT")
    return iface


def make_graph(db, guard, n=3, time_behaviors=(5, 3, 8)):
    """An interface with n implementation versions: v1 -> v2 -> ... chain."""
    iface = make_interface(db)
    graph = VersionGraph(design_object=iface, guard=guard)
    versions = []
    base = None
    for i in range(n):
        impl = db.create_object(
            "GateImplementation",
            transmitter=iface,
            TimeBehavior=time_behaviors[i % len(time_behaviors)],
        )
        graph.add_version(impl, derived_from=base)
        versions.append(impl)
        base = impl
    return iface, graph, versions


class TestVersionStates:
    def test_transition_table(self):
        assert can_transition(VersionState.IN_DESIGN, VersionState.CONSISTENT)
        assert can_transition(VersionState.CONSISTENT, VersionState.RELEASED)
        assert can_transition(VersionState.RELEASED, VersionState.FROZEN)
        assert not can_transition(VersionState.IN_DESIGN, VersionState.RELEASED)
        assert not can_transition(VersionState.FROZEN, VersionState.IN_DESIGN)

    def test_unknown_state_rejected(self):
        with pytest.raises(VersionError):
            can_transition("banana", VersionState.FROZEN)

    def test_guard_blocks_updates_of_released(self, db, guard):
        iface = make_interface(db)
        guard.release(iface)
        with pytest.raises(VersionError):
            iface.set_attribute("Length", 99)
        # The update was reverted, not half-applied.
        assert iface["Length"] == 10

    def test_guard_blocks_structure_changes(self, db, guard):
        iface = make_interface(db)
        guard.release(iface)
        with pytest.raises(VersionError):
            iface.subclass("Pins").create(InOut="IN")
        assert len(iface["Pins"]) == 3

    def test_guard_covers_subobjects(self, db, guard):
        iface = make_interface(db)
        pin = iface.subclass("Pins").members()[0]
        guard.release(iface)
        with pytest.raises(VersionError):
            pin.set_attribute("InOut", "OUT")

    def test_update_drops_consistent_back_to_in_design(self, db, guard):
        iface = make_interface(db)
        guard.set_state(iface, VersionState.IN_DESIGN)
        guard.set_state(iface, VersionState.CONSISTENT)
        iface.set_attribute("Length", 11)  # allowed, but declassifies
        assert guard.state_of(iface) == VersionState.IN_DESIGN

    def test_illegal_transition_rejected(self, db, guard):
        iface = make_interface(db)
        guard.set_state(iface, VersionState.IN_DESIGN)
        with pytest.raises(VersionError):
            guard.set_state(iface, VersionState.RELEASED)

    def test_freeze_path(self, db, guard):
        iface = make_interface(db)
        guard.freeze(iface)
        assert guard.state_of(iface) == VersionState.FROZEN

    def test_suspended_guard_allows_updates(self, db, guard):
        iface = make_interface(db)
        guard.release(iface)
        with guard.suspended():
            iface.set_attribute("Length", 99)
        assert iface["Length"] == 99

    def test_unguarded_objects_unaffected(self, db, guard):
        other = make_interface(db)
        other.set_attribute("Length", 42)
        assert other["Length"] == 42


class TestVersionGraph:
    def test_members_and_history(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        assert len(graph) == 3
        assert graph.history_of(versions[2]) == versions
        assert graph.base_of(versions[1]) is versions[0]
        assert graph.derivatives_of(versions[0]) == [versions[1]]

    def test_roots_and_leaves(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        assert graph.roots() == [versions[0]]
        assert graph.leaves() == [versions[2]]

    def test_alternatives(self, db, guard):
        iface, graph, versions = make_graph(db, guard, n=1)
        alt_a = db.create_object("GateImplementation", transmitter=iface)
        alt_b = db.create_object("GateImplementation", transmitter=iface)
        graph.derive(versions[0], alt_a)
        graph.derive(versions[0], alt_b)
        assert set(graph.alternatives_of(alt_a)) == {alt_b}
        assert graph.leaves() and len(graph.leaves()) == 2

    def test_is_ancestor(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        assert graph.is_ancestor(versions[0], versions[2])
        assert not graph.is_ancestor(versions[2], versions[0])

    def test_duplicate_member_rejected(self, db, guard):
        iface, graph, versions = make_graph(db, guard, n=1)
        with pytest.raises(VersionError):
            graph.add_version(versions[0])

    def test_unknown_base_rejected(self, db, guard):
        iface, graph, _ = make_graph(db, guard, n=1)
        stranger = db.create_object("GateImplementation", transmitter=iface)
        other = db.create_object("GateImplementation", transmitter=iface)
        with pytest.raises(VersionError):
            graph.add_version(other, derived_from=stranger)

    def test_remove_leaf_only(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        with pytest.raises(VersionError):
            graph.remove_version(versions[0])  # has derivatives
        graph.remove_version(versions[2])
        assert len(graph) == 2

    def test_remove_frozen_rejected(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        graph.freeze(versions[2])
        with pytest.raises(VersionError):
            graph.remove_version(versions[2])

    def test_default_version_tracking(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        assert graph.default_version is versions[0]
        graph.set_default(versions[2])
        assert graph.default_version is versions[2]

    def test_classification_by_state(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        graph.release(versions[0])
        assert graph.versions_in_state(VersionState.RELEASED) == [versions[0]]
        assert set(graph.versions_in_state(VersionState.IN_DESIGN)) == set(versions[1:])

    def test_versioned_versions_subgraph(self, db, guard):
        # §6: interfaces have versions (implementations) which have versions.
        iface, graph, versions = make_graph(db, guard, n=1)
        assert graph.subgraph_of(versions[0]) is None
        subgraph = graph.subgraph_of(versions[0], create=True)
        assert subgraph.design_object is versions[0]
        assert graph.subgraph_of(versions[0]) is subgraph

    def test_graph_requires_anchor(self):
        with pytest.raises(VersionError):
            VersionGraph()


class TestGenericRelationships:
    def make_slot(self, db):
        """An unbound GateImplementation as the slot (plain inheritor)."""
        slot_obj = db.create_object("GateImplementation")
        rel = db.catalog.inheritance_type("AllOf_GateInterface")
        return slot_obj, rel

    def test_candidates_conform_to_transmitter_type(self, db, guard):
        iface, graph, versions = make_graph(db, guard)
        # The graph of *interface versions*: candidates for AllOf_GateInterface.
        iface_graph = VersionGraph(design_object=iface, guard=guard)
        v1 = make_interface(db, length=1)
        iface_graph.add_version(v1)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, iface_graph)
        assert generic.candidates() == [v1]

    def test_query_selection_top_down(self, db, guard):
        graph = VersionGraph(name="interfaces", guard=guard)
        v_small = make_interface(db, length=5)
        v_big = make_interface(db, length=50)
        graph.add_version(v_small)
        graph.add_version(v_big)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        link = generic.resolve(QuerySelection("Length > 10"))
        assert link.transmitter is v_big
        assert slot_obj["Length"] == 50

    def test_query_selection_no_match(self, db, guard):
        graph = VersionGraph(name="interfaces")
        graph.add_version(make_interface(db, length=5))
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        with pytest.raises(SelectionError):
            generic.resolve(QuerySelection("Length > 10"))

    def test_query_selection_tie_handling(self, db, guard):
        graph = VersionGraph(name="interfaces")
        a = make_interface(db, length=20)
        b = make_interface(db, length=30)
        graph.add_version(a)
        graph.add_version(b)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        with pytest.raises(SelectionError):
            generic.resolve(QuerySelection("Length > 10"))
        link = generic.resolve(QuerySelection("Length > 10", on_ties="newest"))
        assert link.transmitter is b

    def test_default_selection_bottom_up(self, db, guard):
        graph = VersionGraph(name="interfaces", guard=guard)
        v1 = make_interface(db, length=1)
        v2 = make_interface(db, length=2)
        graph.add_version(v1)
        graph.add_version(v2)
        graph.set_default(v2)
        slot_obj, rel = self.make_slot(db)
        link = GenericRelationship(slot_obj, rel, graph).resolve(DefaultSelection())
        assert link.transmitter is v2

    def test_default_selection_released_only(self, db, guard):
        graph = VersionGraph(name="interfaces", guard=guard)
        v1 = make_interface(db)
        graph.add_version(v1)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        with pytest.raises(SelectionError):
            generic.resolve(DefaultSelection(released_only=True))
        graph.release(v1)
        link = generic.resolve(DefaultSelection(released_only=True))
        assert link.transmitter is v1

    def test_environment_selection(self, db, guard):
        iface, graph, versions = make_graph(db, guard, n=1)
        iface_graph = VersionGraph(design_object=iface)
        v1 = make_interface(db, length=1)
        v2 = make_interface(db, length=2)
        iface_graph.add_version(v1)
        iface_graph.add_version(v2)

        registry = EnvironmentRegistry()
        testing = registry.create("testing")
        testing.assign(iface, v2)
        registry.activate("testing")

        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, iface_graph)
        link = generic.resolve(EnvironmentSelection(registry))
        assert link.transmitter is v2

    def test_environment_silent_raises(self, db, guard):
        iface = make_interface(db)
        iface_graph = VersionGraph(design_object=iface)
        iface_graph.add_version(make_interface(db))
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, iface_graph)
        environment = Environment("silent")
        with pytest.raises(SelectionError):
            generic.resolve(EnvironmentSelection(environment))

    def test_no_active_environment(self, db, guard):
        iface = make_interface(db)
        iface_graph = VersionGraph(design_object=iface)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, iface_graph)
        with pytest.raises(SelectionError):
            generic.resolve(EnvironmentSelection(EnvironmentRegistry()))

    def test_re_resolve_after_new_version(self, db, guard):
        graph = VersionGraph(name="interfaces")
        v1 = make_interface(db, length=10)
        graph.add_version(v1)
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        generic.resolve(DefaultSelection())
        assert generic.current_version is v1

        v2 = make_interface(db, length=20)
        graph.add_version(v2)
        graph.set_default(v2)
        generic.re_resolve(DefaultSelection())
        assert generic.current_version is v2
        assert slot_obj["Length"] == 20

    def test_double_resolve_rejected(self, db, guard):
        graph = VersionGraph(name="interfaces")
        graph.add_version(make_interface(db))
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        generic.resolve(DefaultSelection())
        with pytest.raises(SelectionError):
            generic.resolve(DefaultSelection())

    def test_unresolve(self, db, guard):
        graph = VersionGraph(name="interfaces")
        graph.add_version(make_interface(db))
        slot_obj, rel = self.make_slot(db)
        generic = GenericRelationship(slot_obj, rel, graph)
        generic.resolve(DefaultSelection())
        generic.unresolve()
        assert not generic.resolved
        generic.unresolve()  # idempotent
