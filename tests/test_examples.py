"""Every example script must run cleanly — they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "done." in result.stdout
