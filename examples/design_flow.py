#!/usr/bin/env python3
"""Design flow: derive → diff → impact → adapt.

The end-to-end change-management loop the paper's §4.2/§6 discussion
implies, using the extension features of the reproduction:

1. a released NAND interface is used by two composites;
2. a new interface version is *derived*, modified, and *diffed*;
3. *impact analysis* predicts who the change concerns before switching;
4. the composites re-resolve their generic relationships to the new
   version; the *adaptation tracker* shows what still needs a human.

Run:  python examples/design_flow.py [IMAGE.json]

With an argument, the final database is saved as a JSON image — the
sample input for ``python -m repro metrics`` (see docs/observability.md).
"""

import sys

from repro.consistency import AdaptationTracker, change_impact, extension_impact
from repro.engine import save
from repro.versions import (
    DefaultSelection,
    GenericRelationship,
    StateGuard,
    VersionGraph,
    derive_version,
    diff_versions,
)
from repro.workloads import gate_database, make_implementation, make_interface


def main(image_path: str = None) -> None:
    db = gate_database("design-flow")
    guard = StateGuard(db)
    tracker = AdaptationTracker(db)
    rel = db.catalog.inheritance_type("AllOf_GateInterface")

    # -- v1 released, used by two composites ----------------------------------
    nand_v1 = make_interface(db, length=10, width=5)
    graph = VersionGraph(design_object=nand_v1, guard=guard)
    graph.add_version(nand_v1)
    graph.release(nand_v1)

    composites = []
    slots = []
    for i in range(2):
        composite = make_implementation(db, make_interface(db, length=100))
        slot = composite.subclass("SubGates").create(
            transmitter=nand_v1, GateLocation={"X": i, "Y": 0}
        )
        composites.append(composite)
        slots.append(slot)
    print(f"v1 (Length={nand_v1['Length']}) used by {len(composites)} composites")

    # -- derive and modify v2 ---------------------------------------------------
    nand_v2 = derive_version(graph, nand_v1)
    nand_v2.set_attribute("Length", 8)  # a shrink
    changes = diff_versions(nand_v1, nand_v2)
    print("diff v1 -> v2:")
    for entry in changes:
        print(f"  {entry}")

    # -- impact analysis before switching ----------------------------------------
    report = change_impact(nand_v1, "Length")
    print(report.summary())
    candidates = extension_impact(
        db.catalog.object_type("GateInterface"), "PowerDraw"
    )
    print(f"adding a new member would require opting in "
          f"{len(candidates)} relationship(s): "
          f"{[rel_type.name for rel_type in candidates]}")

    # -- switch the composites to v2 via generic re-resolution --------------------
    graph.set_default(nand_v2)
    for slot in slots:
        GenericRelationship(slot, rel, graph).re_resolve(DefaultSelection())
    assert all(slot["Length"] == 8 for slot in slots)
    print(f"both composites now see Length={slots[0]['Length']}")

    # -- late tweak of the in-design version flags every user ----------------------
    nand_v2.set_attribute("Width", 4)
    worklist = tracker.inheritors_needing_adaptation()
    print(f"adaptation worklist after the late tweak: {len(worklist)} slot(s)")
    for record in tracker.all_pending():
        print(f"  - {record.describe()}")
    for slot in slots:
        tracker.acknowledge(slot)
    graph.release(nand_v2)  # now immutable for everyone
    print(f"acknowledged; pending: {len(tracker.all_pending())}; v2 released")
    if image_path:
        save(db, image_path)
        print(f"saved image: {image_path}")
    print("done.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
