"""E3 — Figure 3: building composites through the component relationship.

Measures incorporating components into a composite: the inheritance
relationship pays O(1) per component regardless of component size, and the
same relationship type serves interface and component roles.
"""

import pytest

from repro.composition import add_component, components_of
from repro.workloads import (
    gate_database,
    make_implementation,
    make_interface,
)

COMPONENT_COUNTS = [5, 25, 100]


def fresh_composite(db):
    return make_implementation(db, make_interface(db, length=200, width=100))


class TestIncorporation:
    @pytest.mark.parametrize("n_components", COMPONENT_COUNTS)
    def test_add_components(self, benchmark, n_components):
        db = gate_database("fig3-bench")
        component_if = make_interface(db)

        def setup():
            return (fresh_composite(db),), {}

        def incorporate(composite):
            for i in range(n_components):
                add_component(
                    composite, "SubGates", component_if,
                    GateLocation={"X": i, "Y": 0},
                )

        benchmark.pedantic(incorporate, setup=setup, rounds=5)

    @pytest.mark.parametrize("component_pins", [3, 30, 120])
    def test_add_component_size_independent(self, benchmark, component_pins):
        """Incorporation cost must not grow with component size (the data
        is linked, not moved)."""
        db = gate_database("fig3-bench")
        component_if = make_interface(
            db, n_in=component_pins - 1, n_out=1
        )

        def setup():
            return (fresh_composite(db),), {}

        def incorporate(composite):
            add_component(composite, "SubGates", component_if,
                          GateLocation={"X": 0, "Y": 0})

        benchmark.pedantic(incorporate, setup=setup, rounds=20)


class TestCompositeInspection:
    @pytest.mark.parametrize("n_components", COMPONENT_COUNTS)
    def test_components_of(self, benchmark, n_components):
        db = gate_database("fig3-bench")
        composite = fresh_composite(db)
        component_if = make_interface(db)
        for i in range(n_components):
            add_component(composite, "SubGates", component_if,
                          GateLocation={"X": i, "Y": 0})
        result = benchmark(components_of, composite)
        assert len(result) == n_components

    @pytest.mark.parametrize("n_components", COMPONENT_COUNTS)
    def test_read_all_component_data(self, benchmark, n_components):
        """Touch every slot's inherited Length (the composite's view)."""
        db = gate_database("fig3-bench")
        composite = fresh_composite(db)
        component_if = make_interface(db)
        for i in range(n_components):
            add_component(composite, "SubGates", component_if,
                          GateLocation={"X": i, "Y": 0})

        def read_all():
            return sum(slot["Length"] for slot in composite["SubGates"])

        benchmark(read_all)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_components = 5 if suite.quick else 25

    @suite.case("add_component[30pins]")
    def add_case():
        db = gate_database("fig3-bench")
        component_if = make_interface(db, n_in=29, n_out=1)
        composite = fresh_composite(db)
        return lambda: add_component(
            composite, "SubGates", component_if, GateLocation={"X": 0, "Y": 0}
        )

    @suite.case(f"components_of[{n_components}]")
    def inspect_case():
        db = gate_database("fig3-bench")
        composite = fresh_composite(db)
        component_if = make_interface(db)
        for i in range(n_components):
            add_component(
                composite, "SubGates", component_if,
                GateLocation={"X": i, "Y": 0},
            )
        return lambda: components_of(composite)

    @suite.case(f"read_all_component_data[{n_components}]")
    def read_case():
        db = gate_database("fig3-bench")
        composite = fresh_composite(db)
        component_if = make_interface(db)
        for i in range(n_components):
            add_component(
                composite, "SubGates", component_if,
                GateLocation={"X": i, "Y": 0},
            )
        return lambda: sum(slot["Length"] for slot in composite["SubGates"])
