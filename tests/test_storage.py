"""Slotted storage and compiled expressions: oracle equivalence.

The storage engine change has two halves with an explicit testing oracle
each:

* **slots vs dicts** — ``obj._attrs`` (an :class:`~repro.core.slots.AttrsView`
  over the type's column store) must behave exactly like the raw dict it
  replaced, through creation, mutation, transaction abort, version-guard
  revert, deletion and schema-epoch migration;
* **compiled vs tree walk** — compiled slot programs
  (:mod:`repro.expr.compile`) must agree with ``Node.evaluate`` on values
  *and* on errors, and the batch executor / constraint sweep built on them
  must agree with their interpretive ``compiled=False`` modes.

Hypothesis drives randomized schemas, values and mutation scripts at both
oracles; the deterministic classes pin the epoch-bump migration rules.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import resolution
from repro.core.attributes import AttributeSpec
from repro.core.domains import ANY, INTEGER
from repro.core.slots import UNSET, AttrsView, store_for
from repro.engine import Database
from repro.engine.integrity import sweep_constraints
from repro.errors import (
    ConstraintViolation,
    ExprEvaluationError,
    UnknownAttributeError,
    VersionError,
)
from repro.expr import EvalContext, parse_expression, truthy
from repro.expr.compile import (
    cache_stats,
    compile_info,
    compiled_for,
    invalidate_cache,
)
from repro.query.executor import run_query
from repro.txn.transactions import TransactionManager
from repro.versions import StateGuard

_SEQ = iter(range(10**9))


def fresh_db(constraints=None):
    """A database with one slotted Part type and a Parts class."""
    db = Database(f"storage-{next(_SEQ)}")
    db.indexes.auto = False
    db.catalog.define_object_type(
        "Part",
        attributes={"A": ANY, "B": ANY, "C": ANY},
        constraints=constraints or [],
    )
    db.create_class("Parts", "Part")
    return db


# ---------------------------------------------------------------------------
# deterministic: AttrsView dict semantics
# ---------------------------------------------------------------------------


class TestAttrsView:
    def test_view_behaves_like_a_dict(self):
        db = fresh_db()
        obj = db.create_object("Part", class_name="Parts", A=1, B="x")
        view = obj._attrs
        assert isinstance(view, AttrsView)
        assert view["A"] == 1 and view["B"] == "x"
        assert "C" not in view
        with pytest.raises(KeyError):
            view["C"]
        assert sorted(view) == ["A", "B"]
        assert len(view) == 2
        assert view.to_dict() == {"A": 1, "B": "x"}
        assert view == {"A": 1, "B": "x"}

    def test_raw_writes_bypass_validation_and_events(self):
        db = fresh_db()
        obj = db.create_object("Part", class_name="Parts", A=1)
        obj._attrs["C"] = 99
        assert obj.get_member("C") == 99
        del obj._attrs["A"]
        assert "A" not in obj._attrs
        with pytest.raises(KeyError):
            del obj._attrs["A"]

    def test_undeclared_name_goes_to_overflow(self):
        db = fresh_db()
        obj = db.create_object("Part", class_name="Parts", A=1)
        obj._attrs["Zig"] = 7  # no slot — raw writes land in overflow
        assert obj._attrs["Zig"] == 7
        assert "Zig" not in store_for(obj.object_type).slot_of
        assert obj._overflow == {"Zig": 7}

    def test_deleted_object_keeps_last_values(self):
        db = fresh_db()
        obj = db.create_object("Part", class_name="Parts", A=5, B=6)
        row = obj._row
        obj.delete()
        assert obj._row == -1
        # Spilled to overflow: the view still reports the last local state.
        assert obj._attrs.to_dict() == {"A": 5, "B": 6}
        # The row is recycled and starts clean.
        other = db.create_object("Part", class_name="Parts")
        assert other._row == row
        assert other._attrs.to_dict() == {}


# ---------------------------------------------------------------------------
# deterministic: schema-epoch migration
# ---------------------------------------------------------------------------


class TestEpochMigration:
    def test_values_survive_unrelated_epoch_bump(self):
        db = fresh_db()
        obj = db.create_object("Part", class_name="Parts", A=1, B=2, C=3)
        resolution.bump_schema_epoch()
        assert obj.get_member("A") == 1
        assert obj._attrs.to_dict() == {"A": 1, "B": 2, "C": 3}

    def test_new_attribute_gets_fresh_column(self):
        db = fresh_db()
        part = db.catalog.object_type("Part")
        obj = db.create_object("Part", class_name="Parts", A=1)
        part.attributes["D"] = AttributeSpec("D", INTEGER, default=42)
        resolution.bump_schema_epoch()
        # The default is visible through the member protocol, the raw view
        # still shows only stored values.
        assert obj.get_member("D") == 42
        assert "D" not in obj._attrs
        obj.set_attribute("D", 7)
        assert obj._attrs["D"] == 7 and obj.get_member("A") == 1

    def test_migration_moves_columns_by_name_zero_copy(self):
        db = fresh_db()
        part = db.catalog.object_type("Part")
        db.create_object("Part", class_name="Parts", A=1, B=2)
        store = store_for(part)
        column_a = store.columns[store.slot_of["A"]]
        part.attributes["D"] = AttributeSpec("D", INTEGER)
        resolution.bump_schema_epoch()
        refreshed = store_for(part)
        assert refreshed is store
        # Same column list object — values moved by name without copying.
        assert refreshed.columns[refreshed.slot_of["A"]] is column_a
        assert "D" in refreshed.slot_of

    def test_dropped_attribute_keeps_trailing_column(self):
        db = fresh_db()
        part = db.catalog.object_type("Part")
        obj = db.create_object("Part", class_name="Parts", A=1, C=9)
        del part.attributes["C"]
        resolution.bump_schema_epoch()
        # No longer a member, but the stored value outlives the schema
        # change (dict semantics: the key stayed in the dict).
        with pytest.raises(UnknownAttributeError):
            obj.get_member("C")
        assert obj._attrs["C"] == 9

    def test_compiled_programs_recompile_after_bump(self):
        db = fresh_db()
        part = db.catalog.object_type("Part")
        node = parse_expression("A > 10")
        before = compiled_for(node, part)
        assert compiled_for(node, part) is before  # cache hit
        resolution.bump_schema_epoch()
        after = compiled_for(node, part)
        assert after is not before  # epoch invalidated the program
        obj = db.create_object("Part", class_name="Parts", A=11)
        assert after.predicate(obj) is True


# ---------------------------------------------------------------------------
# compiled programs vs the tree-walking interpreter
# ---------------------------------------------------------------------------

#: Expression shapes covering slot reads, arithmetic, comparisons (and
#: their error paths), logic, membership, dynamic names and surrogates.
EXPR_SOURCES = [
    "A = 5",
    "A != B",
    "A > B",
    "A <= C",
    "A + B = C",
    "A * 2 > B - 1",
    "A / B > 1",
    "A % B = 0",
    "-A < B",
    "A > 0 and B > 0",
    "A > 0 or not (B > 0)",
    "A in B",
    "A not in B",
    "Nope = 3",
    "A = Nope",
    "surrogate = A",
]

values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["x", "y", "5", ""]),
    st.booleans(),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)


def outcome(thunk):
    try:
        return ("value", thunk())
    except ExprEvaluationError as exc:
        return ("error", type(exc).__name__, str(exc))


@pytest.fixture(scope="module")
def oracle_db():
    db = fresh_db()
    obj = db.create_object("Part", class_name="Parts")
    return db, obj


class TestCompiledMatchesInterpreter:
    @settings(max_examples=150, deadline=None)
    @given(
        source=st.sampled_from(EXPR_SOURCES),
        a=values, b=values, c=values,
        unset=st.sets(st.sampled_from(["A", "B", "C"]), max_size=2),
    )
    def test_expression_oracle(self, oracle_db, source, a, b, c, unset):
        db, obj = oracle_db
        for name, value in (("A", a), ("B", b), ("C", c)):
            if name in unset:
                obj._attrs.pop(name, None)
            else:
                obj._attrs[name] = value
        node = parse_expression(source)
        program = compiled_for(node, obj.object_type)
        walked = outcome(lambda: node.evaluate(EvalContext(obj)))
        compiled = outcome(lambda: program.expression(obj))
        assert compiled == walked
        if walked[0] == "value":
            assert program.predicate(obj) == truthy(walked[1])
            # The batch scan agrees with the per-object predicate (or
            # bails to it, which the executor treats identically).
            scan = program.scan([obj])
            if scan is not None:
                scanned, matched = scan
                assert scanned == 1
                assert (obj in matched) == truthy(walked[1])

    def test_compile_info_reasons(self, oracle_db):
        db, obj = oracle_db
        part = obj.object_type
        assert compile_info(parse_expression("A > 10"), part).fast
        info = compile_info(parse_expression("Nope = 3"), part)
        assert "dynamic-name" in info.kinds()
        info = compile_info(parse_expression("count(Items) = 2"), part)
        assert "aggregate" in info.kinds()

    def test_cache_hits_for_repeated_query_text(self, oracle_db):
        db, obj = oracle_db
        run_query(db, "select * from Parts where A = 5")
        before = cache_stats()["expr.compiled"]
        run_query(db, "select * from Parts where A = 5")
        assert cache_stats()["expr.compiled"] == before


# ---------------------------------------------------------------------------
# randomized mutation scripts: slots behave like the old dicts
# ---------------------------------------------------------------------------

mutation_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 4),
                  st.sampled_from(["A", "B", "C"]), values),
        st.tuples(st.just("txn-commit"), st.integers(0, 4),
                  st.sampled_from(["A", "B", "C"]), values),
        st.tuples(st.just("txn-abort"), st.integers(0, 4),
                  st.sampled_from(["A", "B", "C"]), values),
        st.tuples(st.just("delete"), st.integers(0, 4)),
        st.tuples(st.just("frozen-write"), st.integers(0, 4),
                  st.sampled_from(["A", "B", "C"]), values),
    ),
    max_size=12,
)


class TestMutationScripts:
    @settings(max_examples=40, deadline=None)
    @given(ops=mutation_ops, query=st.sampled_from(
        ["A > 0", "A = B", "B != C", "A in B"]))
    def test_script_matches_shadow_dicts(self, ops, query):
        db = fresh_db()
        txns = TransactionManager(db)
        guard = StateGuard(db)
        objects = [
            db.create_object("Part", class_name="Parts", A=i) for i in range(5)
        ]
        shadow = [{"A": i} for i in range(5)]
        alive = [True] * 5
        frozen = [False] * 5

        for op in ops:
            kind, index = op[0], op[1]
            obj = objects[index]
            if kind == "delete":
                if alive[index]:
                    obj.delete()
                    alive[index] = False
                continue
            if not alive[index]:
                continue
            name, value = op[2], op[3]
            if kind == "set" and not frozen[index]:
                obj.set_attribute(name, value)
                shadow[index][name] = value
            elif kind == "txn-commit" and not frozen[index]:
                with txns.begin() as txn:
                    txn.set(obj, name, value)
                shadow[index][name] = value
            elif kind == "txn-abort" and not frozen[index]:
                txn = txns.begin()
                txn.set(obj, name, value)
                txn.abort()  # undo restores the previous slot state
            elif kind == "frozen-write":
                if not frozen[index]:
                    guard.freeze(obj)
                    frozen[index] = True
                with pytest.raises(VersionError):
                    obj.set_attribute(name, value)  # guard reverts the write

        for obj, expect, live in zip(objects, shadow, alive):
            if live:
                assert obj._attrs.to_dict() == expect

        fast = outcome(lambda: run_query(
            db, f"select * from Parts where {query}", compiled=True))
        slow = outcome(lambda: run_query(
            db, f"select * from Parts where {query}", compiled=False))
        if fast[0] == "value":
            assert slow[0] == "value"
            assert [o.surrogate for o in fast[1].objects] == [
                o.surrogate for o in slow[1].objects
            ]
        else:
            assert fast == slow


# ---------------------------------------------------------------------------
# executor + sweep equivalence
# ---------------------------------------------------------------------------


class TestExecutorOracle:
    @settings(max_examples=30, deadline=None)
    @given(weights=st.lists(values, min_size=0, max_size=20),
           text=st.sampled_from([
               "select * from Parts where A > 5",
               "select A, B from Parts where A != B order by A limit 4",
               "select distinct A from Parts",
               "select * from Parts where A in B order by A desc limit 3",
           ]))
    def test_compiled_equals_interpreted(self, weights, text):
        db = fresh_db()
        for i, w in enumerate(weights):
            db.create_object("Part", class_name="Parts", A=w, B=i % 3)
        fast = outcome(lambda: run_query(db, text, compiled=True))
        slow = outcome(lambda: run_query(db, text, compiled=False))
        if fast[0] == "value":
            assert slow[0] == "value"
            assert fast[1].rows == slow[1].rows or [
                r for r in fast[1].rows
            ] == [r for r in slow[1].rows]
        else:
            assert fast == slow


class TestSweepOracle:
    def _violation_keys(self, violations):
        return [(v.subject.surrogate, v.detail) for v in violations]

    @settings(max_examples=30, deadline=None)
    @given(weights=st.lists(
        st.one_of(st.integers(-5, 5), st.sampled_from(["x", None])),
        min_size=0, max_size=15,
    ))
    def test_sweep_matches_naive(self, weights):
        db = fresh_db(constraints=["A >= 0", "A <= 10"])
        for w in weights:
            obj = db.create_object("Part", class_name="Parts")
            obj._attrs["A"] = w  # raw write skips creation-time checking
        compiled = sweep_constraints(db, compiled=True)
        naive = sweep_constraints(db, compiled=False)
        assert self._violation_keys(compiled) == self._violation_keys(naive)
        for violation in compiled:
            assert violation.kind == "constraint"
            assert violation.code == "REP006"

    def test_clean_sweep_is_empty(self):
        db = fresh_db(constraints=["A >= 0"])
        for i in range(20):
            db.create_object("Part", class_name="Parts", A=i)
        assert sweep_constraints(db, compiled=True) == []
        assert sweep_constraints(db, compiled=False) == []

    def test_constraint_holds_uses_compiled_path(self):
        db = fresh_db(constraints=["A >= 0"])
        obj = db.create_object("Part", class_name="Parts", A=1)
        constraint = obj.object_type.constraints[0]
        assert constraint.holds(obj) is True
        assert constraint.naive_holds(obj) is True
        obj._attrs["A"] = -1
        assert constraint.holds(obj) is False
        assert constraint.naive_holds(obj) is False


# ---------------------------------------------------------------------------
# interning
# ---------------------------------------------------------------------------


class TestInterning:
    def test_parsed_identifiers_are_interned(self):
        left = parse_expression("Weight > 3")
        right = parse_expression("Weight < 9")
        assert left.left.identifier is right.left.identifier

    def test_catalog_exposes_shared_pool(self):
        db1, db2 = fresh_db(), fresh_db()
        assert db1.catalog.interning is db2.catalog.interning
        stats = db1.catalog.interning.stats()
        assert stats["interning.names"] > 0

    def test_store_keys_are_interned(self):
        db = fresh_db()
        part = db.catalog.object_type("Part")
        store = store_for(part)
        probe = parse_expression("A = 1").left.identifier
        assert any(key is probe for key in store.slot_of)
