"""Impact analysis for interface changes (§4.2).

*"In reality, interfaces do change, thus we have to handle these changes.
Not all changes of interfaces concern all objects using the interface: If a
new function is added to a module, this does not affect superior modules
which do not need this function."*

This module answers, before a change is made, exactly who would be
concerned:

* :func:`change_impact` — for a change to an *existing* member of a design
  object: every object that sees the value through a chain of permeable
  inheritance links, and the composite objects enclosing affected component
  subobjects;
* :func:`extension_impact` — for a *new* member added to a type: since the
  ``inheriting:`` clauses are explicit lists, a new member flows nowhere
  until a relationship opts in — the report lists the relationship types
  (and their known inheritor types) that *could* be extended;
* :func:`affected_types` — the type-level closure of a member change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from ..core.inheritance import InheritanceRelationshipType
from ..core.objects import DBObject, InheritanceLink
from ..core.objtype import TypeBase
from ..core.surrogate import Surrogate

__all__ = ["ImpactReport", "change_impact", "extension_impact", "affected_types"]


@dataclass
class ImpactReport:
    """Who a change to ``subject``'s ``member`` would concern."""

    subject: DBObject
    member: str
    #: Objects that read the member through permeable links, with the link
    #: chain that carries the value to them.
    affected: List[Tuple[DBObject, Tuple[InheritanceLink, ...]]] = field(
        default_factory=list
    )
    #: Composite objects enclosing affected component subobjects.
    composites: List[DBObject] = field(default_factory=list)

    @property
    def is_isolated(self) -> bool:
        """True when the change concerns nobody but the subject."""
        return not self.affected

    def summary(self) -> str:
        return (
            f"changing {self.member!r} of {self.subject!r} affects "
            f"{len(self.affected)} object(s) and {len(self.composites)} "
            f"enclosing composite(s)"
        )


def change_impact(subject: DBObject, member: str) -> ImpactReport:
    """Every object concerned by a change to ``subject.member``.

    Walks inheritor links transitively, following only links whose
    ``inheriting`` clause carries the member — the §4.2 point that changes
    reach exactly the objects that *need* the member, nobody else.
    """
    report = ImpactReport(subject, member)
    seen: Set[Surrogate] = set()
    composite_seen: Set[Surrogate] = set()
    stack: List[Tuple[DBObject, Tuple[InheritanceLink, ...]]] = [(subject, ())]
    while stack:
        current, chain = stack.pop()
        for link in current.inheritor_links:
            if not link.rel_type.is_permeable(member):
                continue
            inheritor = link.inheritor
            if inheritor.surrogate in seen:
                continue
            seen.add(inheritor.surrogate)
            full_chain = chain + (link,)
            report.affected.append((inheritor, full_chain))
            owner = inheritor.parent
            while owner is not None:
                if owner.surrogate not in composite_seen:
                    composite_seen.add(owner.surrogate)
                    report.composites.append(owner)
                owner = owner.parent
            stack.append((inheritor, full_chain))
    return report


def affected_types(type_: TypeBase, member: str) -> List[TypeBase]:
    """Types whose instances may see ``member`` of ``type_`` by inheritance.

    The schema-level closure: follow inheritance-relationship types that
    list the member, through their known inheritor types, transitively.
    """
    found: List[TypeBase] = []
    seen: Set[int] = {id(type_)}
    stack: List[TypeBase] = [type_]
    while stack:
        current = stack.pop()
        for rel in _rel_types_transmitting(current):
            if not rel.is_permeable(member):
                continue
            for inheritor_type in rel.known_inheritor_types:
                if id(inheritor_type) in seen:
                    continue
                seen.add(id(inheritor_type))
                found.append(inheritor_type)
                stack.append(inheritor_type)
    return found


def _rel_types_transmitting(type_: TypeBase) -> List[InheritanceRelationshipType]:
    """Inheritance-relationship types whose transmitter is ``type_``.

    Every InheritanceRelationshipType registers itself with its transmitter
    type at definition time, so this is a direct registry read.
    """
    return list(getattr(type_, "_transmitting_rel_types", []))


def extension_impact(
    type_: TypeBase, new_member: str
) -> List[InheritanceRelationshipType]:
    """Relationship types that could expose a *new* member of ``type_``.

    Because permeability lists are explicit, adding a member affects nobody
    until a relationship's ``inheriting:`` clause is extended; the §4.2
    example — a new function added to a module "does not affect superior
    modules which do not need this function" — falls out directly.  The
    returned relationships are the candidates a schema designer would
    consider extending.
    """
    return [
        rel
        for rel in _rel_types_transmitting(type_)
        if not rel.is_permeable(new_member)
    ]
