"""Snapshots, rendering and the standard workout for ``repro metrics``.

:func:`snapshot` freezes an observed database's registry (plus tap state)
into the stable ``repro.metrics/1`` JSON shape documented in
``docs/observability.md``; :func:`render_table` prints the same data as an
aligned text table.  :func:`exercise` drives the engine's instrumented
paths over an already-loaded database — inherited reads, update
propagation, the materialising cache, lock plans and a lock table — so a
freshly loaded image yields meaningful counters instead of zeros.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.resolution import resolution_stats
from ..errors import ReproError

__all__ = ["SCHEMA_VERSION", "snapshot", "render_table", "exercise", "derived_stats"]

SCHEMA_VERSION = "repro.metrics/1"


# ---------------------------------------------------------------------------
# snapshot
# ---------------------------------------------------------------------------

def _event_summary(event) -> Dict[str, Any]:
    return {
        "seq": event.seq,
        "ts": event.ts,
        "cause": event.cause,
        "trace": event.trace,
        "kind": event.kind,
        "subject": repr(event.subject),
        "data": {key: repr(value) for key, value in event.data.items()},
    }


def snapshot(db, include_events: bool = True) -> Dict[str, Any]:
    """The ``repro.metrics/1`` dictionary for an observed database."""
    obs = getattr(db, "obs", None)
    if obs is None:
        raise ReproError(
            f"database {db.name!r} has no observability attached "
            f"(create it with observe=True or call enable_observability())"
        )
    data = obs.metrics.as_dict()
    gauges = dict(data["gauges"])
    # Fold in the process-global resolution-plan statistics (plans are
    # compiled per type, not per database, so they live outside the
    # registry; see repro.core.resolution).
    gauges.update(resolution_stats())
    # And the database's index-manager statistics: index maintenance runs
    # whether or not observability is attached, so the authoritative
    # counts live on the manager and are surfaced here as gauges
    # (index.hits / index.misses / index.maintenance / …).
    indexes = getattr(db, "indexes", None)
    if indexes is not None:
        gauges.update(indexes.stats_snapshot())
    # Same for the materialized-view manager (query.view.hits / misses /
    # refreshes / staleness / …).
    views = getattr(db, "views", None)
    if views is not None:
        gauges.update(views.stats_snapshot())
    result: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "database": db.name,
        "objects": db.count(),
        "counters": data["counters"],
        "gauges": gauges,
        "histograms": data["histograms"],
    }
    if include_events:
        result["events"] = {
            "ring_size": obs.tap.ring.maxlen,
            "recent": [_event_summary(event) for event in obs.tap.ring],
        }
    return result


def derived_stats(snap: Dict[str, Any]) -> Dict[str, Any]:
    """Headline figures computed from a snapshot (used by reports).

    ``cache_hit_rate`` is hits/(hits+misses) or None; ``lock_waits`` is the
    conflict count (the non-blocking manager's equivalent of a wait);
    ``propagation_mean_fanout`` comes from the fan-out histogram.
    """
    counters = snap.get("counters", {})
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    fanout = snap.get("histograms", {}).get("propagation.fanout")
    return {
        "propagation_updates": counters.get("propagation.updates", 0),
        "propagation_fanout_total": counters.get("propagation.fanout_total", 0),
        "propagation_mean_fanout": fanout["mean"] if fanout else None,
        "lock_acquisitions": counters.get("locks.acquired", 0),
        "lock_waits": counters.get("locks.conflicts", 0),
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_rate": hits / (hits + misses) if hits + misses else None,
        "inherited_reads": counters.get("reads.inherited", 0),
        "queries": counters.get("query.executed", 0),
    }


# ---------------------------------------------------------------------------
# table rendering
# ---------------------------------------------------------------------------

def _rows(table: Dict[str, Any]) -> List[str]:
    if not table:
        return ["  (none)"]
    width = max(len(name) for name in table)
    return [f"  {name.ljust(width)}  {value}" for name, value in table.items()]


def render_table(snap: Dict[str, Any]) -> str:
    """Aligned text rendering of a snapshot for terminal output."""
    lines: List[str] = [
        f"database: {snap['database']} ({snap.get('objects', '?')} objects)",
        "",
        "counters:",
        *_rows(snap.get("counters", {})),
        "",
        "gauges:",
        *_rows(snap.get("gauges", {})),
        "",
        "histograms:",
    ]
    histograms = snap.get("histograms", {})
    if not histograms:
        lines.append("  (none)")
    for name, hist in histograms.items():
        lines.append(
            f"  {name}  count={hist['count']} sum={hist['sum']} "
            f"min={hist['min']} max={hist['max']} mean={hist['mean']}"
        )
        if hist.get("p50") is not None:
            lines.append(
                f"    p50={hist['p50']} p95={hist['p95']} p99={hist['p99']} "
                f"(over {hist.get('sampled', '?')} sampled)"
            )
        buckets = " ".join(
            f"≤{bucket['le']}:{bucket['count']}"
            for bucket in hist["buckets"]
            if bucket["count"]
        )
        if hist.get("inf"):
            buckets = (buckets + f" +Inf:{hist['inf']}").strip()
        if buckets:
            lines.append(f"    {buckets}")
    events = snap.get("events")
    if events is not None:
        lines += ["", f"recent events ({len(events['recent'])} buffered):"]
        for entry in events["recent"][-10:]:
            cause = (
                f" <-#{entry['cause']}" if entry.get("cause") is not None else ""
            )
            lines.append(
                f"  #{entry['seq']} {entry['kind']} {entry['subject']}{cause}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the standard workout
# ---------------------------------------------------------------------------

def exercise(db) -> None:
    """Drive every instrumented path once over a loaded database.

    Touches only existing state: inherited members are read, transmitters
    re-assert one already-stored permeable value (which exercises the
    propagation walk without changing any data), the materialising cache
    is filled and re-read, and lock plans/acquisitions run inside a scratch
    lock table that is torn down afterwards.
    """
    from ..composition.cache import InheritedValueCache
    from ..composition.composite import component_subobjects, expand
    from ..engine.integrity import check_integrity
    from ..txn.lock_inheritance import expansion_lock_plan, inherited_lock_plan
    from ..txn.locks import LockMode, LockTable

    obs = getattr(db, "obs", None)
    if obs is None:
        raise ReproError("exercise() needs an observed database")
    objects = [obj for obj in db.objects() if not obj.deleted]

    with obs.span("obs.exercise", objects=len(objects)):
        with obs.span("exercise.integrity"):
            check_integrity(db)

        # Inherited reads: every visible member of every object.
        with obs.span("exercise.reads"):
            for obj in objects:
                for name in obj.visible_member_names():
                    try:
                        obj.get_member(name)
                    except ReproError:
                        continue

        # Update propagation: each transmitter re-asserts one permeable
        # local value, so the tap measures the real fan-out of the image.
        with obs.span("exercise.propagation"):
            for obj in objects:
                if not obj.inheritor_links:
                    continue
                for name, value in obj.local_attributes().items():
                    if any(
                        link.rel_type.is_permeable(name)
                        for link in obj.inheritor_links
                    ):
                        try:
                            obj.set_attribute(name, value)
                        except ReproError:
                            continue
                        break

        # The materialising cache: one cold pass (misses) + one warm (hits).
        with obs.span("exercise.cache"):
            cache = InheritedValueCache(db)
            try:
                for _ in range(2):
                    for obj in objects:
                        for link in obj.inheritance_links:
                            for member in link.rel_type.inheriting:
                                try:
                                    cache.get(obj, member)
                                except ReproError:
                                    continue
            finally:
                cache.detach()

        # Lock plans and acquisitions over a scratch table.
        with obs.span("exercise.locks"):
            table = LockTable(obs=obs)
            for obj in objects:
                table.acquire(1, obj.surrogate, LockMode.S)
                for transmitter, scope in inherited_lock_plan(obj):
                    table.acquire(1, transmitter.surrogate, LockMode.S, scope)
            table.release_all(1)
            for obj in objects:
                if obj.parent is None and component_subobjects(obj):
                    expansion_lock_plan(obj)
                    expand(obj)
