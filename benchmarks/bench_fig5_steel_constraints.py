"""E5 — Figure 5 / §5: constraint checking on weight-carrying structures.

The §5 schema concentrates the expression engine's features: quantified
constraints over relationship subclasses and participants, aggregates, and
the structure-level where restriction.  Expected shape: deep checking
grows linearly with the number of screwings; the where restriction is paid
once per screwing creation.
"""

import pytest

from repro.workloads import generate_structure, steel_database

SCREWING_COUNTS = [4, 16, 64]


class TestSteelConstruction:
    @pytest.mark.parametrize("n_screwings", SCREWING_COUNTS)
    def test_generate_structure(self, benchmark, n_screwings):
        def build():
            db = steel_database("fig5-bench")
            return generate_structure(
                db, n_girders=4, n_plates=4, n_screwings=n_screwings
            )

        structure, screwings = benchmark(build)
        assert len(screwings) == n_screwings


class TestSteelConstraintChecking:
    @pytest.mark.parametrize("n_screwings", SCREWING_COUNTS)
    def test_deep_structure_check(self, benchmark, n_screwings):
        db = steel_database("fig5-bench")
        structure, _ = generate_structure(
            db, n_girders=4, n_plates=4, n_screwings=n_screwings
        )
        benchmark(structure.check_constraints, True)

    def test_single_screwing_check(self, benchmark):
        """One full ScrewingType evaluation: two counts, the nested
        quantifier, the aggregate sum."""
        db = steel_database("fig5-bench")
        _, screwings = generate_structure(db, 1, 1, 1)
        benchmark(screwings[0].check_constraints)

    @pytest.mark.parametrize("n_bores", [2, 8, 32])
    def test_where_restriction_cost(self, benchmark, n_bores):
        """The structure-level `for x in Bores: …` restriction vs. the
        number of bores a screwing joins."""
        db = steel_database("fig5-bench")
        structure, _ = generate_structure(db, 1, 1, 1)
        girder_if = structure.subclass("Girders").members()[0] \
            .inheritance_links[0].transmitter
        bores = [
            girder_if.subclass("Bores").create(Diameter=12, Length=5)
            for _ in range(n_bores)
        ]

        def create_and_discard():
            screwing = structure.subrel("Screwings").create(
                {"Bores": bores}, Strength=1
            )
            screwing.delete()

        benchmark(create_and_discard)


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_screwings = 4 if suite.quick else 16

    @suite.case(f"deep_structure_check[{n_screwings}]")
    def deep_case():
        db = steel_database("fig5-bench")
        structure, _ = generate_structure(
            db, n_girders=4, n_plates=4, n_screwings=n_screwings
        )
        return lambda: structure.check_constraints(True)

    @suite.case("single_screwing_check")
    def single_case():
        db = steel_database("fig5-bench")
        _, screwings = generate_structure(db, 1, 1, 1)
        return lambda: screwings[0].check_constraints()
