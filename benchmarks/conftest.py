"""Shared benchmark fixtures and scale parameters.

Every benchmark regenerates one experiment of DESIGN.md's index (E1–E9).
Scales are kept laptop-friendly; the *shapes* (who wins, how costs grow)
are what EXPERIMENTS.md records, not absolute numbers.

Benches that opt into observability (see ``obs_hook``) have their metric
snapshots merged and written to ``--obs-json=PATH`` at session end, so a
benchmark run can emit propagation/lock/cache summaries alongside timings.
"""

import json

import pytest

from repro.workloads import gate_database, steel_database

from benchmarks import obs_hook


def pytest_addoption(parser):
    parser.addoption(
        "--obs-json",
        default=None,
        help="write merged observability snapshots from observed benches "
        "to this path (see benchmarks/obs_hook.py)",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--obs-json", default=None)
    if path and obs_hook.collected:
        with open(path, "w") as f:
            json.dump(obs_hook.merged(), f, indent=1)


@pytest.fixture
def db():
    return gate_database("bench")


@pytest.fixture
def steel_db():
    return steel_database("bench-steel")
