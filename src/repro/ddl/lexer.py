"""Tokenizer for the paper's schema-definition language.

The DDL is the syntax of the paper's listings::

    domain I/O = (IN, OUT);
    obj-type SimpleGate:
        attributes: ...
        constraints: ...
    end SimpleGate;
    rel-type WireType = relates: ... end WireType;
    inher-rel-type AllOf_GateInterface = transmitter: ... end;

Lexical peculiarities handled here:

* hyphenated keywords (``obj-type``, ``types-of-subclasses``,
  ``object-of-type``, ``end-domain``, ``inheritor-in`` …) are single
  tokens — identifiers may contain hyphens after the first letter;
* the domain name ``I/O`` contains a slash; a slash directly between two
  identifier characters is part of the name;
* ``/* ... */`` comments are skipped (replaced by nothing, positions kept
  by tracking offsets);
* constraint and ``where`` bodies are *not* tokenised into structure here —
  the parser captures their raw source text (via token offsets) and hands
  it to :mod:`repro.expr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import DDLSyntaxError

__all__ = ["DdlToken", "tokenize_ddl", "KEYWORDS"]

#: Structural keywords, recognised case-insensitively.
KEYWORDS = frozenset(
    [
        "domain",
        "end-domain",
        "obj-type",
        "rel-type",
        "inher-rel-type",
        "end",
        "attributes",
        "types-of-subclasses",
        "types-of-subrels",
        "connections",  # the paper's GateImplementation uses this spelling
        "constraints",
        "relates",
        "transmitter",
        "inheritor",
        "inheriting",
        "inheritor-in",
        "where",
        "object-of-type",
        "object",
        "set-of",
        "list-of",
        "matrix-of",
        "record",
    ]
)

_PUNCT = "=:;,()."


@dataclass(frozen=True)
class DdlToken:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    position: int  # character offset in the (comment-stripped) source
    line: int

    def is_op(self, *texts: str) -> bool:
        return self.kind == "OP" and self.text in texts

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.text in words


def strip_comments(source: str) -> str:
    """Replace ``/* ... */`` comments with spaces (offsets preserved)."""
    out = list(source)
    i = 0
    while i < len(source) - 1:
        if source[i] == "/" and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                raise DDLSyntaxError("unterminated comment", line=source.count("\n", 0, i) + 1)
            for j in range(i, end + 2):
                if out[j] != "\n":
                    out[j] = " "
            i = end + 2
        else:
            i += 1
    return "".join(out)


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize_ddl(raw_source: str) -> List[DdlToken]:
    """Tokenise DDL source (comments removed, EOF token appended)."""
    source = strip_comments(raw_source)
    tokens: List[DdlToken] = []
    i = 0
    line = 1
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = source.find(ch, i + 1)
            if end < 0:
                raise DDLSyntaxError("unterminated string literal", line=line)
            tokens.append(DdlToken("STRING", source[i + 1 : end], i, line))
            i = end + 1
            continue
        if ch.isdigit():
            start = i
            while i < length and (source[i].isdigit() or source[i] == "."):
                i += 1
            tokens.append(DdlToken("NUMBER", source[start:i], start, line))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            i += 1
            while i < length:
                current = source[i]
                if _is_ident_char(current):
                    i += 1
                    continue
                # Hyphen inside a word: part of hyphenated keywords/names.
                if current == "-" and i + 1 < length and source[i + 1].isalpha():
                    i += 1
                    continue
                # Slash glued between identifier characters: the I/O domain.
                if (
                    current == "/"
                    and i + 1 < length
                    and _is_ident_char(source[i + 1])
                    and _is_ident_char(source[i - 1])
                ):
                    i += 1
                    continue
                break
            word = source[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(DdlToken("KEYWORD", lowered, start, line))
            else:
                tokens.append(DdlToken("IDENT", word, start, line))
            continue
        if ch in _PUNCT or ch in "<>#+-*/%!":
            tokens.append(DdlToken("OP", ch, i, line))
            i += 1
            continue
        raise DDLSyntaxError(f"unexpected character {ch!r}", line=line)
    tokens.append(DdlToken("EOF", "", length, line))
    return tokens
