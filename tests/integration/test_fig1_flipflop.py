"""E1 — Figure 1: the complex object type Gate and the "Flip-Flop" object.

A Gate owns external Pins, SubGates (ElementaryGates, themselves complex),
and a local relationship subclass Wires that may relate pins across nesting
levels.  Subobjects are deleted with the complex object.
"""

import pytest

from repro.engine.query import root_of, walk_tree
from repro.errors import ConstraintViolation
from repro.workloads import gate_database, make_flipflop


@pytest.fixture
def db():
    return gate_database("fig1")


@pytest.fixture
def flipflop(db):
    ff, subgates = make_flipflop(db)
    return ff, subgates


class TestFlipFlopStructure:
    def test_external_pins(self, flipflop):
        ff, _ = flipflop
        pins = ff.subclass("Pins").members()
        assert len(pins) == 4
        assert sum(1 for p in pins if p["InOut"] == "IN") == 2
        assert sum(1 for p in pins if p["InOut"] == "OUT") == 2

    def test_two_nand_subgates(self, flipflop):
        ff, subgates = flipflop
        assert len(ff["SubGates"]) == 2
        assert all(g["Function"] == "NAND" for g in subgates)

    def test_subgate_constraints_hold(self, flipflop):
        ff, subgates = flipflop
        for gate in subgates:
            gate.check_constraints()  # 2 IN + 1 OUT (paper constraint)

    def test_wires_cross_nesting_levels(self, flipflop):
        ff, subgates = flipflop
        wires = ff.subrel("Wires").members()
        assert len(wires) == 6
        ext_pins = set(p.surrogate for p in ff.subclass("Pins"))
        crossing = [
            w
            for w in wires
            if (w["Pin1"].surrogate in ext_pins)
            != (w["Pin2"].surrogate in ext_pins)
        ]
        assert len(crossing) == 4  # S, R, Q, Q̄ each cross the boundary

    def test_cross_coupling_between_subgates(self, flipflop):
        ff, subgates = flipflop
        top = {p.surrogate for p in subgates[0].subclass("Pins")}
        bottom = {p.surrogate for p in subgates[1].subclass("Pins")}
        coupling = [
            w
            for w in ff.subrel("Wires")
            if (w["Pin1"].surrogate in top and w["Pin2"].surrogate in bottom)
            or (w["Pin1"].surrogate in bottom and w["Pin2"].surrogate in top)
        ]
        assert len(coupling) == 2

    def test_wiring_restriction_enforced(self, db, flipflop):
        ff, _ = flipflop
        alien = db.create_object("PinType", InOut="IN")
        some_pin = ff.subclass("Pins").members()[0]
        with pytest.raises(ConstraintViolation):
            ff.subrel("Wires").create({"Pin1": some_pin, "Pin2": alien})

    def test_nesting_navigation(self, flipflop):
        ff, subgates = flipflop
        inner_pin = subgates[0].subclass("Pins").members()[0]
        assert root_of(inner_pin) is ff
        nodes = list(walk_tree(ff))
        # ff + 4 pins + 2 subgates * (1 + 3 pins) = 13
        assert len(nodes) == 13

    def test_deep_constraint_check(self, flipflop):
        ff, _ = flipflop
        ff.check_constraints(deep=True)

    def test_cascade_delete(self, db, flipflop):
        ff, subgates = flipflop
        all_objects = list(walk_tree(ff, include_relationships=True))
        ff.delete()
        assert all(obj.deleted for obj in all_objects)
        assert db.get(subgates[0].surrogate) is None
