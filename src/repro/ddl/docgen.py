"""Schema documentation generator.

Renders a catalog as a Markdown reference: domains, object types with
their members and constraints, relationship types with their roles, the
inheritance relationships with permeability lists, and an ASCII rendering
of the abstraction hierarchy (which type inherits from which through which
relationship) — the schema-level picture of the paper's Figures 2–4.
"""

from __future__ import annotations

from typing import List, Set

from ..core.objtype import TypeBase
from ..engine.catalog import Catalog, _BUILTIN_DOMAINS
from .unparse import unparse_domain

__all__ = ["document_catalog", "hierarchy_lines"]


def _anchor(name: str) -> str:
    return name.lower().replace(".", "").replace("_", "").replace("/", "")


def _member_rows(type_: TypeBase, catalog: Catalog) -> List[str]:
    rows: List[str] = []
    for name, spec in type_.attributes.items():
        rows.append(f"| `{name}` | attribute | {unparse_domain(spec.domain, catalog)} |")
    for name, spec in type_.subclass_specs.items():
        rows.append(f"| `{name}` | subclass | {spec.element_type.name} |")
    for name, spec in type_.subrel_specs.items():
        where = f" where `{spec.where_source}`" if spec.where_source else ""
        rows.append(f"| `{name}` | subrel | {spec.rel_type.name}{where} |")
    inherited = type_.inherited_member_names()
    for name in sorted(inherited):
        vias = [
            rel.name for rel in type_.inheritor_in if name in rel.inheriting
        ]
        rows.append(f"| `{name}` | inherited | via {', '.join(vias)} |")
    return rows


def hierarchy_lines(catalog: Catalog) -> List[str]:
    """ASCII abstraction hierarchy: transmitter types and their inheritors."""
    lines: List[str] = []
    transmitters = [
        t
        for t in catalog
        if getattr(t, "_transmitting_rel_types", []) and not t.inheritor_in
    ]

    def render(type_: TypeBase, prefix: str, seen: Set[int]) -> None:
        if id(type_) in seen:
            lines.append(f"{prefix}{type_.name} (…)")
            return
        seen = seen | {id(type_)}
        lines.append(f"{prefix}{type_.name}")
        for rel in getattr(type_, "_transmitting_rel_types", []):
            for inheritor in rel.known_inheritor_types:
                render(
                    inheritor,
                    f"{prefix}    └─[{rel.name}]→ ",
                    seen,
                )

    for root in transmitters:
        render(root, "", set())
    return lines


def document_catalog(catalog: Catalog, title: str = "Schema reference") -> str:
    """Render the whole catalog as a Markdown document."""
    out: List[str] = [f"# {title}", ""]

    domains = {
        name: domain
        for name, domain in catalog.domains().items()
        if name not in _BUILTIN_DOMAINS
    }
    if domains:
        out.append("## Domains")
        out.append("")
        out.append("| name | definition |")
        out.append("|------|------------|")
        for name, domain in domains.items():
            out.append(f"| `{name}` | {domain.describe()} |")
        out.append("")

    object_types = [
        t
        for t in catalog.object_types()
        if True
    ]
    if object_types:
        out.append("## Object types")
        out.append("")
        for type_ in object_types:
            out.append(f"### {type_.name}")
            out.append("")
            if type_.doc:
                out.append(type_.doc)
                out.append("")
            if type_.inheritor_in:
                rels = ", ".join(rel.name for rel in type_.inheritor_in)
                out.append(f"*Inheritor in:* {rels}")
                out.append("")
            rows = _member_rows(type_, catalog)
            if rows:
                out.append("| member | kind | type |")
                out.append("|--------|------|------|")
                out.extend(rows)
                out.append("")
            if type_.constraints:
                out.append("Constraints:")
                out.append("")
                for constraint in type_.constraints:
                    out.append(f"* `{constraint.source}`")
                out.append("")

    rel_types = catalog.relationship_types()
    if rel_types:
        out.append("## Relationship types")
        out.append("")
        for type_ in rel_types:
            out.append(f"### {type_.name}")
            out.append("")
            out.append("| role | participant |")
            out.append("|------|-------------|")
            for role, spec in type_.participants.items():
                out.append(f"| `{role}` | {spec.describe()} |")
            out.append("")
            rows = _member_rows(type_, catalog)
            if rows:
                out.append("| member | kind | type |")
                out.append("|--------|------|------|")
                out.extend(rows)
                out.append("")
            if type_.constraints:
                out.append("Constraints:")
                out.append("")
                for constraint in type_.constraints:
                    out.append(f"* `{constraint.source}`")
                out.append("")

    inher_types = catalog.inheritance_types()
    if inher_types:
        out.append("## Inheritance relationships")
        out.append("")
        out.append("| name | transmitter | inheritor | inheriting |")
        out.append("|------|-------------|-----------|------------|")
        for rel in inher_types:
            restriction = (
                rel.inheritor_type.name if rel.inheritor_type is not None else "object"
            )
            out.append(
                f"| `{rel.name}` | {rel.transmitter_type.name} | {restriction} "
                f"| {', '.join(rel.inheriting)} |"
            )
        out.append("")

    tree = hierarchy_lines(catalog)
    if tree:
        out.append("## Abstraction hierarchy")
        out.append("")
        out.append("```")
        out.extend(tree)
        out.append("```")
        out.append("")

    return "\n".join(out)
