#!/usr/bin/env python3
"""Quickstart: value inheritance in five minutes.

Builds the paper's Figure 2 situation — a gate interface with three
implementations — and demonstrates the three defining properties of the
inheritance relationship (§4.1):

1. implementations inherit the interface's attributes *and values*;
2. inherited data is read-only in the inheritor;
3. interface updates are transmitted to every implementation immediately.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.ddl.paper import load_gate_schema
from repro.errors import InheritanceError


def main() -> None:
    db = Database("quickstart")
    load_gate_schema(db.catalog)  # the paper's §3/§4 schema, parsed from DDL

    # -- the interface: the external image of a NAND gate ---------------------
    nand_if = db.create_object("GateInterface", Length=10, Width=5)
    nand_if.subclass("Pins").create(InOut="IN", PinLocation=(0, 0))
    nand_if.subclass("Pins").create(InOut="IN", PinLocation=(0, 2))
    nand_if.subclass("Pins").create(InOut="OUT", PinLocation=(10, 1))
    print(f"interface: Length={nand_if['Length']}, pins={len(nand_if['Pins'])}")

    # -- three implementations, bound at creation time ------------------------
    implementations = [
        db.create_object("GateImplementation", transmitter=nand_if, TimeBehavior=t)
        for t in (3, 5, 8)
    ]
    for index, impl in enumerate(implementations):
        print(
            f"implementation {index}: Length={impl['Length']} (inherited), "
            f"TimeBehavior={impl['TimeBehavior']} (own)"
        )

    # -- 2: inherited data must not be updated in the inheritor ---------------
    try:
        implementations[0].set_attribute("Length", 1)
    except InheritanceError as exc:
        print(f"write to inherited attribute rejected: {exc}")

    # -- 3: updates of the transmitter reach every inheritor ------------------
    nand_if.set_attribute("Length", 12)
    nand_if.subclass("Pins").create(InOut="IN", PinLocation=(0, 4))
    assert all(impl["Length"] == 12 for impl in implementations)
    assert all(len(impl["Pins"]) == 4 for impl in implementations)
    print("interface update visible in all implementations immediately")

    # -- selective permeability: SomeOf_Gate exposes TimeBehavior too ---------
    someof = db.catalog.inheritance_type("SomeOf_Gate")
    print(f"{someof.name} inherits: {', '.join(someof.inheriting)}")
    print("done.")


if __name__ == "__main__":
    main()
