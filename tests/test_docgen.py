"""Tests for the schema documentation generator (repro.ddl.docgen)."""

import pytest

from repro.ddl.docgen import document_catalog, hierarchy_lines
from repro.ddl.paper import load_gate_schema, load_steel_schema


@pytest.fixture(scope="module")
def gate_doc():
    return document_catalog(load_gate_schema(), title="Gate schema")


class TestDocumentCatalog:
    def test_title_and_sections(self, gate_doc):
        assert gate_doc.startswith("# Gate schema")
        for section in ("## Object types", "## Relationship types",
                        "## Inheritance relationships", "## Abstraction hierarchy"):
            assert section in gate_doc

    def test_object_type_members_table(self, gate_doc):
        assert "### GateInterface" in gate_doc
        assert "| `Length` | attribute | integer |" in gate_doc
        assert "| `Pins` | inherited | via AllOf_GateInterface_I |" in gate_doc

    def test_relationship_roles(self, gate_doc):
        assert "| `Pin1` | PinType |" in gate_doc

    def test_inheritance_table(self, gate_doc):
        assert "| `AllOf_GateInterface` | GateInterface | object "\
               "| Length, Width, Pins |" in gate_doc

    def test_constraints_listed(self, gate_doc):
        assert "count(Pins" in gate_doc

    def test_subrel_where_shown(self, gate_doc):
        assert "where `(Wire.Pin1 in Pins" in gate_doc

    def test_steel_schema_documents(self):
        doc = document_catalog(load_steel_schema())
        assert "### ScrewingType" in doc
        assert "`Bores` | set-of object-of-type BoreType" in doc
        assert "| `AreaDom` |" in doc  # custom domain table

    def test_typed_inheritor_shown(self):
        doc = document_catalog(load_steel_schema())
        assert "| `AllOf_GirderIf` | GirderInterface | Girder |" in doc


class TestHierarchy:
    def test_gate_hierarchy_chain(self):
        lines = hierarchy_lines(load_gate_schema())
        text = "\n".join(lines)
        assert "GateInterface_I" in text
        assert "[AllOf_GateInterface_I]→ GateInterface" in text
        assert "[AllOf_GateInterface]→ GateImplementation" in text

    def test_steel_hierarchy(self):
        lines = hierarchy_lines(load_steel_schema())
        text = "\n".join(lines)
        assert "[AllOf_GirderIf]→ Girder" in text
        assert "[AllOf_BoltType]→ ScrewingType.Bolt" in text

    def test_no_transmitters_no_tree(self):
        from repro.engine import Catalog

        assert hierarchy_lines(Catalog()) == []
