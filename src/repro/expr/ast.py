"""Abstract syntax tree of the constraint-expression language.

Each node implements ``evaluate(ctx)`` against an
:class:`~repro.expr.context.EvalContext`.  The tree is produced by
:mod:`repro.expr.parser` and is immutable after the parser's single
``where``-attachment pass.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..errors import ExprEvaluationError
from .context import MISSING, EvalContext, as_collection

__all__ = [
    "Node",
    "Literal",
    "Name",
    "Path",
    "Unary",
    "Binary",
    "Aggregate",
    "Quantified",
    "truthy",
    "iter_aggregates",
]


def truthy(value: Any) -> bool:
    """Boolean coercion used by logical operators and constraint checking."""
    if value is MISSING:
        return False
    return bool(value)


def _numeric(value: Any, op: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExprEvaluationError(f"operator {op!r} needs numbers, got {value!r}")
    return value


def _equal(left: Any, right: Any) -> bool:
    if left is MISSING or right is MISSING:
        return False
    return left == right


class Node:
    """Base class of all expression nodes."""

    def evaluate(self, ctx: EvalContext) -> Any:
        raise NotImplementedError

    def unparse(self) -> str:
        """Source-like rendering, used in constraint-violation messages."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.unparse()}>"


class Literal(Node):
    """A number, string or boolean literal."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, ctx: EvalContext) -> Any:
        return self.value

    def unparse(self) -> str:
        if isinstance(value := self.value, str):
            return f"'{value}'"
        return str(self.value).lower() if isinstance(self.value, bool) else str(self.value)


class Name(Node):
    """A bare identifier.

    Resolution: binder bindings, then members of the context root; when
    nothing matches and the context permits, the identifier's own spelling
    (the enum-label convention of the paper's listings).
    """

    __slots__ = ("identifier",)

    def __init__(self, identifier: str):
        self.identifier = identifier

    def evaluate(self, ctx: EvalContext) -> Any:
        value = ctx.lookup(self.identifier)
        if value is MISSING:
            if ctx.unresolved_as_literal:
                return self.identifier
            raise ExprEvaluationError(f"unresolvable name {self.identifier!r}")
        return value

    def unparse(self) -> str:
        return self.identifier


class Path(Node):
    """Dotted member access, e.g. ``SubGates.Pins`` or ``s.Diameter``.

    Access on a collection maps over elements and flattens one level, so
    ``SubGates.Pins`` collects the pins of every subgate.
    """

    __slots__ = ("base", "segments")

    def __init__(self, base: Node, segments: Sequence[str]):
        self.base = base
        self.segments = tuple(segments)

    def evaluate(self, ctx: EvalContext) -> Any:
        from .context import resolve_member

        value = self.base.evaluate(ctx)
        for segment in self.segments:
            value = resolve_member(value, segment)
            if value is MISSING:
                return MISSING
        return value

    def unparse(self) -> str:
        return ".".join([self.base.unparse(), *self.segments])

    def display_names(self) -> Tuple[str, ...]:
        """Names an element of this path may be referenced by in a ``where``.

        ``count(Pins) = 2 where Pins.InOut = IN`` refers to each element of
        the ``Pins`` collection by the path spelling itself; the last
        segment alone is also accepted.
        """
        full = self.unparse()
        return (full, self.segments[-1]) if self.segments else (full,)


class Unary(Node):
    """Unary minus or logical ``not``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Node):
        self.op = op
        self.operand = operand

    def evaluate(self, ctx: EvalContext) -> Any:
        value = self.operand.evaluate(ctx)
        if self.op == "-":
            return -_numeric(value, "-")
        if self.op == "not":
            return not truthy(value)
        raise ExprEvaluationError(f"unknown unary operator {self.op!r}")

    def unparse(self) -> str:
        spacer = " " if self.op == "not" else ""
        return f"{self.op}{spacer}{self.operand.unparse()}"


class Binary(Node):
    """Binary operator: arithmetic, comparison, membership, and/or."""

    __slots__ = ("op", "left", "right")

    _ARITH = {"+", "-", "*", "/", "%"}
    _COMPARE = {"=", "!=", "<", "<=", ">", ">="}

    def __init__(self, op: str, left: Node, right: Node):
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, ctx: EvalContext) -> Any:
        op = self.op
        if op == "and":
            return truthy(self.left.evaluate(ctx)) and truthy(self.right.evaluate(ctx))
        if op == "or":
            return truthy(self.left.evaluate(ctx)) or truthy(self.right.evaluate(ctx))
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        if op == "=":
            return _equal(left, right)
        if op == "!=":
            return not _equal(left, right)
        if op == "in":
            return any(_equal(left, element) for element in as_collection(right))
        if op == "not in":
            return not any(_equal(left, element) for element in as_collection(right))
        if op in self._COMPARE:
            if left is MISSING or right is MISSING:
                return False
            try:
                if op == "<":
                    return left < right
                if op == "<=":
                    return left <= right
                if op == ">":
                    return left > right
                return left >= right
            except TypeError as exc:
                raise ExprEvaluationError(
                    f"cannot compare {left!r} {op} {right!r}"
                ) from exc
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        if op in self._ARITH:
            left = _numeric(left, op)
            right = _numeric(right, op)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise ExprEvaluationError("division by zero")
                return left / right
            if right == 0:
                raise ExprEvaluationError("modulo by zero")
            return left % right
        raise ExprEvaluationError(f"unknown operator {op!r}")

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


class Aggregate(Node):
    """Aggregate over a collection path.

    Covers both spellings the paper uses: ``count (Pins)`` and
    ``#s in Bolt`` (the latter names a binder usable in a trailing
    ``where``).  ``where`` filters elements; within the filter an element
    is visible under the binder name and the path's display names.
    """

    __slots__ = ("func", "arg", "where", "binder")

    _FUNCS = frozenset(["count", "sum", "min", "max", "avg", "exists"])

    def __init__(
        self,
        func: str,
        arg: Node,
        where: Optional[Node] = None,
        binder: Optional[str] = None,
    ):
        if func not in self._FUNCS:
            raise ExprEvaluationError(f"unknown aggregate {func!r}")
        self.func = func
        self.arg = arg
        self.where = where
        self.binder = binder

    def _element_names(self) -> Tuple[str, ...]:
        names: List[str] = []
        if self.binder:
            names.append(self.binder)
        if isinstance(self.arg, Path):
            names.extend(self.arg.display_names())
        elif isinstance(self.arg, Name):
            names.append(self.arg.identifier)
        return tuple(names)

    def elements(self, ctx: EvalContext) -> List[Any]:
        """The (filtered) collection the aggregate ranges over."""
        collection = as_collection(self.arg.evaluate(ctx))
        if self.where is None:
            return collection
        names = self._element_names()
        kept = []
        for element in collection:
            scope = ctx.child({name: element for name in names})
            if truthy(self.where.evaluate(scope)):
                kept.append(element)
        return kept

    def evaluate(self, ctx: EvalContext) -> Any:
        elements = self.elements(ctx)
        if self.func == "count":
            return len(elements)
        if self.func == "exists":
            return bool(elements)
        if self.func == "sum":
            return sum(_numeric(element, "sum") for element in elements)
        if not elements:
            raise ExprEvaluationError(
                f"{self.func}() over an empty collection in {self.unparse()}"
            )
        if self.func == "min":
            return min(elements)
        if self.func == "max":
            return max(elements)
        total = sum(_numeric(element, "avg") for element in elements)
        return total / len(elements)

    def unparse(self) -> str:
        body = self.arg.unparse()
        if self.binder:
            body = f"{self.binder} in {body}"
        if self.where is not None:
            body = f"{body} where {self.where.unparse()}"
        return f"{self.func}({body})"


class Quantified(Node):
    """Universal quantification: ``for (s in Bolt, n in Nut): c1; c2``.

    Every body constraint must hold for every combination of binder values
    (cartesian product); empty binder collections satisfy it vacuously.
    """

    __slots__ = ("binders", "body")

    def __init__(self, binders: Sequence[Tuple[str, Node]], body: Sequence[Node]):
        if not binders:
            raise ExprEvaluationError("quantifier needs at least one binder")
        if not body:
            raise ExprEvaluationError("quantifier needs at least one constraint")
        self.binders = tuple(binders)
        self.body = tuple(body)

    def evaluate(self, ctx: EvalContext) -> bool:
        return self._check(ctx, 0)

    def _check(self, ctx: EvalContext, index: int) -> bool:
        if index == len(self.binders):
            return all(truthy(constraint.evaluate(ctx)) for constraint in self.body)
        name, source = self.binders[index]
        for element in as_collection(source.evaluate(ctx)):
            scope = ctx.child({name: element})
            if not self._check(scope, index + 1):
                return False
        return True

    def unparse(self) -> str:
        binders = ", ".join(f"{name} in {src.unparse()}" for name, src in self.binders)
        body = "; ".join(constraint.unparse() for constraint in self.body)
        return f"for ({binders}): {body}"


def iter_aggregates(node: Node):
    """Yield every :class:`Aggregate` beneath ``node`` (including itself)."""
    stack: List[Node] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Aggregate):
            yield current
            stack.append(current.arg)
            if current.where is not None:
                stack.append(current.where)
        elif isinstance(current, Binary):
            stack.extend((current.left, current.right))
        elif isinstance(current, Unary):
            stack.append(current.operand)
        elif isinstance(current, Path):
            stack.append(current.base)
        elif isinstance(current, Quantified):
            stack.extend(source for _, source in current.binders)
            stack.extend(current.body)
