"""Tests for adaptation tracking and triggers (repro.consistency)."""

import pytest

from repro.composition import add_component
from repro.consistency import (
    AdaptationTracker,
    TriggerRegistry,
    auto_adapt_trigger,
)
from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.errors import ReproError


@pytest.fixture
def db():
    db = Database("consistency")
    load_gate_schema(db.catalog)
    return db


@pytest.fixture
def tracker(db):
    return AdaptationTracker(db)


def make_pair(db):
    iface = db.create_object("GateInterface", Length=10, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    impl = db.create_object("GateImplementation", transmitter=iface)
    return iface, impl


class TestAdaptationTracker:
    def test_attaches_to_database(self, db, tracker):
        assert db.consistency is tracker

    def test_transmitter_update_marks_link(self, db, tracker):
        iface, impl = make_pair(db)
        link = impl.inheritance_links[0]
        assert not tracker.needs_adaptation(link)
        iface.set_attribute("Length", 11)
        assert tracker.needs_adaptation(link)
        records = tracker.pending(link)
        assert records[0].member == "Length"
        assert records[0].old == 10 and records[0].new == 11

    def test_non_permeable_update_not_marked(self, db, tracker):
        iface, impl = make_pair(db)
        impl.set_attribute("TimeBehavior", 3)  # inheritor's own data
        assert not tracker.needs_adaptation(impl.inheritance_links[0])

    def test_all_implementations_marked(self, db, tracker):
        iface = db.create_object("GateInterface", Length=1, Width=1)
        impls = [
            db.create_object("GateImplementation", transmitter=iface)
            for _ in range(3)
        ]
        iface.set_attribute("Width", 2)
        worklist = tracker.inheritors_needing_adaptation()
        assert {o.surrogate for o in worklist} == {i.surrogate for i in impls}

    def test_subobject_change_marks_subclass_member(self, db, tracker):
        iface, impl = make_pair(db)
        iface.subclass("Pins").create(InOut="OUT")
        records = tracker.pending(impl)
        assert any(
            r.member == "Pins" and r.kind == "subobject_added" for r in records
        )

    def test_nested_subobject_update_bubbles_to_subclass_name(self, db, tracker):
        iface, impl = make_pair(db)
        pin = iface.subclass("Pins").members()[0]
        pin.set_attribute("PinLocation", (5, 5))
        records = tracker.pending(impl)
        assert any(r.member == "Pins" and r.kind == "subobject_updated" for r in records)

    def test_component_update_marks_composite_slot(self, db, tracker):
        iface, impl = make_pair(db)
        component_if = db.create_object("GateInterface", Length=3, Width=3)
        sub = add_component(impl, "SubGates", component_if, GateLocation=(0, 0))
        component_if.set_attribute("Length", 4)
        assert tracker.needs_adaptation(sub)
        assert not [
            r for r in tracker.pending(impl) if r.member == "Length"
        ]  # the composite's own interface did not change

    def test_acknowledge_clears_pending(self, db, tracker):
        iface, impl = make_pair(db)
        iface.set_attribute("Length", 11)
        iface.set_attribute("Width", 12)
        link = impl.inheritance_links[0]
        assert len(tracker.pending(link)) == 2
        closed = tracker.acknowledge(link)
        assert closed == 2
        assert not tracker.needs_adaptation(link)

    def test_acknowledge_up_to_seq(self, db, tracker):
        iface, impl = make_pair(db)
        iface.set_attribute("Length", 11)
        first_seq = tracker.pending(impl)[0].seq
        iface.set_attribute("Width", 12)
        tracker.acknowledge(impl, up_to_seq=first_seq)
        remaining = tracker.pending(impl)
        assert len(remaining) == 1 and remaining[0].member == "Width"

    def test_records_ordered_by_sequence(self, db, tracker):
        iface, impl = make_pair(db)
        iface.set_attribute("Length", 11)
        iface.set_attribute("Length", 12)
        seqs = [r.seq for r in tracker.pending(impl)]
        assert seqs == sorted(seqs)

    def test_describe_is_informative(self, db, tracker):
        iface, impl = make_pair(db)
        iface.set_attribute("Length", 11)
        text = tracker.pending(impl)[0].describe()
        assert "Length" in text and "AllOf_GateInterface" in text

    def test_detach_stops_tracking(self, db, tracker):
        iface, impl = make_pair(db)
        tracker.detach()
        iface.set_attribute("Length", 99)
        assert not tracker.all_pending()

    def test_clear(self, db, tracker):
        iface, impl = make_pair(db)
        iface.set_attribute("Length", 99)
        tracker.clear()
        assert not tracker.all_pending()


class TestTriggers:
    def test_trigger_fires_on_matching_event(self, db):
        registry = TriggerRegistry(db)
        seen = []
        registry.register("log-updates", "attribute_updated", seen.append)
        iface, _ = make_pair(db)
        iface.set_attribute("Length", 1)
        assert len(seen) >= 1
        assert registry.get("log-updates").fired >= 1

    def test_condition_filters(self, db):
        iface, _ = make_pair(db)
        registry = TriggerRegistry(db)
        seen = []
        registry.register(
            "length-only",
            "attribute_updated",
            seen.append,
            condition=lambda e: e.attribute == "Length",
        )
        iface.set_attribute("Width", 9)
        assert seen == []
        iface.set_attribute("Length", 9)
        assert len(seen) == 1

    def test_disable_enable(self, db):
        registry = TriggerRegistry(db)
        seen = []
        registry.register("t", "attribute_updated", seen.append)
        registry.disable("t")
        iface, _ = make_pair(db)
        iface.set_attribute("Length", 1)
        assert seen == []
        registry.enable("t")
        iface.set_attribute("Length", 2)
        assert len(seen) == 1

    def test_duplicate_name_rejected(self, db):
        registry = TriggerRegistry(db)
        registry.register("t", "x", lambda e: None)
        with pytest.raises(ReproError):
            registry.register("t", "y", lambda e: None)

    def test_unknown_trigger(self, db):
        registry = TriggerRegistry(db)
        with pytest.raises(ReproError):
            registry.get("nope")

    def test_wildcard_trigger(self, db):
        registry = TriggerRegistry(db)
        kinds = []
        registry.register("all", "*", lambda e: kinds.append(e.kind))
        make_pair(db)
        assert "object_created" in kinds

    def test_remove(self, db):
        registry = TriggerRegistry(db)
        seen = []
        registry.register("t", "attribute_updated", seen.append)
        registry.remove("t")
        iface, _ = make_pair(db)
        iface.set_attribute("Length", 5)
        assert seen == []


class TestSemiAutomaticCorrection:
    def test_auto_adapt_acknowledges_correctable_changes(self, db):
        tracker = AdaptationTracker(db)
        registry = TriggerRegistry(db)

        def corrector(record):
            # Width changes are auto-adaptable; Length needs a human.
            return record.member == "Width"

        auto_adapt_trigger(registry, tracker, corrector)
        iface, impl = make_pair(db)
        iface.set_attribute("Width", 50)
        assert not tracker.needs_adaptation(impl)  # auto-corrected
        iface.set_attribute("Length", 50)
        pending = tracker.pending(impl)
        assert len(pending) == 1 and pending[0].member == "Length"
