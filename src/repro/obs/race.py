"""Dynamic data-race sanitizer: Eraser locksets + vector-clock filtering.

The engine's shared structures — :class:`~repro.core.slots.TypeStore`
columns, :class:`~repro.query.views.ViewManager` tables,
:class:`~repro.query.indexes.IndexManager` entries, the global schema
epoch and the :class:`~repro.txn.locks.LockTable` state — were written
single-caller.  Before the concurrent service tier puts real threads
through them, this module makes sharing violations *observable*: every
instrumented write is checked against the classic Eraser discipline
("every shared location is protected by some fixed lock"), with a
vector-clock happens-before layer that filters the lockset algorithm's
known false positives (fork/join hand-offs, lock-passing ownership
transfer).

How it works
------------

* Each thread carries a **vector clock**; engine lock grants and releases
  (:meth:`RaceSanitizer.lock_acquired` / :meth:`lock_released`), thread
  ``start``/``join`` (patched while the sanitizer is enabled) and
  explicitly declared sync points (the ``sync=`` argument) transfer
  clocks, building the happens-before order actually enforced at runtime.
* Each instrumented address keeps Eraser shadow state: *virgin* →
  *exclusive* (one thread) → *shared* / *shared-modified*, plus the
  **candidate lockset** — intersected with the accessing thread's held
  locks on every access once a second thread appears.
* A **candidate race** is reported when a write is involved, the lockset
  has shrunk to empty, **and** no happens-before edge orders the two
  accesses.  Both stacks (previous access and current access) and the
  shrinking lockset are captured in the :class:`RaceReport`.

Cost model
----------

Call sites are guarded like the PR-6 slow-op log: each instrumented
module holds a module-global ``TSAN`` (``None`` when dark), so the
disabled path costs one global load and a branch.  :func:`enable`
patches the sanitizer into every site module; :func:`disable` restores
``None``.  ``Database(sanitize=True)`` or ``REPRO_TSAN=1`` in the
environment turns it on; ``repro race -- <command>`` wraps any CLI
command (the :mod:`repro.cli` face).
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from importlib import import_module
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "RACE_SCHEMA_VERSION",
    "RaceReport",
    "RaceSanitizer",
    "ACTIVE",
    "ENV_VAR",
    "enable",
    "disable",
    "active",
    "sandbox",
    "enabled_by_env",
]

RACE_SCHEMA_VERSION = "repro.race/1"

#: Environment switch: any value but ""/"0" enables the sanitizer the
#: first time a :class:`~repro.engine.database.Database` is constructed
#: (and at pytest session start via the test suite's conftest hook).
ENV_VAR = "REPRO_TSAN"

#: The process-global sanitizer, or None when dark.  Engine call sites do
#: not read this — they read their own module-global ``TSAN`` mirror,
#: which :func:`enable`/:func:`disable` keep in step.
ACTIVE: Optional["RaceSanitizer"] = None

#: Modules carrying a ``TSAN`` call-site guard the sanitizer must patch.
_SITE_MODULES: Tuple[str, ...] = (
    "repro.core.slots",
    "repro.core.resolution",
    "repro.query.views",
    "repro.query.indexes",
    "repro.txn.locks",
)

#: Eraser shadow states.
_VIRGIN = 0
_EXCLUSIVE = 1
_SHARED = 2
_SHARED_MODIFIED = 3

_STATE_NAMES = {
    _VIRGIN: "virgin",
    _EXCLUSIVE: "exclusive",
    _SHARED: "shared",
    _SHARED_MODIFIED: "shared-modified",
}

Stack = Tuple[str, ...]
Clock = Dict[int, int]

#: Stable per-thread logical ids.  ``threading.get_ident()`` is recycled
#: by the OS as soon as a thread exits, so two short-lived workers that
#: never overlap can share an ident — the sanitizer would then see one
#: thread and miss the race.  A ``threading.local`` slot dies with the
#: thread, so every thread lifetime gets a fresh id.
_TID_LOCAL = threading.local()
_TID_COUNTER = iter(range(1, 2**63))


def _logical_tid() -> int:
    tid: Optional[int] = getattr(_TID_LOCAL, "tid", None)
    if tid is None:
        tid = _TID_LOCAL.tid = next(_TID_COUNTER)
    return tid


def enabled_by_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """True when ``REPRO_TSAN`` asks for the sanitizer."""
    env = os.environ if environ is None else environ
    return env.get(ENV_VAR, "") not in ("", "0")


@dataclass(frozen=True)
class RaceReport:
    """One candidate race: two unordered accesses with no common lock."""

    #: Human label of the address ("cell:GateInterface.Length", …).
    label: str
    #: The shadow address key (diagnostic; shape depends on the site).
    addr: Hashable
    #: Whether the *current* (second) access was a write.
    write: bool
    #: Whether the prior conflicting access was a write.
    prior_write: bool
    thread: int
    prior_thread: int
    #: The candidate lockset after shrinking (empty by construction).
    lockset: Tuple[str, ...]
    #: Stack of the access that triggered the report (innermost first).
    stack: Stack
    #: Stack of the prior conflicting access.
    prior_stack: Stack
    #: Eraser state the address was in when the report fired.
    state: str = "shared-modified"

    def render(self) -> str:
        kind = ("write" if self.write else "read") + "/" + (
            "write" if self.prior_write else "read"
        )
        lines = [
            f"RACE {self.label} ({kind}, state={self.state}, "
            f"lockset={list(self.lockset) or '{}'})",
            f"  thread {self.thread} accessed here:",
        ]
        lines.extend(f"    {frame}" for frame in self.stack or ("<no stack>",))
        lines.append(f"  thread {self.prior_thread} previously accessed here:")
        lines.extend(
            f"    {frame}" for frame in self.prior_stack or ("<no stack>",)
        )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "write": self.write,
            "prior_write": self.prior_write,
            "thread": self.thread,
            "prior_thread": self.prior_thread,
            "lockset": list(self.lockset),
            "stack": list(self.stack),
            "prior_stack": list(self.prior_stack),
            "state": self.state,
        }


class _Shadow:
    """Eraser + happens-before shadow state of one address."""

    __slots__ = (
        "label",
        "state",
        "owner",
        "lockset",
        "write_thread",
        "write_tick",
        "write_stack",
        "write_locks",
        "reads",
        "reported",
    )

    def __init__(self, label: str, owner: int) -> None:
        self.label = label
        self.state = _EXCLUSIVE
        self.owner = owner
        #: Candidate lockset; ``None`` until the second thread arrives
        #: (Eraser: C(v) starts as "all locks", realised lazily).
        self.lockset: Optional[Set[Hashable]] = None
        self.write_thread: Optional[int] = None
        self.write_tick = 0
        self.write_stack: Stack = ()
        self.write_locks: Tuple[str, ...] = ()
        #: Last read per thread: tid -> (tick, stack).
        self.reads: Dict[int, Tuple[int, Stack]] = {}
        self.reported = False


@dataclass
class _ThreadState:
    """Per-thread vector clock and held-lock set."""

    clock: Clock = field(default_factory=dict)
    held: Set[Hashable] = field(default_factory=set)


class RaceSanitizer:
    """Process-wide lockset/vector-clock race detector.

    Thread-safe: one internal mutex guards the shadow maps; it is a leaf
    lock (the sanitizer never calls back into the engine while holding
    it), so instrumenting code that itself runs under engine mutexes
    cannot invert lock order.
    """

    def __init__(self, stack_depth: int = 12, max_shadow: int = 1_000_000):
        self.stack_depth = stack_depth
        self.max_shadow = max_shadow
        self._mutex = threading.Lock()
        self._shadow: Dict[Hashable, _Shadow] = {}
        self._threads: Dict[int, _ThreadState] = {}
        #: Per-sync-object release clocks (engine locks, mutex sync keys,
        #: thread fork/join hand-offs).
        self._sync: Dict[Hashable, Clock] = {}
        self.reports: List[RaceReport] = []
        self.accesses = 0
        self.syncs = 0
        self.dropped = 0

    # -- internals (mutex held) -------------------------------------------------

    def _thread(self, tid: int) -> _ThreadState:
        state = self._threads.get(tid)
        if state is None:
            state = self._threads[tid] = _ThreadState(clock={tid: 1})
        return state

    @staticmethod
    def _join(into: Clock, other: Optional[Clock]) -> None:
        if not other:
            return
        for tid, tick in other.items():
            if into.get(tid, 0) < tick:
                into[tid] = tick

    def _tick(self, state: _ThreadState, tid: int) -> None:
        state.clock[tid] = state.clock.get(tid, 0) + 1

    def _capture(self) -> Stack:
        """A trimmed stack (innermost first), skipping sanitizer frames."""
        frame = sys._getframe(2)
        out: List[str] = []
        while frame is not None and len(out) < self.stack_depth:
            code = frame.f_code
            filename = code.co_filename
            if filename != __file__:
                out.append(
                    f"{os.path.basename(filename)}:{frame.f_lineno}:"
                    f"{code.co_name}"
                )
            frame = frame.f_back
        return tuple(out)

    @staticmethod
    def _lock_names(locks: Set[Hashable]) -> Tuple[str, ...]:
        return tuple(sorted(str(lock) for lock in locks))

    # -- sync API (engine locks, mutex serialisation, fork/join) ----------------

    def lock_acquired(self, key: Hashable) -> None:
        """The current thread now holds engine lock ``key`` (HB: joins the
        clock stored by the releasing thread)."""
        tid = _logical_tid()
        with self._mutex:
            self.syncs += 1
            state = self._thread(tid)
            state.held.add(key)
            self._join(state.clock, self._sync.get(key))

    def lock_released(self, key: Hashable) -> None:
        """The current thread dropped ``key`` (HB: publishes its clock to
        the next acquirer)."""
        tid = _logical_tid()
        with self._mutex:
            self.syncs += 1
            state = self._thread(tid)
            state.held.discard(key)
            self._sync[key] = dict(state.clock)
            self._tick(state, tid)

    @contextmanager
    def holding(self, key: Hashable) -> Iterator[None]:
        """Scope a lock acquisition (test/tool convenience)."""
        self.lock_acquired(key)
        try:
            yield
        finally:
            self.lock_released(key)

    def handoff(self, key: Hashable) -> None:
        """Publish the current thread's clock under ``key`` (fork edge)."""
        tid = _logical_tid()
        with self._mutex:
            self.syncs += 1
            state = self._thread(tid)
            self._sync[key] = dict(state.clock)
            self._tick(state, tid)

    def receive(self, key: Hashable) -> None:
        """Join the clock published under ``key`` (join edge)."""
        tid = _logical_tid()
        with self._mutex:
            self.syncs += 1
            self._join(self._thread(tid).clock, self._sync.pop(key, None))

    # -- the access checker -----------------------------------------------------

    def write(
        self,
        addr: Hashable,
        label: str = "",
        sync: Optional[Hashable] = None,
        held_extra: Tuple[Hashable, ...] = (),
    ) -> None:
        self.access(addr, True, label=label, sync=sync, held_extra=held_extra)

    def read(
        self,
        addr: Hashable,
        label: str = "",
        sync: Optional[Hashable] = None,
        held_extra: Tuple[Hashable, ...] = (),
    ) -> None:
        self.access(addr, False, label=label, sync=sync, held_extra=held_extra)

    def access(
        self,
        addr: Hashable,
        write: bool,
        label: str = "",
        sync: Optional[Hashable] = None,
        held_extra: Tuple[Hashable, ...] = (),
    ) -> None:
        """Check one access against the lockset + happens-before state.

        ``sync`` names a serialisation point the call site is known to
        hold (e.g. the lock table's own mutex): accesses through the same
        sync key are clock-ordered, exactly as the mutex orders them at
        runtime.  ``held_extra`` adds locks the sanitizer cannot see being
        acquired (same use case) to the lockset.
        """
        tid = _logical_tid()
        stack = self._capture()
        with self._mutex:
            self.accesses += 1
            state = self._thread(tid)
            if sync is not None:
                # Serialise with every previous access through this sync
                # point: join its clock now, publish ours on the way out.
                self._join(state.clock, self._sync.get(sync))
            held: Set[Hashable] = set(state.held)
            held.update(held_extra)
            if sync is not None:
                held.add(sync)

            shadow = self._shadow.get(addr)
            if shadow is None:
                if len(self._shadow) >= self.max_shadow:
                    self.dropped += 1
                else:
                    shadow = self._shadow[addr] = _Shadow(
                        label or str(addr), tid
                    )
                    self._record(shadow, tid, write, stack, state, held)
                if sync is not None:
                    self._sync[sync] = dict(state.clock)
                    self._tick(state, tid)
                return

            if tid != shadow.owner or shadow.state >= _SHARED:
                # Second thread (or already shared): Eraser transition +
                # lockset refinement.
                if shadow.state == _EXCLUSIVE:
                    shadow.state = _SHARED_MODIFIED if write else _SHARED
                    # C(v) initialises to the *union* of what protected
                    # the exclusive phase and what protects now — the
                    # lazy stand-in for "all locks".
                    shadow.lockset = set(shadow.write_locks) | held
                elif write and shadow.state == _SHARED:
                    shadow.state = _SHARED_MODIFIED
                if shadow.lockset is None:
                    shadow.lockset = set(held)
                else:
                    shadow.lockset &= held
                if (
                    shadow.state == _SHARED_MODIFIED
                    and not shadow.lockset
                    and not shadow.reported
                ):
                    self._maybe_report(shadow, addr, tid, write, stack, state)
            self._record(shadow, tid, write, stack, state, held)
            if sync is not None:
                self._sync[sync] = dict(state.clock)
                self._tick(state, tid)

    def _record(
        self,
        shadow: _Shadow,
        tid: int,
        write: bool,
        stack: Stack,
        state: _ThreadState,
        held: Set[Hashable],
    ) -> None:
        tick = state.clock.get(tid, 0)
        if write:
            shadow.write_thread = tid
            shadow.write_tick = tick
            shadow.write_stack = stack
            shadow.write_locks = self._lock_names(held)
        else:
            shadow.reads[tid] = (tick, stack)

    def _ordered_after(
        self, state: _ThreadState, tid: int, prior_tid: int, prior_tick: int
    ) -> bool:
        """Does the current access happen-after (prior_tid, prior_tick)?"""
        if tid == prior_tid:
            return True
        return state.clock.get(prior_tid, 0) >= prior_tick

    def _maybe_report(
        self,
        shadow: _Shadow,
        addr: Hashable,
        tid: int,
        write: bool,
        stack: Stack,
        state: _ThreadState,
    ) -> None:
        """Lockset empty in shared-modified state: report unless every
        conflicting prior access is happens-before ordered."""
        prior: Optional[Tuple[int, int, Stack, bool]] = None
        if shadow.write_thread is not None and shadow.write_thread != tid:
            if not self._ordered_after(
                state, tid, shadow.write_thread, shadow.write_tick
            ):
                prior = (
                    shadow.write_thread,
                    shadow.write_tick,
                    shadow.write_stack,
                    True,
                )
        if prior is None and write:
            for read_tid, (read_tick, read_stack) in shadow.reads.items():
                if read_tid == tid:
                    continue
                if not self._ordered_after(state, tid, read_tid, read_tick):
                    prior = (read_tid, read_tick, read_stack, False)
                    break
        if prior is None:
            return
        shadow.reported = True
        self.reports.append(
            RaceReport(
                label=shadow.label,
                addr=addr,
                write=write,
                prior_write=prior[3],
                thread=tid,
                prior_thread=prior[0],
                lockset=(),
                stack=stack,
                prior_stack=prior[2],
                state=_STATE_NAMES[shadow.state],
            )
        )

    # -- reporting ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """The ``repro.race/1`` machine-readable report."""
        with self._mutex:
            return {
                "schema": RACE_SCHEMA_VERSION,
                "accesses": self.accesses,
                "syncs": self.syncs,
                "addresses": len(self._shadow),
                "dropped": self.dropped,
                "races": [report.as_dict() for report in self.reports],
            }

    def render(self) -> str:
        with self._mutex:
            reports = list(self.reports)
            header = (
                f"race sanitizer: {self.accesses} access(es), "
                f"{self.syncs} sync op(s), {len(self._shadow)} address(es), "
                f"{len(reports)} candidate race(s)"
            )
        if not reports:
            return header
        return "\n".join([header] + [report.render() for report in reports])

    def __len__(self) -> int:
        return len(self.reports)


# ---------------------------------------------------------------------------
# enable / disable / sandbox — site-module patching + thread fork/join HB
# ---------------------------------------------------------------------------

_PATCH_GUARD = threading.Lock()
_ORIGINALS: Dict[str, Callable[..., Any]] = {}


def _broadcast(value: Optional[RaceSanitizer]) -> None:
    for name in _SITE_MODULES:
        module = import_module(name)
        module.TSAN = value  # type: ignore[attr-defined]


def _patch_threading(sanitizer: RaceSanitizer) -> None:
    """Model thread start/join happens-before edges while enabled.

    ``Thread.start`` publishes the parent's clock under a per-thread key;
    the first bootstrap inside the child (wrapped ``run``) joins it.
    ``Thread.join`` joins the finished child's clock into the joiner.
    Class-level patches, restored by :func:`_unpatch_threading`.
    """
    original_start = threading.Thread.start
    original_run = threading.Thread.run
    original_join = threading.Thread.join
    _ORIGINALS["start"] = original_start
    _ORIGINALS["run"] = original_run
    _ORIGINALS["join"] = original_join

    def start(self: threading.Thread) -> None:
        sanitizer.handoff(("fork", id(self)))
        original_start(self)

    def run(self: threading.Thread) -> None:
        sanitizer.receive(("fork", id(self)))
        try:
            original_run(self)
        finally:
            # Keyed by the Thread *object*, not ``self.ident``: idents are
            # recycled across thread lifetimes, which could hand one
            # thread's exit clock to an unrelated joiner.
            sanitizer.handoff(("thread-exit", id(self)))

    def join(self: threading.Thread, timeout: Optional[float] = None) -> None:
        original_join(self, timeout)
        if not self.is_alive():
            sanitizer.receive(("thread-exit", id(self)))

    threading.Thread.start = start  # type: ignore[method-assign]
    threading.Thread.run = run  # type: ignore[method-assign]
    threading.Thread.join = join  # type: ignore[method-assign]


def _unpatch_threading() -> None:
    if _ORIGINALS:
        threading.Thread.start = _ORIGINALS.pop("start")  # type: ignore[method-assign]
        threading.Thread.run = _ORIGINALS.pop("run")  # type: ignore[method-assign]
        threading.Thread.join = _ORIGINALS.pop("join")  # type: ignore[method-assign]


def enable(**options: Any) -> RaceSanitizer:
    """Install (or return the already-active) process-global sanitizer."""
    global ACTIVE
    with _PATCH_GUARD:
        if ACTIVE is None:
            ACTIVE = RaceSanitizer(**options)
            _broadcast(ACTIVE)
            _patch_threading(ACTIVE)
        return ACTIVE


def disable() -> Optional[RaceSanitizer]:
    """Dark again: restore every site guard; returns the old sanitizer."""
    global ACTIVE
    with _PATCH_GUARD:
        sanitizer, ACTIVE = ACTIVE, None
        if sanitizer is not None:
            _broadcast(None)
            _unpatch_threading()
        return sanitizer


def active() -> Optional[RaceSanitizer]:
    return ACTIVE


@contextmanager
def sandbox(**options: Any) -> Iterator[RaceSanitizer]:
    """A temporary private sanitizer (tests, the differential harness).

    Whatever was active before — including nothing — is restored on exit,
    so seeded races never leak into a surrounding ``REPRO_TSAN`` session.
    """
    global ACTIVE
    with _PATCH_GUARD:
        previous = ACTIVE
        if previous is not None:
            ACTIVE = None
            _broadcast(None)
            _unpatch_threading()
    try:
        sanitizer = enable(**options)
        yield sanitizer
    finally:
        disable()
        with _PATCH_GUARD:
            if previous is not None:
                ACTIVE = previous
                _broadcast(previous)
                _patch_threading(previous)
