"""The catalog: registry of domains and types of one database.

The catalog is the schema half of the engine — every named domain, object
type, relationship type and inheritance-relationship type lives here.  The
DDL builder (:mod:`repro.ddl.builder`) populates it from the paper's schema
syntax; programmatic schemas register through the ``define_*`` helpers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..core.domains import (
    ANY,
    BOOLEAN,
    CHAR,
    INTEGER,
    IO,
    POINT,
    REAL,
    STRING,
    Domain,
)
from ..core import resolution
from ..core.inheritance import InheritanceRelationshipType
from ..core.interning import InternPool
from ..core.objtype import ObjectType, TypeBase
from ..core.reltype import RelationshipType
from ..errors import (
    DuplicateTypeError,
    UnknownDomainError,
    UnknownTypeError,
)

__all__ = ["Catalog"]

#: Facade over the process-wide interning pools (see repro.core.interning).
_INTERN_POOL = InternPool()

#: Domains every catalog starts with, under the paper's spellings.
_BUILTIN_DOMAINS: Dict[str, Domain] = {
    "integer": INTEGER,
    "real": REAL,
    "string": STRING,
    "boolean": BOOLEAN,
    "char": CHAR,
    "any": ANY,
    "object": ANY,
    "Point": POINT,
    "I/O": IO,
}


class Catalog:
    """Schema registry: domains and types, by name."""

    def __init__(self) -> None:
        self._domains: Dict[str, Domain] = dict(_BUILTIN_DOMAINS)
        self._types: Dict[str, TypeBase] = {}

    # -- domains -----------------------------------------------------------------

    def define_domain(self, name: str, domain: Domain) -> Domain:
        """Register a named domain (``domain I/O = (IN, OUT)``)."""
        if name in self._domains:
            raise DuplicateTypeError(f"domain {name!r} is already defined")
        self._domains[name] = domain
        return domain

    def domain(self, name: str) -> Domain:
        """Look up a domain by name."""
        try:
            return self._domains[name]
        except KeyError:
            raise UnknownDomainError(f"unknown domain {name!r}") from None

    def has_domain(self, name: str) -> bool:
        return name in self._domains

    def domains(self) -> Dict[str, Domain]:
        """Copy of the domain registry."""
        return dict(self._domains)

    # -- types -------------------------------------------------------------------

    @property
    def schema_epoch(self) -> int:
        """The schema epoch compiled resolution plans validate against.

        Bumped by every type definition and ``inheritor-in:`` declaration
        (see :mod:`repro.core.resolution`); the counter is process-global
        because types can exist outside any catalog.
        """
        return resolution.schema_epoch()

    @property
    def interning(self) -> InternPool:
        """The shared surrogate/attribute-name interning pool.

        One pool per process (names and surrogate tokens are canonical
        across catalogs, like the schema epoch); exposed here so tools
        inspect ``catalog.interning.stats()`` next to the schema state.
        """
        return _INTERN_POOL

    def register(self, type_: TypeBase) -> TypeBase:
        """Register any kind of type under its name."""
        if type_.name in self._types:
            raise DuplicateTypeError(f"type {type_.name!r} is already defined")
        self._types[type_.name] = type_
        return type_

    def define_object_type(self, name: str, **kwargs) -> ObjectType:
        """Create and register an :class:`~repro.core.objtype.ObjectType`."""
        return self.register(ObjectType(name, **kwargs))  # type: ignore[return-value]

    def define_relationship_type(self, name: str, relates, **kwargs) -> RelationshipType:
        """Create and register a :class:`~repro.core.reltype.RelationshipType`."""
        return self.register(RelationshipType(name, relates, **kwargs))  # type: ignore[return-value]

    def define_inheritance_type(
        self, name: str, transmitter_type, inheriting, **kwargs
    ) -> InheritanceRelationshipType:
        """Create and register an inheritance-relationship type."""
        return self.register(  # type: ignore[return-value]
            InheritanceRelationshipType(name, transmitter_type, inheriting, **kwargs)
        )

    def type(self, name: str) -> TypeBase:
        """Look up any type by name."""
        try:
            return self._types[name]
        except KeyError:
            raise UnknownTypeError(f"unknown type {name!r}") from None

    def object_type(self, name: str) -> ObjectType:
        """Look up an object type (rejects relationship types)."""
        found = self.type(name)
        if isinstance(found, RelationshipType) or not isinstance(found, ObjectType):
            raise UnknownTypeError(f"{name!r} is not an object type")
        return found

    def relationship_type(self, name: str) -> RelationshipType:
        """Look up a relationship type (plain or inheritance)."""
        found = self.type(name)
        if not isinstance(found, RelationshipType):
            raise UnknownTypeError(f"{name!r} is not a relationship type")
        return found

    def inheritance_type(self, name: str) -> InheritanceRelationshipType:
        """Look up an inheritance-relationship type."""
        found = self.type(name)
        if not isinstance(found, InheritanceRelationshipType):
            raise UnknownTypeError(f"{name!r} is not an inheritance relationship type")
        return found

    def has_type(self, name: str) -> bool:
        return name in self._types

    def __contains__(self, name: object) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[TypeBase]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def object_types(self) -> List[ObjectType]:
        return [
            t
            for t in self._types.values()
            if isinstance(t, ObjectType) and not isinstance(t, RelationshipType)
        ]

    def relationship_types(self) -> List[RelationshipType]:
        return [
            t
            for t in self._types.values()
            if isinstance(t, RelationshipType)
            and not isinstance(t, InheritanceRelationshipType)
        ]

    def inheritance_types(self) -> List[InheritanceRelationshipType]:
        return [
            t
            for t in self._types.values()
            if isinstance(t, InheritanceRelationshipType)
        ]
