"""Tokenizer for the constraint-expression language.

The language is taken directly from the paper's listings, e.g.::

    count (Pins) = 2 where Pins.InOut = IN
    Length < 100*Height*Width
    (Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins)
    #s in Bolt = 1
    for (s in Bolt, n in Nut): s.Diameter = n.Diameter
    s.Length = n.Length + sum (Bores.Length)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ExprSyntaxError

#: Reserved words of the constraint language.  They are recognised in their
#: lower-case spelling only, so upper-case enum labels (IN, OUT, AND, OR…)
#: remain ordinary identifiers.
KEYWORDS = frozenset(
    [
        "and",
        "or",
        "not",
        "in",
        "where",
        "for",
        "true",
        "false",
        "count",
        "sum",
        "min",
        "max",
        "avg",
        "exists",
    ]
)

#: Multi-character operators, longest first so the scanner is greedy.
_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>")
_ONE_CHAR_OPS = "=<>+-*/%(),.:;#"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``IDENT``, ``NUMBER``, ``STRING``, ``OP``, ``KEYWORD``
    or ``EOF``; ``text`` is the matched source text (canonical lower case for
    keywords); ``position`` is the character offset in the source.
    """

    kind: str
    text: str
    position: int

    def is_op(self, *texts: str) -> bool:
        return self.kind == "OP" and self.text in texts

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.text in words


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens, appending a terminating EOF token.

    Raises
    ------
    ExprSyntaxError
        On characters outside the language or unterminated strings.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = source.find(ch, i + 1)
            if end < 0:
                raise ExprSyntaxError("unterminated string literal", position=i)
            yield Token("STRING", source[i + 1 : end], i)
            i = end + 1
            continue
        if ch.isdigit():
            start = i
            while i < length and source[i].isdigit():
                i += 1
            if i < length and source[i] == "." and i + 1 < length and source[i + 1].isdigit():
                i += 1
                while i < length and source[i].isdigit():
                    i += 1
            yield Token("NUMBER", source[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            # Keywords match their lower-case spelling only: the paper uses
            # upper-case identifiers like IN, OUT and AND as enum labels,
            # which must not collide with the operators `in` and `and`.
            if word in KEYWORDS:
                yield Token("KEYWORD", word, start)
            else:
                yield Token("IDENT", word, start)
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token("OP", two, i)
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token("OP", ch, i)
            i += 1
            continue
        raise ExprSyntaxError(f"unexpected character {ch!r}", position=i)
    yield Token("EOF", "", length)
