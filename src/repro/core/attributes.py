"""Attribute specifications.

An :class:`AttributeSpec` describes one attribute of an object or
relationship type: its name, its domain and an optional default.  The
automatic ``surrogate`` attribute (§3) is *not* modelled as a spec — it is
provided by every object directly.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import DomainError, SchemaError
from .domains import ANY, Domain

__all__ = ["AttributeSpec", "RESERVED_MEMBER_NAMES"]

#: Member names objects provide automatically; types may not redeclare them.
RESERVED_MEMBER_NAMES = frozenset(["surrogate", "type", "self", "this"])

_UNSET = object()


class AttributeSpec:
    """Declaration of one attribute in a type definition.

    Parameters
    ----------
    name:
        Attribute name; must be a valid identifier and not reserved.
    domain:
        The :class:`~repro.core.domains.Domain` values must belong to.
        Defaults to the untyped domain.
    default:
        Optional initial value, validated against the domain eagerly so a
        bad default fails at schema-definition time, not first use.
    """

    __slots__ = ("name", "domain", "_default", "has_default")

    def __init__(self, name: str, domain: Optional[Domain] = None, default: Any = _UNSET) -> None:
        if not name.isidentifier():
            raise SchemaError(f"attribute name {name!r} is not a valid identifier")
        if name in RESERVED_MEMBER_NAMES:
            raise SchemaError(f"attribute name {name!r} is reserved")
        self.name = name
        self.domain = domain if domain is not None else ANY
        self.has_default = default is not _UNSET
        if self.has_default:
            try:
                self._default = self.domain.validate(default)
            except DomainError as exc:
                raise SchemaError(
                    f"default for attribute {name!r} violates its domain: {exc}"
                ) from exc
        else:
            self._default = None

    @property
    def default(self) -> Any:
        """The validated default value (None when no default is declared)."""
        return self._default

    def validate(self, value: Any) -> Any:
        """Validate a candidate value against the attribute's domain."""
        try:
            return self.domain.validate(value)
        except DomainError as exc:
            raise DomainError(f"attribute {self.name!r}: {exc}") from exc

    def __repr__(self) -> str:
        return f"AttributeSpec({self.name!r}, {self.domain.describe()})"
