"""E11 — ablation: persistence scale.

Save/load round-trip cost over growing instance populations: both should
be linear in object count, and a loaded database must preserve the value-
inheritance read path (asserted).
"""

import pytest

from repro.engine import Database, dump_image, load_image
from repro.ddl.paper import load_gate_schema
from repro.workloads import gate_database, generate_library

LIBRARY_SIZES = [10, 50, 200]


def library_db(n_interfaces):
    db = gate_database("e11")
    generate_library(db, n_interfaces, implementations_per_interface=2)
    return db


def fresh_target():
    db = Database("e11")
    load_gate_schema(db.catalog)
    return db


class TestPersistenceScale:
    @pytest.mark.parametrize("n_interfaces", LIBRARY_SIZES)
    def test_dump_image(self, benchmark, n_interfaces):
        db = library_db(n_interfaces)
        image = benchmark(dump_image, db)
        assert len(image["objects"]) == db.count()

    @pytest.mark.parametrize("n_interfaces", LIBRARY_SIZES)
    def test_load_image(self, benchmark, n_interfaces):
        db = library_db(n_interfaces)
        image = dump_image(db)

        def setup():
            return (fresh_target(),), {}

        def run(target):
            load_image(image, target)
            return target

        benchmark.pedantic(run, setup=setup, rounds=5)

    def test_loaded_inheritance_is_live(self):
        db = library_db(5)
        image = dump_image(db)
        target = fresh_target()
        load_image(image, target)
        impls = target.objects_of_type("GateImplementation", include_subtypes=False)
        assert impls
        impl = impls[0]
        iface = impl.inheritance_links[0].transmitter
        iface.set_attribute("Length", 499)
        assert impl["Length"] == 499


def register(suite):
    """repro-bench adapter (see :mod:`repro.obs.bench`)."""
    n_interfaces = 10 if suite.quick else 50

    @suite.case(f"dump_image[{n_interfaces}]")
    def dump_case():
        db = library_db(n_interfaces)
        return lambda: dump_image(db)

    @suite.case(f"load_image[{n_interfaces}]")
    def load_case():
        image = dump_image(library_db(n_interfaces))

        def run():
            # The fresh target's schema load is part of the round-trip.
            load_image(image, fresh_target())

        return run
