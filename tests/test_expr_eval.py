"""Unit tests for expression parsing and evaluation (repro.expr)."""

import pytest

from repro.errors import ExprEvaluationError, ExprSyntaxError
from repro.expr import EvalContext, parse_constraints, parse_expression, truthy
from repro.expr.ast import Aggregate, Binary, Quantified


class Obj:
    """Minimal host object implementing the ``get_member`` protocol."""

    def __init__(self, **members):
        self._members = members

    def get_member(self, name):
        return self._members[name]


def evaluate(source, root=None, **bindings):
    node = parse_expression(source)
    return node.evaluate(EvalContext(root if root is not None else Obj(), bindings))


class TestLiteralsAndArithmetic:
    def test_numbers(self):
        assert evaluate("1 + 2 * 3") == 7
        assert evaluate("(1 + 2) * 3") == 9
        assert evaluate("7 % 3") == 1
        assert evaluate("3.5 + 0.5") == 4.0

    def test_unary_minus(self):
        assert evaluate("-4 + 1") == -3

    def test_division(self):
        assert evaluate("10 / 4") == 2.5
        with pytest.raises(ExprEvaluationError):
            evaluate("1 / 0")
        with pytest.raises(ExprEvaluationError):
            evaluate("1 % 0")

    def test_string_concatenation(self):
        assert evaluate("'a' + 'b'") == "ab"

    def test_arithmetic_type_error(self):
        with pytest.raises(ExprEvaluationError):
            evaluate("'a' * 2")

    def test_booleans(self):
        assert evaluate("true") is True
        assert evaluate("not false") is True


class TestComparisons:
    def test_equality_and_inequality(self):
        assert evaluate("1 = 1") and evaluate("1 != 2")
        assert evaluate("1 <> 2")

    def test_ordering(self):
        assert evaluate("2 < 3") and evaluate("3 <= 3")
        assert evaluate("4 > 3") and evaluate("4 >= 4")

    def test_incomparable_types(self):
        with pytest.raises(ExprEvaluationError):
            evaluate("'a' < 1")

    def test_logical_connectives(self):
        assert evaluate("1 = 1 and 2 = 2")
        assert evaluate("1 = 2 or 2 = 2")
        assert not evaluate("1 = 2 and 2 = 2")

    def test_membership(self):
        root = Obj(Pins=[1, 2, 3])
        assert evaluate("2 in Pins", root)
        assert evaluate("9 not in Pins", root)


class TestNamesAndPaths:
    def test_member_lookup(self):
        assert evaluate("Length * Width", Obj(Length=4, Width=5)) == 20

    def test_binding_shadows_member(self):
        assert evaluate("x", Obj(x=1), x=99) == 99

    def test_unresolved_name_is_its_own_label(self):
        # The enum-label convention: Function = AND.
        assert evaluate("Function = AND", Obj(Function="AND"))

    def test_strict_mode_raises(self):
        node = parse_expression("Nothing")
        ctx = EvalContext(Obj(), unresolved_as_literal=False)
        with pytest.raises(ExprEvaluationError):
            node.evaluate(ctx)

    def test_path_through_object(self):
        pin = Obj(InOut="IN")
        assert evaluate("p.InOut = IN", Obj(), p=pin)

    def test_path_over_collection_flattens(self):
        gate1 = Obj(Pins=[1, 2])
        gate2 = Obj(Pins=[3])
        root = Obj(SubGates=[gate1, gate2])
        assert evaluate("count(SubGates.Pins) = 3", root)

    def test_missing_member_in_comparison_is_false(self):
        assert not evaluate("p.Nope = 1", Obj(), p=Obj())


class TestAggregates:
    def test_count_sum_min_max_avg(self):
        root = Obj(Bores=[2, 4, 6])
        assert evaluate("count(Bores)", root) == 3
        assert evaluate("sum(Bores)", root) == 12
        assert evaluate("min(Bores)", root) == 2
        assert evaluate("max(Bores)", root) == 6
        assert evaluate("avg(Bores)", root) == 4

    def test_exists(self):
        assert evaluate("exists(Bores)", Obj(Bores=[1]))
        assert not evaluate("exists(Bores)", Obj(Bores=[]))

    def test_empty_min_raises(self):
        with pytest.raises(ExprEvaluationError):
            evaluate("min(Bores)", Obj(Bores=[]))

    def test_sum_of_empty_is_zero(self):
        assert evaluate("sum(Bores)", Obj(Bores=[])) == 0

    def test_count_with_trailing_where_paper_form(self):
        pins = [Obj(InOut="IN"), Obj(InOut="IN"), Obj(InOut="OUT")]
        root = Obj(Pins=pins)
        assert evaluate("count (Pins) = 2 where Pins.InOut = IN", root)
        assert evaluate("count (Pins) = 1 where Pins.InOut = OUT", root)

    def test_count_with_inner_where(self):
        pins = [Obj(InOut="IN"), Obj(InOut="OUT")]
        root = Obj(Pins=pins)
        assert evaluate("count(Pins where Pins.InOut = IN)", root) == 1

    def test_where_without_aggregate_rejected(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("Length = 2 where Pins.InOut = IN")

    def test_hash_count_form(self):
        root = Obj(Bolt=[Obj(Diameter=8)])
        assert evaluate("#s in Bolt = 1", root)

    def test_hash_count_binder_in_where(self):
        root = Obj(Bolt=[Obj(Diameter=8), Obj(Diameter=10)])
        assert evaluate("#s in Bolt = 1 where s.Diameter > 9", root)

    def test_scalar_coerces_to_singleton(self):
        assert evaluate("count(Length)", Obj(Length=5)) == 1


class TestQuantifiers:
    def test_cartesian_product(self):
        root = Obj(
            Bolt=[Obj(Diameter=8)],
            Nut=[Obj(Diameter=8)],
        )
        node = parse_expression("for (s in Bolt, n in Nut): s.Diameter = n.Diameter")
        assert node.evaluate(EvalContext(root))

    def test_violation_detected(self):
        root = Obj(Bolt=[Obj(Diameter=8)], Nut=[Obj(Diameter=9)])
        node = parse_expression("for (s in Bolt, n in Nut): s.Diameter = n.Diameter")
        assert not node.evaluate(EvalContext(root))

    def test_vacuous_truth_on_empty_collection(self):
        node = parse_expression("for b in Bores: b.Diameter > 0")
        assert node.evaluate(EvalContext(Obj(Bores=[])))

    def test_greedy_for_body_keeps_outer_binders_visible(self):
        # The §5 ScrewingType shape: the outer (s, n) binders stay visible
        # in constraints that follow an inner for.
        source = (
            "for (s in Bolt, n in Nut): s.Diameter = n.Diameter; "
            "for b in Bores: s.Diameter <= b.Diameter; "
            "s.Length = n.Length + sum (Bores.Length)"
        )
        root = Obj(
            Bolt=[Obj(Diameter=8, Length=30)],
            Nut=[Obj(Diameter=8, Length=10)],
            Bores=[Obj(Diameter=9, Length=12), Obj(Diameter=10, Length=8)],
        )
        constraints = parse_constraints(source)
        assert len(constraints) == 1  # the for swallowed the whole list
        assert constraints[0].evaluate(EvalContext(root, {"Bores": None}) .child({})) or True
        # Re-evaluate cleanly: Bores.Length must sum to 20 and 30 = 10 + 20.
        assert constraints[0].evaluate(EvalContext(root))

    def test_quantified_failure_inner(self):
        source = "for b in Bores: b.Length > 10"
        root = Obj(Bores=[Obj(Length=12), Obj(Length=8)])
        node = parse_constraints(source)[0]
        assert not node.evaluate(EvalContext(root))


class TestConstraintLists:
    def test_semicolon_separated(self):
        nodes = parse_constraints("1 = 1; 2 = 2; count(Pins) = 0")
        assert len(nodes) == 3

    def test_trailing_semicolon_ok(self):
        assert len(parse_constraints("1 = 1;")) == 1

    def test_empty_source(self):
        assert parse_constraints("   ") == []

    def test_paper_wiring_constraint(self):
        source = (
            "(Wire.Pin1 in Pins or Wire.Pin1 in SubGates.Pins) and "
            "(Wire.Pin2 in Pins or Wire.Pin2 in SubGates.Pins)"
        )
        p_ext = Obj(name="ext")
        p_sub = Obj(name="sub")
        gate = Obj(Pins=[p_ext], SubGates=[Obj(Pins=[p_sub])])
        wire_ok = Obj(Pin1=p_ext, Pin2=p_sub)
        wire_bad = Obj(Pin1=p_ext, Pin2=Obj(name="alien"))
        node = parse_expression(source)
        assert node.evaluate(EvalContext(gate, {"Wire": wire_ok}))
        assert not node.evaluate(EvalContext(gate, {"Wire": wire_bad}))


class TestParserErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("1 + 2 3")

    def test_unbalanced_paren(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("(1 + 2")

    def test_for_requires_colon(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("for s in Bolt s.D = 1")

    def test_binder_requires_in(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("for (s of Bolt): 1 = 1")

    def test_missing_value(self):
        with pytest.raises(ExprSyntaxError):
            parse_expression("1 + ")

    def test_unparse_round_trips_semantics(self):
        source = "count(Pins where Pins.InOut = IN) = 2"
        node = parse_expression(source)
        again = parse_expression(node.unparse())
        pins = [Obj(InOut="IN"), Obj(InOut="IN"), Obj(InOut="OUT")]
        root = Obj(Pins=pins)
        assert node.evaluate(EvalContext(root)) == again.evaluate(EvalContext(root))


class TestAstHelpers:
    def test_truthy_treats_missing_as_false(self):
        from repro.expr.context import MISSING

        assert not truthy(MISSING)
        assert truthy(1) and not truthy(0)

    def test_node_reprs(self):
        node = parse_expression("for b in Bores: count(Bores) >= 1")
        assert isinstance(node, Quantified)
        assert "for" in repr(node)
        inner = node.body[0]
        assert isinstance(inner, Binary)
        assert isinstance(inner.left, Aggregate)
