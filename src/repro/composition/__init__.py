"""Composition layer: interfaces, composites, configurations, baselines."""

from .cache import InheritedValueCache
from .baselines import (
    clone_object,
    copy_component,
    stale_members,
    view_component,
    view_rel_type,
)
from .composite import (
    Expansion,
    add_component,
    component_subobjects,
    components_of,
    expand,
    visible_image,
)
from .configuration import (
    ConfigurationNode,
    bill_of_materials,
    configuration,
    missing_components,
    provides_all_components,
    where_used,
)
from .interfaces import (
    abstraction_chain,
    abstraction_tree,
    implementations_of,
    interfaces_of,
    rebind,
    refine,
)

__all__ = [
    "InheritedValueCache",
    "clone_object",
    "copy_component",
    "stale_members",
    "view_component",
    "view_rel_type",
    "Expansion",
    "add_component",
    "component_subobjects",
    "components_of",
    "expand",
    "visible_image",
    "ConfigurationNode",
    "bill_of_materials",
    "configuration",
    "missing_components",
    "provides_all_components",
    "where_used",
    "abstraction_chain",
    "abstraction_tree",
    "implementations_of",
    "interfaces_of",
    "rebind",
    "refine",
]
