"""Threaded tests for the contention observatory: blocking acquisition,
waits-for edges, wait histograms, timeouts and deadlock refusal."""

import threading
import time

import pytest

from repro.core.surrogate import Surrogate
from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.errors import DeadlockError, LockConflictError, LockTimeoutError
from repro.txn import LockMode, LockTable, TransactionManager


def observed_table(name="contention", **kwargs):
    db = Database(name, observe=True)
    return db, LockTable(obs=db.obs, **kwargs)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestBlockingAcquire:
    def test_waiter_parks_then_is_granted_and_edges_drain(self):
        db, table = observed_table()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        granted = threading.Event()

        def waiter():
            table.acquire(2, s, LockMode.S, wait=True, timeout=5.0,
                          origin="read")
            granted.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        # The edge appears while the waiter is parked...
        assert wait_until(lambda: (2, 1) in table.waits_for())
        assert table.waiting_count() == 1
        assert not granted.is_set()
        # ...and drains once the holder releases.
        table.release_all(1)
        assert granted.is_set() or wait_until(granted.is_set)
        thread.join(timeout=5.0)
        assert table.waits_for() == set()
        assert table.waiting_count() == 0
        assert [surrogate for surrogate, _ in table.held_by(2)] == [s]

        metrics = db.obs.metrics
        assert metrics.counter("locks.waits").value >= 1
        assert metrics.counter("locks.waits.read").value >= 1
        assert metrics.counter("locks.grants_after_wait").value >= 1
        histogram = metrics.histogram("locks.wait_seconds")
        assert histogram.count >= 1
        assert histogram.sum > 0.0
        kinds = {record.kind for record in db.obs.audit.records()}
        assert {"lock.blocked", "lock.granted"} <= kinds

    def test_timeout_raises_and_counts(self):
        db, table = observed_table()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        start = time.monotonic()
        with pytest.raises(LockTimeoutError) as excinfo:
            table.acquire(2, s, LockMode.S, wait=True, timeout=0.05)
        assert time.monotonic() - start >= 0.05
        assert excinfo.value.holder == 1
        assert isinstance(excinfo.value, LockConflictError)  # back-compat
        assert table.waits_for() == set()
        assert db.obs.metrics.counter("locks.timeouts").value == 1
        # The timed-out wait is still priced in the histogram.
        assert db.obs.metrics.histogram("locks.wait_seconds").count >= 1
        kinds = {record.kind for record in db.obs.audit.records()}
        assert "lock.timeout" in kinds

    def test_default_table_timeout_applies(self):
        _, table = observed_table(wait_timeout=0.05)
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        with pytest.raises(LockTimeoutError):
            table.acquire(2, s, LockMode.S, wait=True)

    def test_non_blocking_default_unchanged(self):
        _, table = observed_table()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        with pytest.raises(LockConflictError):
            table.acquire(2, s, LockMode.S)

    def test_contention_snapshot_shape(self):
        _, table = observed_table()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        snap = table.contention_snapshot()
        assert snap == {
            "locked_objects": 1,
            "granted": 1,
            "holding_transactions": 1,
            "waiting": 0,
            "waits_for": [],
        }


class TestDeadlock:
    def test_cycle_is_refused_up_front(self):
        db, table = observed_table()
        a, b = Surrogate(1), Surrogate(2)
        table.acquire(1, a, LockMode.X)
        table.acquire(2, b, LockMode.X)
        first_granted = threading.Event()

        def first_waiter():
            table.acquire(1, b, LockMode.X, wait=True, timeout=5.0)
            first_granted.set()

        thread = threading.Thread(target=first_waiter)
        thread.start()
        assert wait_until(lambda: (1, 2) in table.waits_for())
        # txn 2 asking for a would close the cycle 1→2→1: refused
        # immediately, without parking.
        with pytest.raises(DeadlockError):
            table.acquire(2, a, LockMode.X, wait=True, timeout=5.0)
        assert db.obs.metrics.counter("locks.deadlocks").value == 1
        kinds = {record.kind for record in db.obs.audit.records()}
        assert "lock.deadlock" in kinds
        # The victim backs off; the parked waiter is granted.
        table.release_all(2)
        thread.join(timeout=5.0)
        assert first_granted.is_set()
        assert table.waits_for() == set()


class TestTryOnceProbe:
    """``timeout=0`` (or ``<= 0``) is a *probe*: try once, never park."""

    def test_probe_raises_immediately_without_parking(self):
        db, table = observed_table()
        s = Surrogate(1)
        table.acquire(1, s, LockMode.X)
        start = time.monotonic()
        with pytest.raises(LockTimeoutError) as excinfo:
            table.acquire(2, s, LockMode.S, wait=True, timeout=0)
        # No sleep happened: the probe returns in microseconds, not after
        # a scheduler round-trip.
        assert time.monotonic() - start < 0.25
        assert excinfo.value.holder == 1
        # The probe never entered the waiter machinery: no waits-for edge,
        # no parked-waiter metrics, no lock.blocked audit record.
        assert table.waits_for() == set()
        assert table.waiting_count() == 0
        metrics = db.obs.metrics
        assert metrics.counter("locks.waits").value == 0
        assert metrics.counter("locks.timeouts").value == 1
        kinds = {record.kind for record in db.obs.audit.records()}
        assert "lock.timeout" in kinds
        assert "lock.blocked" not in kinds

    def test_probe_never_reports_deadlock(self):
        # txn2 is parked waiting on txn1 (edge 2→1) while holding s3.
        # txn1 probing s3 with timeout=0 *would* close the cycle 1→2→1 if
        # the probe consulted the deadlock detector — but a probe backs
        # off instead of parking, so it must raise LockTimeoutError.
        _, table = observed_table()
        s1, s3 = Surrogate(1), Surrogate(3)
        table.acquire(1, s1, LockMode.X)
        table.acquire(2, s3, LockMode.X)
        parked = threading.Event()

        def waiter():
            table.acquire(2, s1, LockMode.S, wait=True, timeout=5.0)
            parked.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert wait_until(lambda: (2, 1) in table.waits_for())
        with pytest.raises(LockTimeoutError):
            table.acquire(1, s3, LockMode.S, wait=True, timeout=0)
        assert (1, 2) not in table.waits_for()
        table.release_all(1)
        thread.join(timeout=5.0)
        assert parked.is_set()
        table.release_all(2)

    def test_probe_grants_when_uncontended(self):
        _, table = observed_table()
        s = Surrogate(1)
        entry = table.acquire(1, s, LockMode.X, wait=True, timeout=0)
        assert entry.mode is LockMode.X

    def test_begin_lock_timeout_zero_is_a_probe(self):
        db = Database("txn-probe", observe=True)
        load_gate_schema(db.catalog)
        tm = TransactionManager(db)
        iface = db.create_object("GateInterface", Length=10, Width=5)
        holder = tm.begin()
        holder.write(iface)
        prober = tm.begin(wait=True, lock_timeout=0)
        start = time.monotonic()
        with pytest.raises(LockTimeoutError):
            prober.read(iface)
        assert time.monotonic() - start < 0.25
        assert tm.lock_table.waits_for() == set()
        assert db.obs.metrics.counter("locks.waits").value == 0
        assert db.obs.metrics.counter("locks.timeouts").value == 1
        holder.commit()
        prober.abort()

    def test_probe_succeeds_after_holder_commits(self):
        db = Database("txn-probe-retry", observe=True)
        load_gate_schema(db.catalog)
        tm = TransactionManager(db)
        iface = db.create_object("GateInterface", Length=10, Width=5)
        holder = tm.begin()
        holder.write(iface)
        prober = tm.begin(wait=True, lock_timeout=0)
        with pytest.raises(LockTimeoutError):
            prober.read(iface)
        holder.commit()
        locked = prober.read(iface)
        assert locked.get_member("Length") == 10
        prober.commit()


class TestTransactionLevel:
    @pytest.fixture
    def db(self):
        db = Database("txn-contention", observe=True)
        load_gate_schema(db.catalog)
        return db

    def make_interface(self, db):
        iface = db.create_object("GateInterface", Length=10, Width=5)
        iface.subclass("Pins").create(InOut="IN")
        return iface

    def test_begin_forwards_wait_and_timeout(self, db):
        tm = TransactionManager(db)
        iface = self.make_interface(db)
        holder = tm.begin()
        holder.write(iface)
        waiter = tm.begin(wait=True, lock_timeout=0.05)
        with pytest.raises(LockTimeoutError):
            waiter.read(iface)
        assert db.obs.metrics.counter("locks.timeouts").value >= 1
        assert db.obs.metrics.counter("locks.waits.read").value >= 1
        holder.commit()
        waiter.abort()

    def test_inherited_conflict_is_attributed(self, db):
        tm = TransactionManager(db)
        iface = self.make_interface(db)
        impl = db.create_object("GateImplementation", transmitter=iface)
        holder = tm.begin()
        holder.write(iface)
        reader = tm.begin()
        # Reading the implementation needs the §6 inherited read lock on
        # its transmitter, which the writer holds exclusively.
        with pytest.raises(LockConflictError):
            reader.read(impl, {"Length"})
        metrics = db.obs.metrics
        assert metrics.counter("locks.conflicts.inherited").value >= 1
        assert metrics.counter("locks.conflicts").value >= 1
        kinds = {record.kind for record in db.obs.audit.records()}
        assert "lock.inherited_conflict" in kinds
        holder.commit()
        reader.abort()

    def test_blocked_inherited_read_granted_after_commit(self, db):
        tm = TransactionManager(db)
        iface = self.make_interface(db)
        impl = db.create_object("GateImplementation", transmitter=iface)
        holder = tm.begin()
        holder.write(iface, {"Length"})
        iface.set("Length", 30)
        table = tm.lock_table
        value = {}

        def blocked_reader():
            txn = tm.begin(wait=True, lock_timeout=5.0)
            locked = txn.read(impl, {"Length"})
            value["Length"] = locked.get_member("Length")
            txn.commit()

        thread = threading.Thread(target=blocked_reader)
        thread.start()
        assert wait_until(lambda: table.waiting_count() > 0)
        holder.commit()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert value["Length"] == 30
        assert table.waits_for() == set()
        assert db.obs.metrics.histogram("locks.wait_seconds").count >= 1
