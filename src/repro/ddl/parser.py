"""Parser for the paper's schema-definition language.

The grammar follows the listings of §3–§5.  Known quirks of the published
text are accepted and recorded as parser *notes* rather than rejected:

* ``obj-type SimpleGate:`` uses ``:`` where every other listing uses ``=``;
* ``connections:`` appears once for ``types-of-subrels:``;
* ``inher-rel-typ`` (missing ``e``) introduces ``AllOf_PlateIf``;
* ``inheritor:`` is used for ``inheritor-in:`` inside ``obj-type Girder``;
* several ``end`` names do not match their opening declaration
  (``end AllOf_BoltType`` closes ``AllOf_NutType``).

Constraint bodies and ``where`` clauses are captured as raw source text and
parsed by :mod:`repro.expr` at build time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import DDLSyntaxError
from .ast import (
    AnonymousTypeBody,
    AttributeDecl,
    ConstructorAst,
    Declaration,
    DomainAst,
    DomainDecl,
    DomainRef,
    EnumLiteral,
    InherRelTypeDecl,
    ObjTypeDecl,
    ParticipantDecl,
    RecordLiteral,
    RelTypeDecl,
    Schema,
    SubclassDecl,
    SubrelDecl,
)
from .lexer import DdlToken, strip_comments, tokenize_ddl

__all__ = ["parse_schema_source"]

#: Keywords that terminate a raw-captured block (constraints, where).
_SECTION_KEYWORDS = frozenset(
    [
        "end",
        "end-domain",
        "attributes",
        "types-of-subclasses",
        "types-of-subrels",
        "connections",
        "constraints",
        "relates",
        "transmitter",
        "inheritor",
        "inheriting",
        "inheritor-in",
        "domain",
        "obj-type",
        "rel-type",
        "inher-rel-type",
    ]
)

_CONSTRUCTORS = ("set-of", "list-of", "matrix-of")


class _DdlParser:
    def __init__(self, source: str) -> None:
        self.source = strip_comments(source)
        self.tokens = tokenize_ddl(self.source)
        self.pos = 0
        self.notes: List[str] = []

    # -- plumbing ---------------------------------------------------------------

    @property
    def current(self) -> DdlToken:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> DdlToken:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> DdlToken:
        token = self.tokens[self.pos]
        if token.kind != "EOF":
            self.pos += 1
        return token

    def error(self, message: str) -> DDLSyntaxError:
        token = self.current
        shown = token.text or "<end of input>"
        return DDLSyntaxError(f"{message}, found {shown!r}", line=token.line)

    def expect_op(self, text: str) -> DdlToken:
        if not self.current.is_op(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> DdlToken:
        if not self.current.is_keyword(word):
            raise self.error(f"expected keyword {word!r}")
        return self.advance()

    def expect_ident(self) -> DdlToken:
        if self.current.kind != "IDENT":
            raise self.error("expected an identifier")
        return self.advance()

    def skip_semicolons(self) -> None:
        while self.current.is_op(";"):
            self.advance()

    def note(self, message: str) -> None:
        self.notes.append(f"line {self.current.line}: {message}")

    # -- top level -----------------------------------------------------------------

    def parse(self) -> Schema:
        declarations: List[Declaration] = []
        while True:
            self.skip_semicolons()
            token = self.current
            if token.kind == "EOF":
                break
            if token.is_keyword("domain"):
                declarations.append(self.domain_decl())
            elif token.is_keyword("obj-type"):
                declarations.append(self.obj_type_decl())
            elif token.is_keyword("rel-type"):
                declarations.append(self.rel_type_decl())
            elif token.is_keyword("inher-rel-type"):
                declarations.append(self.inher_rel_type_decl())
            elif token.kind == "IDENT" and token.text.lower() == "inher-rel-typ":
                # The paper's AllOf_PlateIf listing drops the final 'e'.
                self.note("accepting 'inher-rel-typ' as 'inher-rel-type'")
                self.advance()
                declarations.append(self.inher_rel_type_decl(keyword_consumed=True))
            else:
                raise self.error("expected a declaration")
        return Schema(declarations, self.notes)

    # -- domains -------------------------------------------------------------------

    def domain_decl(self) -> DomainDecl:
        line = self.current.line
        self.expect_keyword("domain")
        name = self.expect_ident().text
        self.expect_op("=")
        domain = self.domain_expr(allow_end_domain=True)
        self.skip_semicolons()
        return DomainDecl(name, domain, line=line)

    def domain_expr(self, allow_end_domain: bool = False) -> DomainAst:
        token = self.current
        if token.is_keyword(*_CONSTRUCTORS):
            constructor = self.advance().text
            return ConstructorAst(constructor, self.domain_expr())
        if token.is_keyword("record"):
            self.advance()
            self.expect_op(":")
            fields = self.record_fields(stop_at_end_domain=True)
            self.expect_keyword("end-domain")
            if self.current.kind == "IDENT":
                self.advance()  # the repeated domain name
            return RecordLiteral(tuple(fields))
        if token.is_op("("):
            return self.paren_domain()
        if token.kind == "IDENT":
            return DomainRef(self.advance().text)
        raise self.error("expected a domain")

    def paren_domain(self) -> DomainAst:
        """``(IN, OUT)`` enum or ``(X, Y: integer)`` / pin-record literal."""
        self.expect_op("(")
        names = [self.expect_ident().text]
        while self.current.is_op(","):
            self.advance()
            names.append(self.expect_ident().text)
        if self.current.is_op(")"):
            self.advance()
            return EnumLiteral(tuple(names))
        # Record form: the collected names are the first field group.
        self.expect_op(":")
        first_domain = self.domain_expr()
        fields: List[Tuple[Tuple[str, ...], DomainAst]] = [
            (tuple(names), first_domain)
        ]
        while self.current.is_op(";", ","):
            self.advance()
            if self.current.is_op(")"):
                break
            group = [self.expect_ident().text]
            while self.current.is_op(","):
                self.advance()
                group.append(self.expect_ident().text)
            self.expect_op(":")
            fields.append((tuple(group), self.domain_expr()))
        self.expect_op(")")
        return RecordLiteral(tuple(fields))

    def record_fields(self, stop_at_end_domain: bool) -> List[Tuple[Tuple[str, ...], DomainAst]]:
        fields: List[Tuple[Tuple[str, ...], DomainAst]] = []
        while True:
            self.skip_semicolons()
            if stop_at_end_domain and self.current.is_keyword("end-domain"):
                break
            if self.current.kind != "IDENT":
                break
            names = [self.expect_ident().text]
            while self.current.is_op(","):
                self.advance()
                names.append(self.expect_ident().text)
            self.expect_op(":")
            fields.append((tuple(names), self.domain_expr()))
        return fields

    # -- sections shared by the three type declarations --------------------------------

    def attribute_section(self) -> List[AttributeDecl]:
        self.expect_op(":")
        groups: List[AttributeDecl] = []
        while True:
            self.skip_semicolons()
            if self.current.kind != "IDENT":
                break
            # Attribute group: names ':' domain — require the colon to avoid
            # swallowing a following declaration's name.
            line = self.current.line
            names = [self.expect_ident().text]
            while self.current.is_op(","):
                self.advance()
                names.append(self.expect_ident().text)
            self.expect_op(":")
            groups.append(AttributeDecl(tuple(names), self.domain_expr(), line=line))
        return groups

    def subclass_section(self, owner: str) -> List[SubclassDecl]:
        self.expect_op(":")
        entries: List[SubclassDecl] = []
        while True:
            self.skip_semicolons()
            if self.current.kind != "IDENT":
                break
            line = self.current.line
            name = self.expect_ident().text
            self.expect_op(":")
            if self.current.kind == "IDENT":
                entries.append(SubclassDecl(name, type_name=self.advance().text, line=line))
                continue
            if self.current.is_keyword("inheritor-in", "inheritor", "attributes"):
                entries.append(SubclassDecl(name, body=self.anonymous_body(), line=line))
                continue
            raise self.error(f"expected a type name or inline body for subclass {name!r}")
        return entries

    def anonymous_body(self) -> AnonymousTypeBody:
        body = AnonymousTypeBody()
        while True:
            self.skip_semicolons()
            token = self.current
            if token.is_keyword("inheritor-in") or token.is_keyword("inheritor"):
                if token.is_keyword("inheritor"):
                    self.note("accepting 'inheritor:' as 'inheritor-in:' (paper typo)")
                self.advance()
                self.expect_op(":")
                body.inheritor_in.append(self.expect_ident().text)
                while self.current.is_op(","):
                    self.advance()
                    body.inheritor_in.append(self.expect_ident().text)
            elif token.is_keyword("attributes"):
                self.advance()
                body.attributes.extend(self.attribute_section())
            else:
                # A 'constraints:' section after subclass entries belongs to
                # the enclosing type (ScrewingType's constraints follow the
                # Bolt/Nut entries), so it is not consumed here.
                break
        return body

    def subrel_section(self) -> List[SubrelDecl]:
        self.expect_op(":")
        entries: List[SubrelDecl] = []
        while True:
            self.skip_semicolons()
            if self.current.kind != "IDENT":
                break
            line = self.current.line
            name = self.expect_ident().text
            self.expect_op(":")
            rel_type_name = self.expect_ident().text
            where_source = ""
            if self.current.is_keyword("where"):
                self.advance()
                where_source = self.raw_block()
            entries.append(SubrelDecl(name, rel_type_name, where_source, line=line))
        return entries

    def raw_block(self, multi: bool = False) -> str:
        """Capture raw expression text up to the next section keyword.

        With ``multi=False`` (a ``where`` clause) the first semicolon at
        parenthesis depth 0 terminates the block — **unless** a top-level
        ``for`` was seen, because the §5 quantified constraints span several
        ``;``-separated lines (the expression parser's greedy ``for``
        handles them).  With ``multi=True`` (a ``constraints:`` section) the
        block is a ``;``-separated list and only a section keyword or
        ``end`` terminates it.
        """
        if self.current.is_op(":"):
            self.advance()
        start: Optional[int] = None
        end = None
        depth = 0
        saw_for = False
        while True:
            token = self.current
            if token.kind == "EOF":
                break
            if depth == 0 and token.kind == "KEYWORD" and token.text in _SECTION_KEYWORDS:
                break
            if token.is_op("("):
                depth += 1
            elif token.is_op(")"):
                depth -= 1
            elif token.kind == "IDENT" and token.text == "for" and depth == 0:
                saw_for = True
            elif token.is_op(";") and depth == 0 and not multi and not saw_for:
                break  # caller's skip_semicolons consumes the separator
            if start is None:
                start = token.position
            if not token.is_op(";"):
                end = token.position + len(token.text)
            self.advance()
        if start is None or end is None:
            return ""
        return self.source[start:end].strip()

    def end_clause(self, declared_name: str) -> str:
        self.expect_keyword("end")
        end_name = ""
        if self.current.kind == "IDENT":
            end_name = self.advance().text
            if end_name != declared_name:
                self.note(
                    f"'end {end_name}' closes declaration {declared_name!r} "
                    f"(name mismatch, as in the paper)"
                )
        self.skip_semicolons()
        return end_name

    # -- obj-type -----------------------------------------------------------------

    def obj_type_decl(self) -> ObjTypeDecl:
        line = self.current.line
        self.expect_keyword("obj-type")
        name = self.expect_ident().text
        if self.current.is_op("=", ":"):
            self.advance()
        decl = ObjTypeDecl(name, line=line)
        while True:
            self.skip_semicolons()
            token = self.current
            if token.is_keyword("end"):
                decl.end_name = self.end_clause(name)
                break
            if token.is_keyword("inheritor-in") or token.is_keyword("inheritor"):
                if token.is_keyword("inheritor"):
                    self.note("accepting 'inheritor:' as 'inheritor-in:' (paper typo)")
                self.advance()
                self.expect_op(":")
                decl.inheritor_in.append(self.expect_ident().text)
                while self.current.is_op(","):
                    self.advance()
                    decl.inheritor_in.append(self.expect_ident().text)
            elif token.is_keyword("attributes"):
                self.advance()
                decl.attributes.extend(self.attribute_section())
            elif token.is_keyword("types-of-subclasses"):
                self.advance()
                decl.subclasses.extend(self.subclass_section(name))
            elif token.is_keyword("types-of-subrels") or token.is_keyword("connections"):
                if token.is_keyword("connections"):
                    self.note("accepting 'connections:' as 'types-of-subrels:'")
                self.advance()
                decl.subrels.extend(self.subrel_section())
            elif token.is_keyword("constraints"):
                self.advance()
                existing = decl.constraints
                block = self.raw_block(multi=True)
                decl.constraints = f"{existing}; {block}" if existing else block
            elif token.kind == "EOF":
                raise self.error(f"obj-type {name!r} is missing its 'end'")
            else:
                raise self.error(f"unexpected token in obj-type {name!r}")
        return decl

    # -- rel-type -----------------------------------------------------------------

    def participant_group(self) -> ParticipantDecl:
        line = self.current.line
        names = [self.expect_ident().text]
        while self.current.is_op(","):
            self.advance()
            names.append(self.expect_ident().text)
        self.expect_op(":")
        many = False
        if self.current.is_keyword("set-of"):
            many = True
            self.advance()
        if self.current.is_keyword("object-of-type"):
            self.advance()
            type_name: Optional[str] = self.expect_ident().text
        elif self.current.is_keyword("object"):
            self.advance()
            type_name = None
        else:
            raise self.error("expected 'object-of-type <name>' or 'object'")
        return ParticipantDecl(tuple(names), type_name, many, line=line)

    def relates_section(self) -> List[ParticipantDecl]:
        self.expect_op(":")
        groups: List[ParticipantDecl] = []
        while True:
            self.skip_semicolons()
            if self.current.kind != "IDENT":
                break
            groups.append(self.participant_group())
        return groups

    def rel_type_decl(self) -> RelTypeDecl:
        line = self.current.line
        self.expect_keyword("rel-type")
        name = self.expect_ident().text
        if self.current.is_op("=", ":"):
            self.advance()
        decl = RelTypeDecl(name, line=line)
        while True:
            self.skip_semicolons()
            token = self.current
            if token.is_keyword("end"):
                decl.end_name = self.end_clause(name)
                break
            if token.is_keyword("relates"):
                self.advance()
                decl.relates.extend(self.relates_section())
            elif token.is_keyword("attributes"):
                self.advance()
                decl.attributes.extend(self.attribute_section())
            elif token.is_keyword("types-of-subclasses"):
                self.advance()
                decl.subclasses.extend(self.subclass_section(name))
            elif token.is_keyword("types-of-subrels") or token.is_keyword("connections"):
                self.advance()
                decl.subrels.extend(self.subrel_section())
            elif token.is_keyword("constraints"):
                self.advance()
                existing = decl.constraints
                block = self.raw_block(multi=True)
                decl.constraints = f"{existing}; {block}" if existing else block
            elif token.kind == "EOF":
                raise self.error(f"rel-type {name!r} is missing its 'end'")
            else:
                raise self.error(f"unexpected token in rel-type {name!r}")
        return decl

    # -- inher-rel-type ---------------------------------------------------------------

    def inher_rel_type_decl(self, keyword_consumed: bool = False) -> InherRelTypeDecl:
        line = self.current.line
        if not keyword_consumed:
            self.expect_keyword("inher-rel-type")
        name = self.expect_ident().text
        if self.current.is_op("=", ":"):
            self.advance()
        decl = InherRelTypeDecl(name, line=line)
        while True:
            self.skip_semicolons()
            token = self.current
            if token.is_keyword("end"):
                decl.end_name = self.end_clause(name)
                break
            if token.is_keyword("transmitter"):
                self.advance()
                self.expect_op(":")
                if self.current.is_keyword("object-of-type"):
                    self.advance()
                    decl.transmitter_type = self.expect_ident().text
                else:
                    raise self.error("transmitter must be 'object-of-type <name>'")
            elif token.is_keyword("inheritor"):
                self.advance()
                self.expect_op(":")
                if self.current.is_keyword("object-of-type"):
                    self.advance()
                    decl.inheritor_type = self.expect_ident().text
                elif self.current.is_keyword("object"):
                    self.advance()
                    decl.inheritor_type = None
                else:
                    raise self.error("inheritor must be 'object-of-type <name>' or 'object'")
            elif token.is_keyword("inheriting"):
                self.advance()
                self.expect_op(":")
                decl.inheriting.append(self.expect_ident().text)
                while self.current.is_op(","):
                    self.advance()
                    if self.current.kind != "IDENT":
                        # The paper's AllOf_BoltType ends "Length, Diameter,"
                        self.note("tolerating trailing comma in inheriting clause")
                        break
                    decl.inheriting.append(self.expect_ident().text)
            elif token.is_keyword("attributes"):
                self.advance()
                decl.attributes.extend(self.attribute_section())
            elif token.is_keyword("types-of-subclasses"):
                self.advance()
                decl.subclasses.extend(self.subclass_section(name))
            elif token.is_keyword("constraints"):
                self.advance()
                existing = decl.constraints
                block = self.raw_block(multi=True)
                decl.constraints = f"{existing}; {block}" if existing else block
            elif token.kind == "EOF":
                raise self.error(f"inher-rel-type {name!r} is missing its 'end'")
            else:
                raise self.error(f"unexpected token in inher-rel-type {name!r}")
        return decl


def parse_schema_source(source: str) -> Schema:
    """Parse DDL source text into a :class:`~repro.ddl.ast.Schema`."""
    return _DdlParser(source).parse()
