"""Tests for the causal provenance layer (repro.obs.provenance / export).

Covers the causal stamps :meth:`EventBus.emit` threads through the cause
stack, the audit log and its JSONL sink, propagation cones against the
:func:`iter_propagation` oracle, the :func:`explain_value` walk against
:func:`naive_resolution_chain` / :func:`naive_get_member` over randomized
diamond schemas, and the stable ``repro.audit/1`` / ``repro.metrics/1``
schemas.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import resolution
from repro.core.attributes import AttributeSpec
from repro.core.domains import ANY
from repro.core.inheritance import (
    InheritanceRelationshipType,
    iter_propagation,
    iter_propagation_depths,
)
from repro.core.objects import bind, new_object
from repro.core.objtype import ObjectType
from repro.ddl.paper import load_gate_schema
from repro.engine import Database
from repro.engine.events import EventBus
from repro.errors import ObjectDeletedError, ReproError, UnknownAttributeError
from repro.obs import (
    AUDIT_SCHEMA_VERSION,
    audit_snapshot,
    explain_value,
    render_audit_table,
)
from repro.txn import TransactionManager

_counter = [0]


def _uname(prefix):
    _counter[0] += 1
    return f"Prov{prefix}_{_counter[0]}"


@pytest.fixture
def db():
    db = Database("prov", observe=True)
    load_gate_schema(db.catalog)
    return db


def make_interface(db, length=10):
    iface = db.create_object("GateInterface", Length=length, Width=5)
    iface.subclass("Pins").create(InOut="IN")
    return iface


def make_implementation(db, iface):
    return db.create_object("GateImplementation", transmitter=iface)


# ---------------------------------------------------------------------------
# causal stamping on the bus
# ---------------------------------------------------------------------------


class TestCausalStamps:
    def test_seq_is_globally_monotonic_across_databases(self):
        a, b = EventBus(), EventBus()
        seqs = [
            a.emit("k1").seq,
            b.emit("k2").seq,
            a.emit("k3").seq,
        ]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_root_event_is_its_own_trace_with_no_cause(self):
        event = EventBus().emit("root")
        assert event.cause is None
        assert event.trace == event.seq

    def test_quiet_emit_skips_the_clock(self):
        # No handlers, no recording: the hot path must not read time().
        event = EventBus().emit("quiet")
        assert event.ts == 0.0

    def test_handled_emit_is_timestamped(self):
        bus = EventBus()
        bus.subscribe("k", lambda e: None)
        assert bus.emit("k").ts > 0.0

    def test_nested_emits_link_to_their_parent(self):
        bus = EventBus()
        children = []

        def handler(event):
            if event.kind == "parent":
                children.append(bus.emit("child"))

        bus.subscribe("parent", handler)
        bus.subscribe("child", lambda e: None)
        parent = bus.emit("parent")
        (child,) = children
        assert child.cause == parent.seq
        assert child.trace == parent.trace == parent.seq

    def test_grandchildren_keep_the_root_trace(self):
        bus = EventBus()
        collected = {}

        def on_a(event):
            collected["b"] = bus.emit("b")

        def on_b(event):
            collected["c"] = bus.emit("c")

        bus.subscribe("a", on_a)
        bus.subscribe("b", on_b)
        bus.subscribe("c", lambda e: None)
        a = bus.emit("a")
        assert collected["b"].cause == a.seq
        assert collected["c"].cause == collected["b"].seq
        assert collected["c"].trace == a.seq

    def test_cause_stack_unwinds_after_handlers(self):
        bus = EventBus()
        bus.subscribe("k", lambda e: None)
        bus.emit("k")
        later = bus.emit("k")
        assert later.cause is None
        assert bus.cause_context() is None


# ---------------------------------------------------------------------------
# the audit log
# ---------------------------------------------------------------------------


class TestAuditLog:
    def test_mirrors_bus_events_with_their_stamps(self, db):
        iface = make_interface(db)
        event_seqs = {
            r.seq for r in db.obs.audit.records(kind="attribute_updated")
        }
        assert event_seqs  # creation set Length/Width
        # Mirrored records carry the event's own seq (same total order).
        recent = {e.seq for e in db.obs.tap.recent("attribute_updated")}
        assert recent <= event_seqs
        assert iface.get_member("Length") == 10

    def test_derived_records_share_the_global_counter(self, db):
        audit = db.obs.audit
        before = db.events.emit("marker").seq
        record = audit.record("derived.kind", detail_key=1)
        after = db.events.emit("marker").seq
        assert before < record.seq < after

    def test_operation_frames_parent_enclosed_emits(self, db):
        audit = db.obs.audit
        with audit.operation("op.kind", txn=1) as op:
            inner = db.events.emit("inner")
        assert inner.cause == op.seq
        assert inner.trace == op.trace == op.seq
        outer = db.events.emit("outer")
        assert outer.cause is None

    def test_ring_is_bounded_but_appended_counts_all(self):
        bus = EventBus()
        from repro.obs.provenance import AuditLog

        log = AuditLog(bus, ring_size=4)
        for i in range(10):
            log.record("k", i=i)
        assert len(log) == 4
        assert log.appended == 10

    def test_records_filters(self, db):
        iface = make_interface(db)
        audit = db.obs.audit
        by_kind = audit.records(kind="attribute_updated")
        assert by_kind and all(r.kind == "attribute_updated" for r in by_kind)
        by_subject = audit.records(subject=iface)
        assert by_subject and all(r.subject is iface for r in by_subject)
        by_substring = audit.records(subject="GateInterface")
        # Mirrored events materialise to fresh AuditRecords per read, so
        # compare by seq (the stable identity), not object identity.
        assert {r.seq for r in by_subject} <= {r.seq for r in by_substring}
        trace = by_kind[0].trace
        assert all(r.trace == trace for r in audit.records(trace=trace))

    def test_jsonl_sink_receives_every_record(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        db = Database("sink")
        db.enable_observability(audit_sink=str(path))
        load_gate_schema(db.catalog)
        make_interface(db)
        db.obs.audit.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) == db.obs.audit.appended
        assert all(
            set(line) == {"seq", "ts", "kind", "subject", "cause", "trace", "detail"}
            for line in lines
        )


# ---------------------------------------------------------------------------
# disabled path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_observe_false_emits_zero_provenance_records(self):
        db = Database("dark")
        load_gate_schema(db.catalog)
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        iface.set_attribute("Length", 99)
        tm = TransactionManager(db)
        with tm.begin() as txn:
            txn.read(impl)
            txn.set(iface, "Width", 7)
            txn.commit()
        assert db.obs is None
        # The quiet bus still stamps seq/trace (deterministic replay) but
        # never reads the clock and keeps no audit anywhere.
        event = db.events.emit("probe")
        assert event.seq > 0 and event.ts == 0.0

    def test_hot_objects_carry_no_extra_attributes_when_dark(self):
        db = Database("dark2")
        load_gate_schema(db.catalog)
        iface = make_interface(db)
        assert not hasattr(iface, "audit")
        assert not any("provenance" in name for name in vars(iface))


# ---------------------------------------------------------------------------
# propagation cones
# ---------------------------------------------------------------------------


class TestPropagationCones:
    def test_cone_members_match_iter_propagation_exactly(self, db):
        iface = make_interface(db)
        impl_a = make_implementation(db, iface)
        impl_b = make_implementation(db, iface)
        iface.set_attribute("Length", 42)
        cones = db.obs.audit.cones(kind="attribute_updated")
        cone = [c for c in cones if c.root.subject is iface and c.breadth][-1]
        expected = [inh for _, inh in iter_propagation(iface, "Length")]
        assert cone.members() == expected
        assert {impl_a, impl_b} == set(cone.members())
        assert cone.breadth == 2
        assert cone.depth == 1
        assert cone.by_rel_type == {"AllOf_GateInterface": 2}

    def test_cone_depth_tracks_transitive_fanout(self):
        # A three-level chain: top -> mid -> leaf, all permeable.
        top_type = ObjectType(_uname("Top"), attributes={"alpha": ANY})
        rel1 = InheritanceRelationshipType(
            _uname("Rel1"), transmitter_type=top_type, inheriting=["alpha"]
        )
        mid_type = ObjectType(_uname("Mid"))
        mid_type.declare_inheritor_in(rel1)
        rel2 = InheritanceRelationshipType(
            _uname("Rel2"), transmitter_type=mid_type, inheriting=["alpha"]
        )
        leaf_type = ObjectType(_uname("Leaf"))
        leaf_type.declare_inheritor_in(rel2)

        db = Database("deep", observe=True)
        top = db.create_object(top_type, alpha=1)
        mid = db.create_object(mid_type, transmitter=top, via=rel1)
        leaf = db.create_object(leaf_type, transmitter=mid, via=rel2)
        top.set_attribute("alpha", 2)

        cone = [
            c
            for c in db.obs.audit.cones(kind="attribute_updated")
            if c.root.subject is top and c.breadth
        ][-1]
        assert cone.members() == [
            inh for _, inh in iter_propagation(top, "alpha")
        ]
        assert set(cone.members()) == {mid, leaf}
        assert cone.depth == 2
        depths = {
            (link.rel_type.name, inh): depth
            for link, inh, depth in iter_propagation_depths(top, "alpha")
        }
        assert depths[(rel1.name, mid)] == 1
        assert depths[(rel2.name, leaf)] == 2

    def test_iter_propagation_depths_membership_equals_iter_propagation(self, db):
        iface = make_interface(db)
        make_implementation(db, iface)
        make_implementation(db, iface)
        with_depth = [
            (link, inh) for link, inh, _ in iter_propagation_depths(iface, "Length")
        ]
        assert with_depth == list(iter_propagation(iface, "Length"))

    def test_txn_abort_parents_its_restores(self, db):
        iface = make_interface(db)
        tm = TransactionManager(db)
        txn = tm.begin()
        txn.set(iface, "Length", 77)
        txn.abort()
        audit = db.obs.audit
        (abort_record,) = audit.records(kind="txn.abort")
        restores = audit.records(kind="attribute_restored", trace=abort_record.trace)
        assert restores and all(r.cause == abort_record.seq for r in restores)
        assert iface.get_member("Length") == 10

    def test_txn_read_parents_lock_inheritance(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        tm = TransactionManager(db)
        with tm.begin() as txn:
            txn.read(impl)
        audit = db.obs.audit
        reads = [r for r in audit.records(kind="txn.read") if r.subject is impl]
        assert reads
        inherited = audit.records(kind="lock.inherited", trace=reads[-1].trace)
        assert inherited and any(r.subject is iface for r in inherited)
        assert all(r.cause == reads[-1].seq for r in inherited)

    def test_index_maintenance_is_linked_to_its_mutation(self, db):
        iface = make_interface(db)
        db.create_class("Faces", "GateInterface")
        db.class_("Faces").add(iface)
        db.indexes.ensure_value_index(
            "class", "Faces", iface.object_type, "Length"
        )
        iface.set_attribute("Length", 55)
        audit = db.obs.audit
        updates = [
            r
            for r in audit.records(kind="attribute_updated")
            if r.subject is iface and r.detail.get("attribute") == "Length"
        ]
        maintenance = audit.records(kind="index.maintenance", subject=iface)
        assert maintenance
        assert maintenance[-1].cause == updates[-1].seq
        assert maintenance[-1].detail["index"] == "class:Faces.Length"


# ---------------------------------------------------------------------------
# explain_value
# ---------------------------------------------------------------------------


class TestExplainValue:
    def test_inherited_value(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        prov = db.explain_value(impl, "Length")
        assert prov.value == 10
        assert prov.holder is iface
        assert prov.hops == 1
        assert prov.source == "transmitter-attribute"
        assert prov.chain() == resolution.naive_resolution_chain(impl, "Length")
        followed = [
            d for step in prov.steps for d in step.decisions if d["followed"]
        ]
        assert [d["rel_type"] for d in followed] == ["AllOf_GateInterface"]

    def test_local_value(self, db):
        iface = make_interface(db)
        prov = explain_value(iface, "Length")
        assert prov.value == 10
        assert prov.holder is iface
        assert prov.hops == 0
        assert prov.source == "local-attribute"

    def test_surrogate_and_subclass_members(self, db):
        iface = make_interface(db)
        assert explain_value(iface, "surrogate").source == "surrogate"
        pins = explain_value(iface, "Pins")
        assert pins.source == "subclass"
        assert pins.value == iface.get_member("Pins")

    def test_default_and_declared_unset(self):
        obj_type = ObjectType(
            _uname("Def"),
            attributes={
                "with_default": AttributeSpec("with_default", ANY, default=5),
                "bare": ANY,
            },
        )
        obj = new_object(obj_type)
        assert explain_value(obj, "with_default").source == "default"
        assert explain_value(obj, "with_default").value == 5
        assert explain_value(obj, "bare").source == "declared-unset"
        assert explain_value(obj, "bare").value is None

    def test_diamond_follows_declaration_order(self):
        t_type = ObjectType(_uname("DTrans"), attributes={"alpha": ANY})
        rel_a = InheritanceRelationshipType(
            _uname("DRelA"), transmitter_type=t_type, inheriting=["alpha"]
        )
        rel_b = InheritanceRelationshipType(
            _uname("DRelB"), transmitter_type=t_type, inheriting=["alpha"]
        )
        i_type = ObjectType(_uname("DInh"))
        i_type.declare_inheritor_in(rel_a)
        i_type.declare_inheritor_in(rel_b)
        t1, t2 = new_object(t_type), new_object(t_type)
        t1.set_attribute("alpha", "via-a")
        t2.set_attribute("alpha", "via-b")
        inh = new_object(i_type)
        bind(inh, t2, rel_b)
        bind(inh, t1, rel_a)
        prov = explain_value(inh, "alpha")
        assert prov.value == "via-a" == inh.get_member("alpha")
        assert prov.holder is t1
        # Both declarations are reported, in order, with their verdicts.
        decisions = prov.steps[0].decisions
        assert [d["rel_type"] for d in decisions] == [rel_a.name, rel_b.name]
        assert decisions[0]["followed"] and not decisions[1]["followed"]
        assert decisions[1]["bound"] and decisions[1]["permeable"]

    def test_served_by_memo_after_a_read(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        fresh = db.explain_value(impl, "Length")
        assert fresh.served_by == "plan-walk"
        impl.get_member("Length")  # populate the holder memo
        warm = db.explain_value(impl, "Length")
        assert warm.served_by == "holder-memo"
        # A rebind invalidates: provenance reports the walk again.
        impl.inheritance_links[0].unbind()
        assert db.explain_value(impl, "Length").served_by == "plan-walk"

    def test_reports_tracking_indexes(self, db):
        iface = make_interface(db)
        db.create_class("Faces", "GateInterface")
        db.class_("Faces").add(iface)
        db.indexes.ensure_value_index(
            "class", "Faces", iface.object_type, "Length"
        )
        prov = db.explain_value(iface, "Length")
        assert prov.indexes == ["class:Faces.Length"]

    def test_raises_exactly_like_the_read(self, db):
        iface = make_interface(db)
        with pytest.raises(UnknownAttributeError) as caught:
            explain_value(iface, "NoSuchMember")
        with pytest.raises(UnknownAttributeError) as expected:
            resolution.naive_get_member(iface, "NoSuchMember")
        assert str(caught.value) == str(expected.value)
        iface.delete(unbind_inheritors=True)
        with pytest.raises(ObjectDeletedError):
            explain_value(iface, "Length")

    def test_epochs_reflect_holder_mutation(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        before = db.explain_value(impl, "Length").epochs
        iface.set_attribute("Length", 11)
        after = db.explain_value(impl, "Length").epochs
        assert after["holder_mutation"] > before["holder_mutation"]
        assert set(before) == {"schema", "binding", "holder_mutation"}

    def test_render_and_as_dict_are_stable(self, db):
        iface = make_interface(db)
        impl = make_implementation(db, iface)
        prov = db.explain_value(impl, "Length")
        text = prov.render()
        assert "holder:" in text and "followed" in text
        shape = prov.as_dict()
        assert set(shape) == {
            "object", "attribute", "value", "holder", "hops", "source",
            "served_by", "epochs", "indexes", "views", "path",
        }
        json.dumps(shape)  # JSON-safe


member_subsets = st.sets(
    st.sampled_from(("alpha", "beta", "gamma")), min_size=1, max_size=3
)


@settings(max_examples=50, deadline=None)
@given(
    transmitter_members=member_subsets,
    perm_a=member_subsets,
    perm_b=member_subsets,
    script=st.tuples(*(st.booleans() for _ in range(4))),
    probe=st.sampled_from(("alpha", "beta", "gamma", "surrogate", "missing")),
)
def test_explain_value_chain_matches_naive_oracle(
    transmitter_members, perm_a, perm_b, script, probe
):
    """explain_value's chain == naive_resolution_chain, value ==
    naive_get_member, over randomized diamond schemas."""
    bind_a, bind_b, set_locals, declare_b_first = script
    # Permeability clauses must name transmitter members.
    perm_a = (perm_a & transmitter_members) or set(sorted(transmitter_members)[:1])
    perm_b = (perm_b & transmitter_members) or set(sorted(transmitter_members)[-1:])
    attrs = {name: ANY for name in sorted(transmitter_members)}
    t_type = ObjectType(_uname("HTrans"), attributes=attrs)
    rel_a = InheritanceRelationshipType(
        _uname("HRelA"), transmitter_type=t_type, inheriting=sorted(perm_a)
    )
    rel_b = InheritanceRelationshipType(
        _uname("HRelB"), transmitter_type=t_type, inheriting=sorted(perm_b)
    )
    i_type = ObjectType(_uname("HInh"))
    for rel in (rel_b, rel_a) if declare_b_first else (rel_a, rel_b):
        i_type.declare_inheritor_in(rel)

    t1, t2 = new_object(t_type), new_object(t_type)
    for index, name in enumerate(sorted(transmitter_members)):
        t1.set_attribute(name, index * 10)
        if index % 2 == 0:
            t2.set_attribute(name, index * 10 + 1)
    inh = new_object(i_type)
    if set_locals and not (bind_a or bind_b):
        for index, name in enumerate(sorted(perm_a | perm_b)):
            inh._attrs[name] = index * 100
    if bind_a:
        bind(inh, t1, rel_a)
    if bind_b:
        bind(inh, t2, rel_b)

    for obj in (inh, t1, t2):
        try:
            expected_value = resolution.naive_get_member(obj, probe)
        except Exception as exc:  # noqa: BLE001 - re-asserted exactly
            with pytest.raises(type(exc)) as caught:
                explain_value(obj, probe)
            assert str(caught.value) == str(exc)
            continue
        prov = explain_value(obj, probe)
        assert prov.value == expected_value
        assert prov.chain() == resolution.naive_resolution_chain(obj, probe)
        assert prov.holder is prov.chain()[-1]
        assert prov.hops == len(prov.chain()) - 1


# ---------------------------------------------------------------------------
# schema goldens: repro.audit/1 and repro.metrics/1
# ---------------------------------------------------------------------------


class TestSchemaGoldens:
    def test_audit_snapshot_shape(self, db):
        iface = make_interface(db)
        make_implementation(db, iface)
        iface.set_attribute("Length", 3)
        snap = audit_snapshot(db)
        assert snap["schema"] == AUDIT_SCHEMA_VERSION == "repro.audit/1"
        assert set(snap) == {"schema", "database", "appended", "records", "cones"}
        assert snap["appended"] == db.obs.audit.appended
        for record in snap["records"]:
            assert set(record) == {
                "seq", "ts", "kind", "subject", "cause", "trace", "detail",
            }
        for cone in snap["cones"]:
            assert set(cone) == {
                "trace", "root", "records", "breadth", "depth",
                "by_rel_type", "members", "wall_time",
            }
        json.dumps(snap)  # the whole snapshot is JSON-safe

    def test_audit_snapshot_filters(self, db):
        iface = make_interface(db)
        make_implementation(db, iface)
        iface.set_attribute("Length", 3)
        by_kind = audit_snapshot(db, kind="propagation.fanout")
        assert by_kind["records"]
        assert all(
            r["kind"] == "propagation.fanout" for r in by_kind["records"]
        )
        trace = by_kind["records"][0]["trace"]
        by_trace = audit_snapshot(db, trace=trace)
        assert all(r["trace"] == trace for r in by_trace["records"])
        assert [c["trace"] for c in by_trace["cones"]] == [trace]

    def test_audit_table_renders_cones(self, db):
        iface = make_interface(db)
        make_implementation(db, iface)
        iface.set_attribute("Length", 3)
        text = render_audit_table(audit_snapshot(db))
        assert "audit log" in text
        assert "propagation.fanout" in text
        assert "cone" in text

    def test_metrics_event_summary_gains_causal_keys(self, db):
        from repro.obs.report import snapshot

        iface = make_interface(db)
        iface.set_attribute("Length", 3)
        snap = snapshot(db)
        assert snap["schema"] == "repro.metrics/1"
        events = snap["events"]["recent"]
        assert events
        for event in events:
            assert set(event) == {
                "kind", "subject", "data", "seq", "ts", "cause", "trace",
            }

    def test_snapshot_without_audit_raises_repro_error(self):
        db = Database("noaudit")
        db.enable_observability(audit=False)
        with pytest.raises(ReproError):
            audit_snapshot(db)
