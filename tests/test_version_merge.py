"""Tests for three-way version merge (repro.versions.merge)."""

import pytest

from repro.errors import VersionError
from repro.versions import (
    StateGuard,
    VersionGraph,
    derive_version,
    merge_versions,
)
from repro.workloads import gate_database, make_interface


@pytest.fixture
def db():
    return gate_database("merge")


@pytest.fixture
def graph(db):
    return VersionGraph(name="merge", guard=StateGuard(db))


def fork(db, graph, length=10, width=5):
    """base with two derived alternatives."""
    base = make_interface(db, length=length, width=width)
    graph.add_version(base)
    left = derive_version(graph, base)
    right = derive_version(graph, base)
    return base, left, right


class TestCleanMerges:
    def test_disjoint_changes_merge(self, db, graph):
        base, left, right = fork(db, graph)
        left.set_attribute("Length", 11)
        right.set_attribute("Width", 6)
        result = merge_versions(graph, base, left, right)
        assert result.clean
        assert result.merged["Length"] == 11  # from left
        assert result.merged["Width"] == 6    # from right
        assert len(result.applied_from_right) == 1

    def test_identical_changes_merge_silently(self, db, graph):
        base, left, right = fork(db, graph)
        left.set_attribute("Length", 11)
        right.set_attribute("Length", 11)
        result = merge_versions(graph, base, left, right)
        assert result.clean and result.merged["Length"] == 11

    def test_no_changes_at_all(self, db, graph):
        base, left, right = fork(db, graph)
        result = merge_versions(graph, base, left, right)
        assert result.clean
        assert result.merged["Length"] == base["Length"]

    def test_nested_member_change_applied(self, db, graph):
        base, left, right = fork(db, graph)
        pin = right.subclass("Pins").members()[0]
        pin.set_attribute("PinLocation", (7, 7))
        result = merge_versions(graph, base, left, right)
        assert result.clean
        merged_pin = result.merged.subclass("Pins").members()[0]
        assert merged_pin["PinLocation"].X == 7

    def test_merged_version_registered_with_parents(self, db, graph):
        base, left, right = fork(db, graph)
        result = merge_versions(graph, base, left, right)
        assert graph.base_of(result.merged) is left
        assert graph.merge_parents_of(result.merged) == [right]
        assert result.merged in graph


class TestConflicts:
    def test_competing_attribute_change(self, db, graph):
        base, left, right = fork(db, graph)
        left.set_attribute("Length", 11)
        right.set_attribute("Length", 12)
        result = merge_versions(graph, base, left, right)
        assert not result.clean
        conflict = result.conflicts[0]
        assert conflict.path == "Length"
        assert conflict.base == 10 and conflict.left == 11 and conflict.right == 12
        # The merged object keeps the left value pending manual resolution.
        assert result.merged["Length"] == 11

    def test_structural_change_on_right_is_conflict(self, db, graph):
        base, left, right = fork(db, graph)
        right.subclass("Pins").create(InOut="IN")
        result = merge_versions(graph, base, left, right)
        assert any(c.kind == "structure" for c in result.conflicts)

    def test_both_resize_same_subclass(self, db, graph):
        base, left, right = fork(db, graph)
        left.subclass("Pins").create(InOut="IN")
        right.subclass("Pins").create(InOut="OUT")
        right.subclass("Pins").create(InOut="OUT")
        result = merge_versions(graph, base, left, right)
        structural = [c for c in result.conflicts if c.path == "Pins"]
        assert structural and structural[0].left == 4 and structural[0].right == 5

    def test_conflict_str(self, db, graph):
        base, left, right = fork(db, graph)
        left.set_attribute("Length", 11)
        right.set_attribute("Length", 12)
        result = merge_versions(graph, base, left, right)
        assert "base 10" in str(result.conflicts[0])


class TestMergeValidation:
    def test_non_member_rejected(self, db, graph):
        base, left, right = fork(db, graph)
        stranger = make_interface(db)
        with pytest.raises(VersionError):
            merge_versions(graph, base, left, stranger)

    def test_base_must_be_common_ancestor(self, db, graph):
        base_a, left_a, _ = fork(db, graph)
        base_b = make_interface(db)
        graph.add_version(base_b)
        other = derive_version(graph, base_b)
        with pytest.raises(VersionError):
            merge_versions(graph, base_a, left_a, other)
