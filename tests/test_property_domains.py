"""Property-based tests for the domain system (hypothesis)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.domains import (
    BOOLEAN,
    INTEGER,
    POINT,
    REAL,
    STRING,
    EnumDomain,
    ListOf,
    MatrixOf,
    RecordDomain,
    SetOf,
)
from repro.errors import DomainError

# -- strategies -----------------------------------------------------------------

simple_domains = st.sampled_from([INTEGER, REAL, STRING, BOOLEAN])

identifiers = st.from_regex(r"[A-Z][A-Za-z0-9_]{0,10}", fullmatch=True)


def values_for(domain):
    if domain is INTEGER:
        return st.integers(min_value=-10**6, max_value=10**6)
    if domain is REAL:
        return st.floats(allow_nan=False, allow_infinity=False, width=32)
    if domain is STRING:
        return st.text(max_size=20)
    return st.booleans()


class TestValidationIdempotence:
    """validate(validate(x)) == validate(x) for every domain."""

    @given(st.integers())
    def test_integer(self, value):
        assert INTEGER.validate(INTEGER.validate(value)) == INTEGER.validate(value)

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_real(self, value):
        once = REAL.validate(value)
        assert REAL.validate(once) == once

    @given(st.lists(st.integers(), max_size=30))
    def test_list_of(self, values):
        domain = ListOf(INTEGER)
        once = domain.validate(values)
        assert domain.validate(once) == once

    @given(st.lists(st.integers(), max_size=30))
    def test_set_of(self, values):
        domain = SetOf(INTEGER)
        once = domain.validate(values)
        assert domain.validate(once) == once

    @given(st.lists(st.lists(st.booleans(), min_size=3, max_size=3), max_size=10))
    def test_matrix_of(self, rows):
        domain = MatrixOf(BOOLEAN)
        once = domain.validate(rows)
        assert domain.validate(once) == once

    @given(st.integers(), st.integers())
    def test_point(self, x, y):
        once = POINT.validate({"X": x, "Y": y})
        assert POINT.validate(once) == once


class TestSetSemantics:
    @given(st.lists(st.integers(), max_size=40))
    def test_set_of_deduplicates(self, values):
        result = SetOf(INTEGER).validate(values)
        assert len(result) == len(set(values))

    @given(st.lists(st.integers(), max_size=40))
    def test_set_of_order_independent(self, values):
        domain = SetOf(INTEGER)
        assert domain.validate(values) == domain.validate(list(reversed(values)))


class TestRecordProperties:
    @given(st.integers(), st.integers())
    def test_record_equality_and_hash(self, x, y):
        a = POINT.validate({"X": x, "Y": y})
        b = POINT.validate({"Y": y, "X": x})
        assert a == b and hash(a) == hash(b)

    @given(st.integers(), st.integers(), st.integers())
    def test_replace_changes_exactly_one_field(self, x, y, new_x):
        point = POINT.validate({"X": x, "Y": y})
        moved = point.replace(X=new_x)
        assert moved.X == new_x and moved.Y == y
        assert point.X == x  # original untouched

    @given(
        st.dictionaries(
            identifiers, simple_domains, min_size=1, max_size=6
        ),
        st.data(),
    )
    def test_random_record_domains_validate_their_own_values(self, fields, data):
        domain = RecordDomain("R", fields)
        candidate = {
            name: data.draw(values_for(field_domain))
            for name, field_domain in fields.items()
        }
        value = domain.validate(candidate)
        assert set(value) == set(fields)
        assert domain.validate(value) == value


class TestEnumProperties:
    @given(st.lists(identifiers, min_size=1, max_size=10, unique=True))
    def test_every_label_validates(self, labels):
        domain = EnumDomain("E", labels)
        for label in labels:
            assert domain.validate(label) == label

    @given(st.lists(identifiers, min_size=1, max_size=10, unique=True), st.text(min_size=1))
    def test_non_labels_rejected(self, labels, candidate):
        domain = EnumDomain("E", labels)
        if candidate not in labels:
            try:
                domain.validate(candidate)
            except DomainError:
                pass
            else:
                raise AssertionError("expected rejection")


class TestCrossDomainRejection:
    @given(st.text(max_size=5))
    def test_integer_rejects_strings(self, value):
        try:
            INTEGER.validate(value)
        except DomainError:
            pass
        else:
            raise AssertionError("expected rejection")

    @given(st.booleans())
    def test_integer_and_real_reject_bools(self, value):
        for domain in (INTEGER, REAL):
            try:
                domain.validate(value)
            except DomainError:
                pass
            else:
                raise AssertionError("expected rejection")
