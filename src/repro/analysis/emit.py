"""Diagnostic emitters: plain text, ``repro.lint/1`` JSON, SARIF 2.1.0.

All three render the same :class:`~repro.analysis.diagnostics.Diagnostic`
list; ``repro check`` shares them with ``repro lint`` so runtime integrity
violations and static findings print identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .. import __version__
from .diagnostics import (
    ADVICE,
    Diagnostic,
    ERROR,
    RULES,
    SEVERITIES,
    WARNING,
    count_by_severity,
)

__all__ = ["render_text", "to_json", "to_sarif", "summary_line"]

JSON_SCHEMA_ID = "repro.lint/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity → SARIF result level.
_SARIF_LEVELS = {ERROR: "error", WARNING: "warning", ADVICE: "note"}


def summary_line(diagnostics: Sequence[Diagnostic]) -> str:
    counts = count_by_severity(diagnostics)
    parts = []
    for severity in SEVERITIES:
        count = counts.get(severity, 0)
        # "advice" is a mass noun; the others pluralise normally.
        label = severity if severity == ADVICE or count == 1 else severity + "s"
        parts.append(f"{count} {label}")
    return ", ".join(parts)


def render_text(diagnostics: Sequence[Diagnostic], summary: bool = True) -> str:
    """One line per finding (plus an indented hint line), and a summary."""
    lines: List[str] = []
    for diagnostic in diagnostics:
        lines.append(diagnostic.render())
        if diagnostic.hint:
            lines.append(f"    hint: {diagnostic.hint}")
    if summary:
        lines.append(summary_line(diagnostics))
    return "\n".join(lines)


def to_json(diagnostics: Sequence[Diagnostic]) -> Dict[str, Any]:
    """The ``repro.lint/1`` machine-readable report."""
    return {
        "schema": JSON_SCHEMA_ID,
        "counts": count_by_severity(diagnostics),
        "diagnostics": [
            {
                "code": d.code,
                "slug": d.rule.slug if d.rule else "",
                "severity": d.severity,
                "message": d.message,
                "subject": d.subject,
                "path": d.location.path if d.location else None,
                "line": d.location.line if d.location else None,
                "hint": d.hint,
            }
            for d in diagnostics
        ],
    }


def to_sarif(diagnostics: Sequence[Diagnostic]) -> Dict[str, Any]:
    """A minimal, valid SARIF 2.1.0 log with the full rule catalog."""
    codes = sorted(RULES)
    rule_index = {code: position for position, code in enumerate(codes)}
    rules = [
        {
            "id": code,
            "name": RULES[code].slug,
            "shortDescription": {"text": RULES[code].summary},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[RULES[code].severity],
            },
        }
        for code in codes
    ]
    results = []
    for diagnostic in diagnostics:
        message = diagnostic.message
        if diagnostic.hint:
            message = f"{message} (hint: {diagnostic.hint})"
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "level": _SARIF_LEVELS.get(diagnostic.severity, "warning"),
            "message": {"text": message},
        }
        if diagnostic.code in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.code]
        location = diagnostic.location
        if location is not None and location.path:
            physical: Dict[str, Any] = {
                "artifactLocation": {"uri": location.path},
            }
            if location.line is not None:
                physical["region"] = {"startLine": location.line}
            result["locations"] = [{"physicalLocation": physical}]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
