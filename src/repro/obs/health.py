"""Declarative health rules over the flight recorder's time series.

Admission control and backpressure need a *judgement*, not a wall of
counters: is this database ok, degraded, or critical — and why.  This
module evaluates a small registry of declarative rules over the
:class:`~repro.obs.recorder.FlightRecorder` ring and folds the verdicts
into one :class:`HealthReport` (the ``repro.health/1`` schema behind
``repro health``, whose exit code is the status).

A :class:`HealthRule` is a named probe over the newest ``window`` samples;
it returns a *reason* string when firing and ``None`` when healthy, and
carries the status it degrades the database to (``degraded`` or
``critical``).  Three factories cover the common shapes:

* :func:`rate_rule` — a counter grew faster than ``threshold``/s across
  the window (view staleness, index self-heals, slow-op rate, audit-ring
  overflow, lock timeouts);
* :func:`hit_rate_rule` — a hits/misses pair's windowed hit rate fell
  under ``floor`` with at least ``min_events`` of traffic (the resolution
  cache, the view router);
* :func:`percentile_rule` — a histogram percentile exceeded ``threshold``
  *and* the histogram saw fresh observations inside the window, so a rule
  clears once the pressure stops (lock wait p95).

Rules judge **windowed deltas, never lifetime totals** — a database that
suffered once and recovered reports ok again as soon as the bad samples
age out of the window.  :func:`default_rules` is the stock registry; pass
your own list to :class:`HealthMonitor` to tune thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence

from .recorder import FlightRecorder, FlightSample

__all__ = [
    "HEALTH_SCHEMA_VERSION",
    "OK",
    "DEGRADED",
    "CRITICAL",
    "EXIT_CODES",
    "HealthRule",
    "RuleResult",
    "HealthReport",
    "HealthMonitor",
    "rate_rule",
    "hit_rate_rule",
    "percentile_rule",
    "default_rules",
    "monitor_of",
]

HEALTH_SCHEMA_VERSION = "repro.health/1"

OK = "ok"
DEGRADED = "degraded"
CRITICAL = "critical"

#: CLI exit codes per status (``repro health``).
EXIT_CODES: Dict[str, int] = {OK: 0, DEGRADED: 1, CRITICAL: 2}

_RANK: Dict[str, int] = {OK: 0, DEGRADED: 1, CRITICAL: 2}

#: A probe inspects the newest ``window`` samples (oldest first) and
#: returns a human-readable reason when the rule fires, None when not.
Probe = Callable[[Sequence[FlightSample]], Optional[str]]


class RuleResult(NamedTuple):
    """One rule's verdict for one evaluation."""

    name: str
    status: str
    reason: Optional[str]
    description: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "reason": self.reason,
            "description": self.description,
        }


@dataclass(frozen=True)
class HealthRule:
    """One named, windowed judgement over recorder samples.

    ``severity`` is the status the database degrades to while the rule
    fires.  Fewer than ``min_samples`` buffered samples means the rule
    abstains (reports ok) — rates need at least two observations.
    """

    name: str
    description: str
    probe: Probe
    severity: str = DEGRADED
    window: int = 5
    min_samples: int = 2

    def __post_init__(self) -> None:
        if self.severity not in (DEGRADED, CRITICAL):
            raise ValueError(
                f"rule {self.name!r}: severity must be degraded or critical"
            )
        if self.window < self.min_samples:
            raise ValueError(
                f"rule {self.name!r}: window smaller than min_samples"
            )

    def evaluate(self, samples: Sequence[FlightSample]) -> RuleResult:
        window = list(samples)[-self.window:]
        if len(window) < self.min_samples:
            return RuleResult(self.name, OK, None, self.description)
        reason = self.probe(window)
        status = self.severity if reason is not None else OK
        return RuleResult(self.name, status, reason, self.description)


# ---------------------------------------------------------------------------
# rule factories
# ---------------------------------------------------------------------------


def _window_rate(
    window: Sequence[FlightSample], metric: str
) -> Optional[float]:
    """Counter growth per second across a window, None when unmeasurable."""
    first, last = window[0], window[-1]
    elapsed = last.ts - first.ts
    if elapsed <= 0:
        return None
    delta = last.counters.get(metric, 0.0) - first.counters.get(metric, 0.0)
    return delta / elapsed


def rate_rule(
    name: str,
    metric: str,
    threshold: float,
    description: Optional[str] = None,
    severity: str = DEGRADED,
    window: int = 5,
) -> HealthRule:
    """Fire when ``metric`` grows faster than ``threshold``/s in-window."""

    def probe(window_samples: Sequence[FlightSample]) -> Optional[str]:
        rate = _window_rate(window_samples, metric)
        if rate is not None and rate > threshold:
            span = window_samples[-1].ts - window_samples[0].ts
            return (
                f"{metric} grew at {rate:.2f}/s over the last {span:.1f}s "
                f"(threshold {threshold:g}/s)"
            )
        return None

    return HealthRule(
        name=name,
        description=description
        or f"{metric} growth stays at or under {threshold:g}/s",
        probe=probe,
        severity=severity,
        window=window,
    )


def hit_rate_rule(
    name: str,
    hits: str,
    misses: str,
    floor: float,
    min_events: float = 50,
    description: Optional[str] = None,
    severity: str = DEGRADED,
    window: int = 5,
) -> HealthRule:
    """Fire when the windowed ``hits/(hits+misses)`` falls under ``floor``.

    Quiet windows (fewer than ``min_events`` lookups) abstain: an idle
    cache is not a collapsed cache.
    """

    def probe(window_samples: Sequence[FlightSample]) -> Optional[str]:
        first, last = window_samples[0], window_samples[-1]
        hit_delta = last.counters.get(hits, 0.0) - first.counters.get(hits, 0.0)
        miss_delta = (
            last.counters.get(misses, 0.0) - first.counters.get(misses, 0.0)
        )
        traffic = hit_delta + miss_delta
        if traffic < min_events:
            return None
        ratio = hit_delta / traffic
        if ratio < floor:
            return (
                f"hit rate {ratio:.0%} over the last {traffic:.0f} lookups "
                f"({hits} vs {misses}; floor {floor:.0%})"
            )
        return None

    return HealthRule(
        name=name,
        description=description
        or f"windowed {hits} hit rate stays at or above {floor:.0%}",
        probe=probe,
        severity=severity,
        window=window,
    )


def percentile_rule(
    name: str,
    metric: str,
    threshold: float,
    stat: str = "p95",
    unit: str = "s",
    description: Optional[str] = None,
    severity: str = DEGRADED,
    window: int = 5,
) -> HealthRule:
    """Fire when histogram ``metric``'s ``stat`` exceeds ``threshold``.

    Only while the histogram is *live*: the observation count must have
    grown inside the window, so the rule clears once the operations stop
    even though the lifetime percentile stays high.
    """

    def probe(window_samples: Sequence[FlightSample]) -> Optional[str]:
        first, last = window_samples[0], window_samples[-1]
        summary = last.histograms.get(metric)
        if summary is None:
            return None
        count = summary.get("count") or 0.0
        previous = first.histograms.get(metric)
        previous_count = (previous.get("count") or 0.0) if previous else 0.0
        if count <= previous_count:
            return None
        value = summary.get(stat)
        if value is not None and value > threshold:
            return (
                f"{metric} {stat}={value:.4g}{unit} with "
                f"{count - previous_count:.0f} fresh observation(s) "
                f"(threshold {threshold:g}{unit})"
            )
        return None

    return HealthRule(
        name=name,
        description=description
        or f"{metric} {stat} stays at or under {threshold:g}{unit} while live",
        probe=probe,
        severity=severity,
        window=window,
    )


def default_rules() -> List[HealthRule]:
    """The stock registry: one rule per known degradation mode."""
    return [
        rate_rule(
            "view-staleness-growth",
            "query.view.staleness",
            0.0,
            description="materialized views are not going stale "
            "(schema churn forcing rebuilds)",
        ),
        rate_rule(
            "index-self-heal",
            "index.stale_repairs",
            10.0,
            description="value indexes rarely need epoch self-heals "
            "(heavy healing means maintenance is missing writes)",
        ),
        hit_rate_rule(
            "cache-hit-collapse",
            "cache.hits",
            "cache.misses",
            floor=0.5,
            min_events=100,
            description="the materialising resolution cache keeps a "
            "windowed hit rate of at least 50%",
        ),
        hit_rate_rule(
            "view-hit-collapse",
            "query.view.hits",
            "query.view.misses",
            floor=0.5,
            min_events=20,
            description="the view router keeps a windowed hit rate of "
            "at least 50%",
        ),
        rate_rule(
            "slowlog-rate",
            "slowlog.recorded",
            5.0,
            description="over-budget operations stay rare "
            "(at or under 5/s)",
        ),
        rate_rule(
            "audit-overflow",
            "audit.dropped",
            0.0,
            description="the audit ring is not overflowing "
            "(records falling off before export)",
        ),
        percentile_rule(
            "lock-wait-p95",
            "locks.wait_seconds",
            0.05,
            description="lock waits stay under 50ms at p95 while "
            "contention is live",
        ),
        rate_rule(
            "lock-timeouts",
            "locks.timeouts",
            0.0,
            severity=CRITICAL,
            description="no blocking lock request times out "
            "(sessions are starving)",
        ),
    ]


# ---------------------------------------------------------------------------
# the monitor
# ---------------------------------------------------------------------------


@dataclass
class HealthReport:
    """The folded verdict of one evaluation."""

    status: str
    results: List[RuleResult]
    samples: int
    database: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.status]

    def firing(self) -> List[RuleResult]:
        return [result for result in self.results if result.status != OK]

    def as_dict(self) -> Dict[str, Any]:
        """The stable ``repro.health/1`` document."""
        return {
            "schema": HEALTH_SCHEMA_VERSION,
            "database": self.database,
            "status": self.status,
            "samples": self.samples,
            "rules": [result.as_dict() for result in self.results],
        }

    def render(self) -> str:
        """Aligned text rendering for terminal output."""
        lines = [
            f"health: {self.status.upper()}  "
            f"({self.samples} sample(s) in the flight ring)"
        ]
        width = max((len(result.name) for result in self.results), default=0)
        for result in self.results:
            marker = {OK: "ok      ", DEGRADED: "DEGRADED", CRITICAL: "CRITICAL"}[
                result.status
            ]
            lines.append(f"  [{marker}] {result.name.ljust(width)}")
            if result.reason is not None:
                lines.append(f"             {result.reason}")
        return "\n".join(lines)


@dataclass
class HealthMonitor:
    """Evaluates a rule registry over a recorder's buffered samples."""

    recorder: FlightRecorder
    rules: List[HealthRule] = field(default_factory=default_rules)

    def evaluate(self) -> HealthReport:
        samples = self.recorder.samples()
        results = [rule.evaluate(samples) for rule in self.rules]
        status = OK
        for result in results:
            if _RANK[result.status] > _RANK[status]:
                status = result.status
        return HealthReport(
            status=status,
            results=results,
            samples=len(samples),
            database=getattr(self.recorder.database, "name", None),
        )


def monitor_of(db: Any, rules: Optional[List[HealthRule]] = None) -> HealthMonitor:
    """A monitor over an observed database's flight recorder."""
    obs = getattr(db, "obs", None)
    if obs is None:
        from ..errors import ReproError

        raise ReproError(
            f"database {getattr(db, 'name', db)!r} has no observability "
            f"attached (create it with observe=True or call "
            f"enable_observability())"
        )
    if rules is None:
        return HealthMonitor(obs.recorder)
    return HealthMonitor(obs.recorder, rules)
